"""repro — reproduction of *Hierarchical Prefetching: A Software-Hardware
Instruction Prefetcher for Server Applications* (ASPLOS 2025).

Quickstart::

    from repro import get_trace, simulate, make_prefetcher

    trace = get_trace("tidb_tpcc", scale="bench")
    base = simulate(trace)                                   # FDIP baseline
    hp = simulate(trace, prefetcher=make_prefetcher("hierarchical"))
    print(f"speedup over FDIP: {hp.ipc / base.ipc - 1:+.1%}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.cpu import FrontEndSimulator, MachineConfig, SimStats, simulate
from repro.core import HierarchicalPrefetcher, HPConfig, identify_bundles
from repro.prefetchers import make_prefetcher, PREFETCHER_NAMES
from repro.workloads import (
    WORKLOAD_NAMES,
    build_application,
    get_application,
    get_trace,
)

__version__ = "1.0.0"

__all__ = [
    "FrontEndSimulator",
    "MachineConfig",
    "SimStats",
    "simulate",
    "HierarchicalPrefetcher",
    "HPConfig",
    "identify_bundles",
    "make_prefetcher",
    "PREFETCHER_NAMES",
    "WORKLOAD_NAMES",
    "build_application",
    "get_application",
    "get_trace",
    "__version__",
]
