"""Lint configuration: defaults plus the ``[tool.repro.lint]`` table.

The defaults encode this repository's layout; an out-of-tree checkout
(or a test fixture tree) overrides them through its own
``pyproject.toml``.  Parsing uses :mod:`tomllib` when available
(Python 3.11+); on older interpreters the defaults apply unchanged,
which is exactly what the CI lint job (pinned to 3.11) relies on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Tuple

try:
    import tomllib
except ImportError:  # Python < 3.11; run with the built-in defaults.
    tomllib = None

#: Directories whose code sits on the simulation path and must be
#: deterministic (relative to the project root, POSIX separators).
DEFAULT_DETERMINISM_PATHS = (
    "src/repro/cpu",
    "src/repro/frontend",
    "src/repro/prefetchers",
    "src/repro/workloads",
)

#: Paths where environment reads are configuration, not nondeterminism.
DEFAULT_ENV_OK_PATHS = (
    "src/repro/cpu/config.py",
    "src/repro/experiments",
)

#: Attributes that are machine wiring, never serialized state (see
#: docs/ARCHITECTURE.md §1 "Wiring is not state").
DEFAULT_WIRING_ATTRS = (
    "sim", "trace", "hierarchy", "stats", "params", "config",
)

#: Callables whose arguments cross a pickling process boundary.
DEFAULT_BOUNDARY_CALLABLES = (
    "Process", "apply_async", "submit", "map_async", "starmap_async",
    "sweep", "sweep_grid", "serve_sweep", "run_sweep",
)

#: Files required to contain at least one hot-begin/hot-end fence —
#: deleting a fence (and with it the hygiene checks) is itself an error.
DEFAULT_FENCED_PATHS = (
    "src/repro/cpu/simulator.py",
    "src/repro/frontend/fdip.py",
    "src/repro/core/prefetcher.py",
    "src/repro/memory/policies.py",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved configuration for one lint run."""

    paths: Tuple[str, ...] = ("src/repro",)
    determinism_paths: Tuple[str, ...] = DEFAULT_DETERMINISM_PATHS
    env_ok_paths: Tuple[str, ...] = DEFAULT_ENV_OK_PATHS
    wiring_attrs: Tuple[str, ...] = DEFAULT_WIRING_ATTRS
    boundary_callables: Tuple[str, ...] = DEFAULT_BOUNDARY_CALLABLES
    fenced_paths: Tuple[str, ...] = DEFAULT_FENCED_PATHS
    cache_file: str = ".repro-lint-cache.json"
    #: Waiver kinds honored in source comments; removing one from the
    #: config turns the corresponding waivers off repo-wide.
    waivers: Tuple[str, ...] = ("ephemeral", "allow")

    def fingerprint(self) -> str:
        """Hash of everything that invalidates cached file results."""
        payload = json.dumps(
            {k: list(v) if isinstance(v, tuple) else v
             for k, v in sorted(self.__dict__.items())},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


_TABLE_KEYS = {
    "paths": "paths",
    "determinism-paths": "determinism_paths",
    "env-ok-paths": "env_ok_paths",
    "wiring-attrs": "wiring_attrs",
    "boundary-callables": "boundary_callables",
    "fenced-paths": "fenced_paths",
    "cache-file": "cache_file",
    "waivers": "waivers",
}


def find_project_root(start: Path) -> Path:
    """Nearest ancestor of ``start`` holding a ``pyproject.toml``."""
    start = start.resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def load_config(root: Path) -> LintConfig:
    """Defaults overlaid with the root's ``[tool.repro.lint]`` table."""
    config = LintConfig()
    pyproject = root / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return config
    try:
        with open(pyproject, "rb") as fh:
            data = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError):
        return config
    table = data.get("tool", {}).get("repro", {}).get("lint", {})
    overrides = {}
    for key, value in table.items():
        attr = _TABLE_KEYS.get(key)
        if attr is None:
            raise ValueError(
                f"unknown [tool.repro.lint] key {key!r}; expected one of "
                f"{sorted(_TABLE_KEYS)}"
            )
        if attr == "cache_file":
            overrides[attr] = str(value)
        else:
            overrides[attr] = tuple(str(v) for v in value)
    return replace(config, **overrides) if overrides else config
