"""Lint configuration: defaults plus the ``[tool.repro.lint]`` table.

The defaults encode this repository's layout; an out-of-tree checkout
(or a test fixture tree) overrides them through its own
``pyproject.toml``.  Parsing uses :mod:`tomllib` when available
(Python 3.11+); on older interpreters the defaults apply unchanged,
which is exactly what the CI lint job (pinned to 3.11) relies on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Tuple

try:
    import tomllib
except ImportError:  # Python < 3.11; run with the built-in defaults.
    tomllib = None

#: Directories whose code sits on the simulation path and must be
#: deterministic (relative to the project root, POSIX separators).
DEFAULT_DETERMINISM_PATHS = (
    "src/repro/cpu",
    "src/repro/frontend",
    "src/repro/prefetchers",
    "src/repro/workloads",
)

#: Paths where environment reads are configuration, not nondeterminism.
DEFAULT_ENV_OK_PATHS = (
    "src/repro/cpu/config.py",
    "src/repro/experiments",
)

#: Attributes that are machine wiring, never serialized state (see
#: docs/ARCHITECTURE.md §1 "Wiring is not state").
DEFAULT_WIRING_ATTRS = (
    "sim", "trace", "hierarchy", "stats", "params", "config",
)

#: Callables whose arguments cross a pickling process boundary.
DEFAULT_BOUNDARY_CALLABLES = (
    "Process", "apply_async", "submit", "map_async", "starmap_async",
    "sweep", "sweep_grid", "serve_sweep", "run_sweep",
)

#: Files required to contain at least one hot-begin/hot-end fence —
#: deleting a fence (and with it the hygiene checks) is itself an error.
DEFAULT_FENCED_PATHS = (
    "src/repro/cpu/simulator.py",
    "src/repro/frontend/fdip.py",
    "src/repro/core/prefetcher.py",
    "src/repro/memory/policies.py",
)

#: Directories mapped to importable package roots when resolving
#: ``import repro.x`` to a project file (ProjectGraph).
DEFAULT_SRC_ROOTS = ("src",)

#: Files whose ``async def`` bodies must stay free of blocking calls.
DEFAULT_ASYNC_PATHS = (
    "src/repro/experiments/service.py",
    "src/repro/experiments/journal.py",
)

#: Files whose emitted-event dict literals and event consumers are
#: checked against the declarative schema table.
DEFAULT_EVENT_CONSUMER_PATHS = (
    "src/repro/experiments/service.py",
    "src/repro/experiments/journal.py",
    "src/repro/cli.py",
)

#: Functions that must mention every event kind in the schema.
DEFAULT_EVENT_EXHAUSTIVE_CONSUMERS = ("summarize_events",)

#: Dataclasses whose constructor arguments cross the (remote-ready)
#: transport boundary and must stay JSON-safe.
DEFAULT_TRANSPORT_CLASSES = ("WorkUnit", "WorkOutcome")

#: Directories where every ``raise`` must resolve to the taxonomy root.
DEFAULT_TAXONOMY_PATHS = ("src/repro/experiments",)

#: Files required to contain at least one ``# lint: ordered[...]``
#: region — crash-consistency sequences must stay annotated.
DEFAULT_ORDERED_PATHS = (
    "src/repro/experiments/diskcache.py",
    "src/repro/experiments/journal.py",
    "src/repro/experiments/service.py",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved configuration for one lint run."""

    paths: Tuple[str, ...] = ("src/repro",)
    determinism_paths: Tuple[str, ...] = DEFAULT_DETERMINISM_PATHS
    env_ok_paths: Tuple[str, ...] = DEFAULT_ENV_OK_PATHS
    wiring_attrs: Tuple[str, ...] = DEFAULT_WIRING_ATTRS
    boundary_callables: Tuple[str, ...] = DEFAULT_BOUNDARY_CALLABLES
    fenced_paths: Tuple[str, ...] = DEFAULT_FENCED_PATHS
    cache_file: str = ".repro-lint-cache.json"
    #: Waiver kinds honored in source comments; removing one from the
    #: config turns the corresponding waivers off repo-wide.
    waivers: Tuple[str, ...] = ("ephemeral", "allow")
    src_roots: Tuple[str, ...] = DEFAULT_SRC_ROOTS
    async_paths: Tuple[str, ...] = DEFAULT_ASYNC_PATHS
    #: ``path::NAME`` of the declarative event-schema dict literal.
    event_schema_table: str = "src/repro/experiments/service.py::EVENT_SCHEMA"
    event_consumer_paths: Tuple[str, ...] = DEFAULT_EVENT_CONSUMER_PATHS
    event_exhaustive_consumers: Tuple[str, ...] = (
        DEFAULT_EVENT_EXHAUSTIVE_CONSUMERS)
    transport_classes: Tuple[str, ...] = DEFAULT_TRANSPORT_CLASSES
    taxonomy_paths: Tuple[str, ...] = DEFAULT_TAXONOMY_PATHS
    taxonomy_root: str = "ExperimentError"
    ordered_paths: Tuple[str, ...] = DEFAULT_ORDERED_PATHS
    baseline_file: str = ".repro-lint-baseline.json"

    def fingerprint(self) -> str:
        """Hash of everything that invalidates cached file results."""
        payload = json.dumps(
            {k: list(v) if isinstance(v, tuple) else v
             for k, v in sorted(self.__dict__.items())},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()


_TABLE_KEYS = {
    "paths": "paths",
    "determinism-paths": "determinism_paths",
    "env-ok-paths": "env_ok_paths",
    "wiring-attrs": "wiring_attrs",
    "boundary-callables": "boundary_callables",
    "fenced-paths": "fenced_paths",
    "cache-file": "cache_file",
    "waivers": "waivers",
    "src-roots": "src_roots",
    "async-paths": "async_paths",
    "event-schema-table": "event_schema_table",
    "event-consumer-paths": "event_consumer_paths",
    "event-exhaustive-consumers": "event_exhaustive_consumers",
    "transport-classes": "transport_classes",
    "taxonomy-paths": "taxonomy_paths",
    "taxonomy-root": "taxonomy_root",
    "ordered-paths": "ordered_paths",
    "baseline-file": "baseline_file",
}

#: Keys holding a single string rather than a list of strings.
_SCALAR_KEYS = frozenset({
    "cache_file", "baseline_file", "event_schema_table", "taxonomy_root",
})


def find_project_root(start: Path) -> Path:
    """Nearest ancestor of ``start`` holding a ``pyproject.toml``."""
    start = start.resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def load_config(root: Path) -> LintConfig:
    """Defaults overlaid with the root's ``[tool.repro.lint]`` table."""
    config = LintConfig()
    pyproject = root / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return config
    try:
        with open(pyproject, "rb") as fh:
            data = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError):
        return config
    table = data.get("tool", {}).get("repro", {}).get("lint", {})
    overrides = {}
    for key, value in table.items():
        attr = _TABLE_KEYS.get(key)
        if attr is None:
            raise ValueError(
                f"unknown [tool.repro.lint] key {key!r}; expected one of "
                f"{sorted(_TABLE_KEYS)}"
            )
        if attr in _SCALAR_KEYS:
            overrides[attr] = str(value)
        else:
            overrides[attr] = tuple(str(v) for v in value)
    return replace(config, **overrides) if overrides else config
