"""``repro lint`` command-line front end.

Exit status: 0 when no finding reaches the ``--fail-on`` severity
(default: ``warning``, i.e. any finding fails), 1 otherwise, 2 on a
usage error such as an unknown rule.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.engine import run_lint
from repro.lint.findings import (
    ERROR,
    WARNING,
    format_json,
    format_text,
    severity_rank,
)
from repro.lint.registry import rule_names


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to lint (default: the "
                             "paths from [tool.repro.lint])")
    parser.add_argument("--rule", action="append", dest="rules",
                        metavar="NAME", choices=rule_names(),
                        help="run only this rule (repeatable); "
                             f"available: {', '.join(rule_names())}")
    parser.add_argument("--format", default="text",
                        choices=("text", "json"),
                        help="report format (default: text)")
    parser.add_argument("--fail-on", default=WARNING,
                        choices=(WARNING, ERROR),
                        help="lowest severity that fails the run "
                             "(default: warning — any finding fails)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the result cache")
    parser.add_argument("--root", default=None,
                        help="project root (default: nearest ancestor "
                             "with a pyproject.toml)")


def cmd_lint(args: argparse.Namespace) -> int:
    try:
        report = run_lint(
            paths=args.paths or None,
            root=Path(args.root) if args.root else None,
            rules=args.rules,
            use_cache=not args.no_cache,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    formatter = format_json if args.format == "json" else format_text
    print(formatter(report.findings, report.files_scanned,
                    report.cache_hits))
    threshold = severity_rank(args.fail_on)
    failed = any(severity_rank(f.severity) >= threshold
                 for f in report.findings)
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (used by tests; ``repro lint`` wraps it)."""
    parser = argparse.ArgumentParser(prog="repro lint")
    add_arguments(parser)
    return cmd_lint(parser.parse_args(argv))
