"""``repro lint`` command-line front end.

Exit status: 0 when no finding reaches the ``--fail-on`` severity
(default: ``warning``, i.e. any finding fails), 1 otherwise, 2 on a
usage error such as an unknown rule.  ``--check-baseline`` also fails
(1) when the committed baseline holds stale entries.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.lint.baseline import write_baseline
from repro.lint.config import find_project_root, load_config
from repro.lint.engine import run_lint
from repro.lint.findings import (
    ERROR,
    WARNING,
    format_json,
    format_text,
    severity_rank,
)
from repro.lint.registry import rule_names
from repro.lint.sarif import format_sarif


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to lint (default: the "
                             "paths from [tool.repro.lint])")
    parser.add_argument("--rule", action="append", dest="rules",
                        metavar="NAME", choices=rule_names(),
                        help="run only this rule (repeatable); "
                             f"available: {', '.join(rule_names())}")
    parser.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"),
                        help="report format (default: text)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the report to FILE instead of "
                             "stdout (stdout keeps a text summary)")
    parser.add_argument("--fail-on", default=WARNING,
                        choices=(WARNING, ERROR),
                        help="lowest severity that fails the run "
                             "(default: warning — any finding fails)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the result cache")
    parser.add_argument("--changed", action="store_true",
                        help="report only findings in files changed vs "
                             "--base-ref (full scan still feeds the "
                             "project graph; falls back to a full "
                             "report outside a git checkout)")
    parser.add_argument("--base-ref", default="HEAD", metavar="REF",
                        help="git ref --changed diffs against "
                             "(default: HEAD)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline file to accept "
                             "every current finding, then exit 0")
    parser.add_argument("--check-baseline", action="store_true",
                        help="additionally fail when the baseline "
                             "holds stale (already-fixed) entries")
    parser.add_argument("--root", default=None,
                        help="project root (default: nearest ancestor "
                             "with a pyproject.toml)")


def changed_files(root: Path, base_ref: str) -> Optional[Set[str]]:
    """Changed + untracked ``.py`` paths vs ``base_ref`` (POSIX,
    root-relative), or None when git is unavailable — the caller then
    falls back to a full report."""
    out: Set[str] = set()
    for cmd in (["git", "diff", "--name-only", base_ref, "--"],
                ["git", "ls-files", "--others",
                 "--exclude-standard", "--"]):
        try:
            proc = subprocess.run(
                cmd, cwd=root, capture_output=True, text=True,
                timeout=30, check=True)
        except (OSError, subprocess.SubprocessError):
            return None
        out.update(line.strip() for line in proc.stdout.splitlines()
                   if line.strip().endswith(".py"))
    return out


def cmd_lint(args: argparse.Namespace) -> int:
    root = Path(args.root).resolve() if args.root else \
        find_project_root(Path(args.paths[0]) if args.paths
                          else Path.cwd())
    changed: Optional[Set[str]] = None
    if getattr(args, "changed", False):
        changed = changed_files(root, getattr(args, "base_ref", "HEAD"))
    try:
        report = run_lint(
            paths=args.paths or None,
            root=root,
            rules=args.rules,
            use_cache=not args.no_cache,
            changed_only=changed,
            use_baseline=not getattr(args, "no_baseline", False),
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if getattr(args, "update_baseline", False):
        config = load_config(root)
        count = write_baseline(root / config.baseline_file,
                               report.findings)
        print(f"repro lint: baseline updated with {count} entry(ies) "
              f"in {config.baseline_file}")
        return 0

    if args.format == "sarif":
        formatted = format_sarif(report.findings)
    elif args.format == "json":
        formatted = format_json(report.findings, report.files_scanned,
                                report.cache_hits)
    else:
        formatted = format_text(report.findings, report.files_scanned,
                                report.cache_hits)
    if args.output:
        Path(args.output).write_text(formatted + "\n",
                                     encoding="utf-8")
        print(format_text(report.findings, report.files_scanned,
                          report.cache_hits))
    else:
        print(formatted)
    if report.baselined:
        print(f"({report.baselined} baselined finding(s) suppressed)")

    threshold = severity_rank(args.fail_on)
    failed = any(severity_rank(f.severity) >= threshold
                 for f in report.findings)
    if getattr(args, "check_baseline", False) and report.stale_baseline:
        print("repro lint: stale baseline entry(ies) — the findings "
              "they waived no longer exist; run --update-baseline: "
              + ", ".join(report.stale_baseline), file=sys.stderr)
        failed = True
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (used by tests; ``repro lint`` wraps it)."""
    parser = argparse.ArgumentParser(prog="repro lint")
    add_arguments(parser)
    return cmd_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pre-commit runs the module directly
    raise SystemExit(main())
