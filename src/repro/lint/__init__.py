"""Project-specific static analysis (``repro lint``).

Four AST-based rules enforce the invariants the dynamic test suite can
only spot-check:

* ``snapshot-coverage`` — every mutable attribute of a ``SimComponent``
  subclass must be captured by ``state_dict``/``load_state_dict`` and
  restored by ``reset`` (waive derived state with ``# lint: ephemeral``);
* ``determinism`` — no wall-clock, unseeded RNG, environment reads, or
  hash/set-order hazards on the simulation path;
* ``hotloop`` — inside ``# lint: hot-begin``/``hot-end`` fences, no
  repeated attribute chains, per-iteration allocation, or global
  lookups (the hoists PR 3 made must not regress);
* ``picklesafe`` — nothing unpicklable crosses the sweep worker spawn.

See ``docs/LINTING.md`` for rule semantics and the waiver syntax.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintReport, run_lint
from repro.lint.findings import Finding
from repro.lint.registry import RULES, rule_names

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "RULES",
    "load_config",
    "rule_names",
    "run_lint",
]
