"""Rule registry: name -> rule instance.

Adding a rule is three steps (see docs/LINTING.md "Adding a rule"):
subclass :class:`repro.lint.rules.base.Rule` in a new module under
``repro/lint/rules/``, give it a unique ``name``, and list it here.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.lint.rules import (
    AsyncSafetyRule,
    BoundaryTransportRule,
    CrashOrderingRule,
    DeterminismRule,
    ErrorTaxonomyRule,
    EventSchemaRule,
    HotLoopRule,
    PickleSafetyRule,
    SnapshotCoverageRule,
)
from repro.lint.rules.base import Rule

RULES: Dict[str, Rule] = {
    rule.name: rule
    for rule in (
        SnapshotCoverageRule(),
        DeterminismRule(),
        HotLoopRule(),
        PickleSafetyRule(),
        AsyncSafetyRule(),
        EventSchemaRule(),
        BoundaryTransportRule(),
        ErrorTaxonomyRule(),
        CrashOrderingRule(),
    )
}


def rule_names() -> List[str]:
    return sorted(RULES)


def select_rules(names: Optional[Iterable[str]] = None) -> List[Rule]:
    """Resolve ``--rule`` selections (None = every registered rule)."""
    if names is None:
        return [RULES[n] for n in sorted(RULES)]
    out = []
    for name in names:
        try:
            out.append(RULES[name])
        except KeyError:
            raise ValueError(
                f"unknown rule {name!r}; available: {', '.join(sorted(RULES))}"
            ) from None
    return out
