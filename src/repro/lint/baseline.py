"""Committed lint baseline: accepted findings that don't fail CI.

The baseline lets a new strict rule land without a big-bang fix-all
commit: known findings are recorded (with a justification) in
``.repro-lint-baseline.json`` and subtracted from every run.  Entries
are matched by a fingerprint over ``rule | path | message`` — line
numbers are deliberately excluded so unrelated edits above a baselined
site don't resurrect it.  An entry matching nothing is *stale* and
``repro lint --check-baseline`` fails on it, keeping the debt list
honest as findings get fixed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1


def finding_fingerprint(rule: str, path: str, message: str) -> str:
    payload = f"{rule}|{path}|{message}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def load_baseline(path: Path) -> List[dict]:
    """Baseline entries, or ``[]`` when absent/unreadable/mismatched."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return []
    if not isinstance(data, dict) or \
            data.get("version") != BASELINE_VERSION:
        return []
    entries = data.get("entries", [])
    return [e for e in entries if isinstance(e, dict)
            and isinstance(e.get("fingerprint"), str)]


def apply_baseline(findings: Sequence[Finding], entries: List[dict],
                   ) -> Tuple[List[Finding], int, List[str]]:
    """``(surviving findings, suppressed count, stale fingerprints)``."""
    known: Dict[str, dict] = {e["fingerprint"]: e for e in entries}
    used: set = set()
    out: List[Finding] = []
    for f in findings:
        fp = finding_fingerprint(f.rule, f.path, f.message)
        if fp in known:
            used.add(fp)
        else:
            out.append(f)
    stale = sorted(fp for fp in known if fp not in used)
    return out, len(findings) - len(out), stale


def write_baseline(path: Path, findings: Sequence[Finding],
                   justification: str = "accepted at baseline time",
                   ) -> int:
    """Record ``findings`` as the new baseline; returns entry count."""
    seen = set()
    entries = []
    for f in sorted(findings, key=Finding.sort_key):
        fp = finding_fingerprint(f.rule, f.path, f.message)
        if fp in seen:
            continue
        seen.add(fp)
        entries.append({
            "fingerprint": fp,
            "rule": f.rule,
            "path": f.path,
            "message": f.message,
            "justification": justification,
        })
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return len(entries)
