"""The lint engine: file discovery, dependency-aware cache, dispatch.

Each file is parsed into one AST; every enabled rule analyzes that tree
into a JSON-serializable per-file payload, and the engine adds a
project index (module, imports, classes, call sites — see
:mod:`repro.lint.project`).  Payloads are cached in
``.repro-lint-cache.json`` keyed by a SHA-256 of

* the file's content,
* the configuration fingerprint, engine version, and enabled rule set,
* a fingerprint of the lint package's own sources (editing a rule
  invalidates every cached payload it produced), and
* the content hashes of the file's resolved project imports — so
  editing ``errors.py`` re-analyzes everything that imports it, fixing
  the v1 staleness hole where cross-file rules served stale findings.

At report time the engine assembles the per-file project indices into a
:class:`~repro.lint.project.ProjectGraph`, hands it to every rule's
``report``, applies ``# lint: allow[rule]`` waivers, and finally
subtracts the committed baseline (``.repro-lint-baseline.json``).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.baseline import apply_baseline, load_baseline
from repro.lint.config import LintConfig, find_project_root, load_config
from repro.lint.findings import ERROR, Finding, severity_rank
from repro.lint.project import ProjectGraph, build_file_index
from repro.lint.registry import select_rules
from repro.lint.rules.base import FileContext, scan_directives

#: Bump to invalidate every cached file result after engine changes.
ENGINE_VERSION = "2"

_SKIP_DIRS = {"__pycache__", ".git", ".lint-cache", "node_modules"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    cache_hits: int = 0
    #: Findings suppressed by the committed baseline file.
    baselined: int = 0
    #: Baseline fingerprints that matched nothing this run (stale).
    stale_baseline: List[str] = field(default_factory=list)

    def failed(self, fail_on: str = ERROR) -> bool:
        threshold = severity_rank(fail_on)
        return any(severity_rank(f.severity) >= threshold
                   for f in self.findings)


def iter_py_files(paths: Sequence[Path]) -> List[Path]:
    out: Set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.add(path.resolve())
        elif path.is_dir():
            for p in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS or part.startswith(".")
                           for part in p.relative_to(path).parts):
                    out.add(p.resolve())
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
    return sorted(out)


def _rel_posix(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _load_cache(path: Path) -> Dict[str, dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("engine") == ENGINE_VERSION:
            return data.get("files", {})
    except (OSError, ValueError):
        pass
    return {}


def _save_cache(path: Path, files: Dict[str, dict]) -> None:
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"engine": ENGINE_VERSION, "files": files}, fh)
    except OSError:
        pass  # a read-only tree just loses caching, never correctness


_RULE_SOURCES_FP: Optional[str] = None


def rule_sources_fingerprint() -> str:
    """SHA-256 over every ``repro.lint`` source file (memoized).

    Folding this into each cache key means editing a rule module — or
    the engine itself — invalidates every cached payload, closing the
    second half of the v1 staleness bug.
    """
    global _RULE_SOURCES_FP
    if _RULE_SOURCES_FP is None:
        digest = hashlib.sha256()
        pkg = Path(__file__).resolve().parent
        for source in sorted(pkg.rglob("*.py")):
            digest.update(source.relative_to(pkg).as_posix().encode())
            try:
                digest.update(source.read_bytes())
            except OSError:
                pass
        _RULE_SOURCES_FP = digest.hexdigest()
    return _RULE_SOURCES_FP


def run_lint(
    paths: Optional[Sequence] = None,
    root: Optional[Path] = None,
    config: Optional[LintConfig] = None,
    rules: Optional[Iterable[str]] = None,
    use_cache: bool = True,
    changed_only: Optional[Set[str]] = None,
    use_baseline: bool = True,
) -> LintReport:
    """Lint ``paths`` (default: the configured ones) and report.

    ``changed_only`` narrows *reporting* to the given project-relative
    paths plus everything re-analyzed because of them (dependents whose
    cache keys moved); analysis still covers the full scan set so
    cross-file rules see a complete graph.
    """
    if root is None:
        anchor = Path(paths[0]) if paths else Path.cwd()
        root = find_project_root(anchor)
    root = Path(root).resolve()
    if config is None:
        config = load_config(root)
    active = select_rules(rules)
    lint_paths = [Path(p) for p in paths] if paths \
        else [root / p for p in config.paths]
    files = iter_py_files(lint_paths)

    fingerprint = "|".join((config.fingerprint(), ENGINE_VERSION,
                            ",".join(r.name for r in active),
                            rule_sources_fingerprint()))
    cache_path = root / config.cache_file
    cache = _load_cache(cache_path) if use_cache else {}
    new_cache: Dict[str, dict] = {}

    rels: List[str] = []
    contents: Dict[str, bytes] = {}
    shas: Dict[str, str] = {}
    path_by_rel: Dict[str, Path] = {}
    for path in files:
        rel = _rel_posix(path, root)
        rels.append(rel)
        path_by_rel[rel] = path
        contents[rel] = path.read_bytes()
        shas[rel] = hashlib.sha256(contents[rel]).hexdigest()
    known = set(rels)

    # Pass 1: resolve each file's project imports.  Unchanged files
    # reuse the cached dependency list (same content, same imports);
    # changed files are parsed once here and the tree kept for pass 2.
    trees: Dict[str, Optional[ast.Module]] = {}
    deps_map: Dict[str, List[str]] = {}
    for rel in rels:
        cached = cache.get(rel)
        if cached is not None and cached.get("content_sha") == shas[rel]:
            deps_map[rel] = list(cached.get("deps", ()))
            continue
        tree = _parse(contents[rel], path_by_rel[rel])
        trees[rel] = tree
        if tree is None:
            deps_map[rel] = []
        else:
            deps_map[rel] = build_file_index(tree, rel, config,
                                             known)["deps"]

    def _dep_sha(dep: str) -> str:
        if dep in shas:
            return shas[dep]
        try:  # dependency outside the scan set, hashed from disk
            return hashlib.sha256((root / dep).read_bytes()).hexdigest()
        except OSError:
            return "missing"

    # Pass 2: dependency-aware keys, then analyze what moved.
    summaries: Dict[str, dict] = {}
    analyzed: Set[str] = set()
    cache_hits = 0
    for rel in rels:
        dep_tail = "".join(f"|{d}={_dep_sha(d)}"
                           for d in sorted(deps_map[rel]))
        key = hashlib.sha256(
            contents[rel] + (fingerprint + dep_tail).encode()
        ).hexdigest()
        cached = cache.get(rel)
        if cached is not None and cached.get("key") == key:
            summaries[rel] = cached["summary"]
            new_cache[rel] = cached
            cache_hits += 1
            continue
        tree = trees.get(rel, _MISSING)
        if tree is _MISSING:
            tree = _parse(contents[rel], path_by_rel[rel])
        summary = _analyze_file(tree, path_by_rel[rel], rel,
                                contents[rel], active, config, known)
        summaries[rel] = summary
        analyzed.add(rel)
        new_cache[rel] = {"key": key, "content_sha": shas[rel],
                          "deps": deps_map[rel], "summary": summary}
    if use_cache:
        _save_cache(cache_path, new_cache)

    graph = ProjectGraph(
        {rel: s.get("project", {}) for rel, s in summaries.items()},
        config)

    findings: List[Finding] = []
    for rule in active:
        payloads = {rel: s["rules"].get(rule.name, {})
                    for rel, s in summaries.items()}
        findings.extend(rule.report(payloads, config, graph))
    for rel, s in summaries.items():
        for f in s.get("findings", ()):
            findings.append(Finding(**f))
    findings = _apply_allows(findings, summaries)

    baselined = 0
    stale: List[str] = []
    if use_baseline:
        baseline = load_baseline(root / config.baseline_file)
        findings, baselined, stale = apply_baseline(findings, baseline)

    if changed_only is not None:
        visible = set(changed_only) | analyzed
        findings = [f for f in findings if f.path in visible]
    findings.sort(key=Finding.sort_key)
    return LintReport(findings=findings, files_scanned=len(files),
                      cache_hits=cache_hits, baselined=baselined,
                      stale_baseline=stale)


_MISSING = object()


def _parse(content: bytes, path: Path) -> Optional[ast.Module]:
    try:
        return ast.parse(content.decode("utf-8", errors="replace"),
                         filename=str(path))
    except SyntaxError:
        return None


def _analyze_file(tree: Optional[ast.Module], path: Path, rel: str,
                  content: bytes, rules, config: LintConfig,
                  known: Set[str]) -> dict:
    source = content.decode("utf-8", errors="replace")
    summary: Dict[str, object] = {"rules": {}, "allows": {},
                                  "findings": [], "project": {}}
    if tree is None:
        try:
            ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            summary["findings"] = [{
                "rule": "parse", "path": rel,
                "line": exc.lineno or 1, "col": exc.offset or 0,
                "message": f"file does not parse: {exc.msg}",
                "severity": ERROR,
            }]
        return summary
    directives = scan_directives(source, config)
    summary["allows"] = {str(line): sorted(rules_)
                         for line, rules_ in directives.allows.items()}
    summary["project"] = build_file_index(tree, rel, config, known)
    ctx = FileContext(path=rel, tree=tree, directives=directives,
                      config=config)
    for rule in rules:
        summary["rules"][rule.name] = rule.analyze(ctx)
    return summary


def _apply_allows(findings: List[Finding],
                  summaries: Dict[str, dict]) -> List[Finding]:
    out = []
    for f in findings:
        allows = summaries.get(f.path, {}).get("allows", {})
        granted = set(allows.get(str(f.line), ())) | \
            set(allows.get(str(f.line - 1), ()))
        if f.rule in granted or "all" in granted:
            continue
        out.append(f)
    return out
