"""The lint engine: file discovery, per-file cache, rule dispatch.

Each file is parsed into one AST and every enabled rule analyzes that
tree, producing a JSON-serializable per-file payload.  Payloads are
cached in ``.repro-lint-cache.json`` keyed by a SHA-256 of the file's
content, the configuration fingerprint, the engine version, and the
enabled rule set — an unchanged file is never re-parsed.  Findings are
materialized from the payloads at report time (``snapshot-coverage``
resolves the cross-file class hierarchy there), then ``# lint:
allow[rule]`` waivers are applied.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.config import LintConfig, find_project_root, load_config
from repro.lint.findings import ERROR, Finding, severity_rank
from repro.lint.registry import select_rules
from repro.lint.rules.base import FileContext, scan_directives

#: Bump to invalidate every cached file result after engine changes.
ENGINE_VERSION = "1"

_SKIP_DIRS = {"__pycache__", ".git", ".lint-cache", "node_modules"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    cache_hits: int = 0

    def failed(self, fail_on: str = ERROR) -> bool:
        threshold = severity_rank(fail_on)
        return any(severity_rank(f.severity) >= threshold
                   for f in self.findings)


def iter_py_files(paths: Sequence[Path]) -> List[Path]:
    out: Set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                out.add(path.resolve())
        elif path.is_dir():
            for p in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS or part.startswith(".")
                           for part in p.relative_to(path).parts):
                    out.add(p.resolve())
        else:
            raise FileNotFoundError(f"lint path does not exist: {path}")
    return sorted(out)


def _rel_posix(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _load_cache(path: Path) -> Dict[str, dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("engine") == ENGINE_VERSION:
            return data.get("files", {})
    except (OSError, ValueError):
        pass
    return {}


def _save_cache(path: Path, files: Dict[str, dict]) -> None:
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"engine": ENGINE_VERSION, "files": files}, fh)
    except OSError:
        pass  # a read-only tree just loses caching, never correctness


def run_lint(
    paths: Optional[Sequence] = None,
    root: Optional[Path] = None,
    config: Optional[LintConfig] = None,
    rules: Optional[Iterable[str]] = None,
    use_cache: bool = True,
) -> LintReport:
    """Lint ``paths`` (default: the configured ones) and report."""
    if root is None:
        anchor = Path(paths[0]) if paths else Path.cwd()
        root = find_project_root(anchor)
    root = Path(root).resolve()
    if config is None:
        config = load_config(root)
    active = select_rules(rules)
    lint_paths = [Path(p) for p in paths] if paths \
        else [root / p for p in config.paths]
    files = iter_py_files(lint_paths)

    fingerprint = "|".join((config.fingerprint(), ENGINE_VERSION,
                            ",".join(r.name for r in active)))
    cache_path = root / config.cache_file
    cache = _load_cache(cache_path) if use_cache else {}
    new_cache: Dict[str, dict] = {}

    summaries: Dict[str, dict] = {}
    cache_hits = 0
    for path in files:
        rel = _rel_posix(path, root)
        content = path.read_bytes()
        key = hashlib.sha256(
            content + fingerprint.encode()
        ).hexdigest()
        cached = cache.get(rel)
        if cached is not None and cached.get("key") == key:
            summaries[rel] = cached["summary"]
            new_cache[rel] = cached
            cache_hits += 1
            continue
        summary = _analyze_file(path, rel, content, active, config)
        summaries[rel] = summary
        new_cache[rel] = {"key": key, "summary": summary}
    if use_cache:
        _save_cache(cache_path, new_cache)

    findings: List[Finding] = []
    for rule in active:
        payloads = {rel: s["rules"].get(rule.name, {})
                    for rel, s in summaries.items()}
        findings.extend(rule.report(payloads, config))
    for rel, s in summaries.items():
        for f in s.get("findings", ()):
            findings.append(Finding(**f))
    findings = _apply_allows(findings, summaries)
    findings.sort(key=Finding.sort_key)
    return LintReport(findings=findings, files_scanned=len(files),
                      cache_hits=cache_hits)


def _analyze_file(path: Path, rel: str, content: bytes,
                  rules, config: LintConfig) -> dict:
    source = content.decode("utf-8", errors="replace")
    summary: Dict[str, object] = {"rules": {}, "allows": {},
                                  "findings": []}
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        summary["findings"] = [{
            "rule": "parse", "path": rel,
            "line": exc.lineno or 1, "col": exc.offset or 0,
            "message": f"file does not parse: {exc.msg}",
            "severity": ERROR,
        }]
        return summary
    directives = scan_directives(source, config)
    summary["allows"] = {str(line): sorted(rules_)
                         for line, rules_ in directives.allows.items()}
    ctx = FileContext(path=rel, tree=tree, directives=directives,
                      config=config)
    for rule in rules:
        summary["rules"][rule.name] = rule.analyze(ctx)
    return summary


def _apply_allows(findings: List[Finding],
                  summaries: Dict[str, dict]) -> List[Finding]:
    out = []
    for f in findings:
        allows = summaries.get(f.path, {}).get("allows", {})
        granted = set(allows.get(str(f.line), ())) | \
            set(allows.get(str(f.line - 1), ()))
        if f.rule in granted or "all" in granted:
            continue
        out.append(f)
    return out
