"""error-taxonomy: experiment errors resolve to the PR-4 taxonomy.

Everything under ``taxonomy-paths`` (``src/repro/experiments``) sits
behind retry/poison/resume machinery that classifies failures by
``isinstance`` against :class:`~repro.experiments.errors.
ExperimentError`; a bare ``ValueError`` escaping a worker is retried
as if it were transient noise and invisible to the failure report.
The rule enforces, through the :class:`~repro.lint.project.
ProjectGraph` class hierarchy (multiple inheritance included — the
``class FooError(ExperimentError, ValueError)`` mixin idiom keeps
old ``pytest.raises(ValueError)`` contracts alive):

* every ``raise SomeClass(...)`` resolves to a subclass of the
  configured ``taxonomy-root`` — builtin exceptions are flagged
  (``NotImplementedError``/``StopIteration``/``StopAsyncIteration``
  exempt), foreign project classes are flagged, and a ``raise
  factory(...)`` is followed one call-graph hop into the factory's
  ``return SomeClass(...)`` statements;
* no ``except`` clause swallows ``BaseException``,
  ``KeyboardInterrupt``, or ``SweepInterrupted`` without re-raising —
  graceful shutdown depends on those reaching the supervisor.

``raise`` of a plain name (re-raise of a caught or stored error) is
out of scope; so is anything the graph cannot resolve.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import ERROR, Finding
from repro.lint.rules.base import FileContext, Rule, dotted_name, finding_dict

_BUILTIN_EXCEPTIONS = frozenset(
    name for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)
#: Builtins with control-flow or protocol semantics, not failures.
_EXEMPT_BUILTINS = frozenset({
    "NotImplementedError", "StopIteration", "StopAsyncIteration",
    "GeneratorExit", "SystemExit",
})
#: Exception names an ``except`` clause must not swallow.
_NEVER_SWALLOW = frozenset({
    "BaseException", "KeyboardInterrupt", "SweepInterrupted",
})


def _in_taxonomy_paths(path: str, config: LintConfig) -> bool:
    return any(path == p or path.startswith(p.rstrip("/") + "/")
               for p in config.taxonomy_paths)


class ErrorTaxonomyRule(Rule):
    name = "error-taxonomy"

    def analyze(self, ctx: FileContext) -> dict:
        if not _in_taxonomy_paths(ctx.path, ctx.config):
            return {"findings": []}
        findings: List[dict] = []
        raises: List[dict] = []
        returns: Dict[str, List[List]] = {}

        def qual_of(node: ast.AST,
                    stack: List[str]) -> str:
            return ".".join(stack) if stack else "<module>"

        def visit(body, stack: List[str]) -> None:
            for stmt in body:
                if isinstance(stmt, ast.ClassDef):
                    visit(stmt.body, stack + [stmt.name])
                elif isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    scan_function(stmt, stack + [stmt.name])
                else:
                    scan_statement(stmt, stack)

        def scan_function(fn: ast.AST, stack: List[str]) -> None:
            qual = ".".join(stack[-2:])
            for node in ast.walk(fn):
                if isinstance(node, ast.Raise):
                    record_raise(node, qual)
                elif isinstance(node, ast.Return) and \
                        isinstance(node.value, ast.Call):
                    name = dotted_name(node.value.func)
                    if name:
                        returns.setdefault(qual, []).append(
                            [name, node.lineno])
                elif isinstance(node, ast.ExceptHandler):
                    check_handler(node)

        def scan_statement(stmt: ast.AST, stack: List[str]) -> None:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    record_raise(node, qual_of(node, stack))
                elif isinstance(node, ast.ExceptHandler):
                    check_handler(node)

        def record_raise(node: ast.Raise, qual: str) -> None:
            if not isinstance(node.exc, ast.Call):
                return  # bare re-raise / stored error: out of scope
            name = dotted_name(node.exc.func)
            if name:
                raises.append({"name": name, "line": node.lineno,
                               "qual": qual})

        def check_handler(node: ast.ExceptHandler) -> None:
            caught = self._caught_names(node)
            bad = sorted(
                name for name in caught
                if name.rsplit(".", 1)[-1] in _NEVER_SWALLOW
            )
            if node.type is None:
                bad = ["(bare except)"]
            if not bad:
                return
            reraises = any(isinstance(sub, ast.Raise)
                           for sub in ast.walk(node))
            if not reraises:
                findings.append(finding_dict(
                    self.name, ctx.path, node.lineno,
                    node.col_offset,
                    f"except clause swallows {', '.join(bad)} without "
                    "re-raising; shutdown and interrupt signals must "
                    "reach the supervisor", ERROR))

        visit(ctx.tree.body, [])
        return {"findings": findings, "raises": raises,
                "returns": returns}

    @staticmethod
    def _caught_names(node: ast.ExceptHandler) -> List[str]:
        if node.type is None:
            return []
        exprs = node.type.elts if isinstance(node.type, ast.Tuple) \
            else [node.type]
        out = []
        for expr in exprs:
            name = dotted_name(expr)
            if name:
                out.append(name)
        return out

    # ------------------------------------------------------------------
    def report(self, payloads: Dict[str, dict], config: LintConfig,
               graph=None) -> List[Finding]:
        findings: List[Finding] = []
        for path in sorted(payloads):
            for f in payloads[path].get("findings", ()):
                findings.append(Finding(**f))
        if graph is None:
            return findings
        closure = graph.class_closure(config.taxonomy_root)
        if not closure:
            return findings  # taxonomy root not in the scan set
        for path in sorted(payloads):
            for entry in payloads[path].get("raises", ()):
                findings.extend(self._check_raise(
                    path, entry, closure, payloads, config, graph))
        return findings

    def _check_raise(self, path: str, entry: dict,
                     closure: Set[Tuple[str, str]],
                     payloads: Dict[str, dict], config: LintConfig,
                     graph) -> List[Finding]:
        name, line = entry["name"], entry["line"]
        verdict = self._classify(path, name, closure, config, graph)
        if verdict == "ok":
            return []
        if verdict is not None:
            return [Finding(rule=self.name, path=path, line=line,
                            col=0, message=verdict, severity=ERROR)]
        # Not a class: maybe a factory — follow one call-graph hop
        # into its ``return SomeError(...)`` statements.
        target = graph.resolve_call(path, entry.get("qual", ""), name)
        if target is None:
            return []
        tpath, tqual = target
        out: List[Finding] = []
        for rname, rline in payloads.get(tpath, {}).get(
                "returns", {}).get(tqual, ()):
            verdict = self._classify(tpath, rname, closure, config,
                                     graph)
            if verdict not in (None, "ok"):
                out.append(Finding(
                    rule=self.name, path=tpath, line=rline, col=0,
                    message=(
                        f"factory {tqual} (raised at {path}:{line}) "
                        f"returns: {verdict}"),
                    severity=ERROR))
        return out

    @staticmethod
    def _classify(path: str, name: str,
                  closure: Set[Tuple[str, str]], config: LintConfig,
                  graph) -> Optional[str]:
        """'ok', a violation message, or None (not a class)."""
        site = graph.resolve_class(path, name)
        if site is not None:
            if tuple(site) in closure:
                return "ok"
            return (f"raises {name} which is not a "
                    f"{config.taxonomy_root} subclass; add the "
                    f"taxonomy mixin (class X({config.taxonomy_root}, "
                    "...)) or a waiver")
        last = name.rsplit(".", 1)[-1]
        if last in _BUILTIN_EXCEPTIONS:
            if last in _EXEMPT_BUILTINS:
                return "ok"
            return (f"raises builtin {last}; raise a "
                    f"{config.taxonomy_root} subclass so retry and "
                    "failure accounting can classify it")
        return None
