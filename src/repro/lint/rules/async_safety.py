"""async-safety: coroutines in the service stack must never block.

The sharded sweep service (PR 8) runs its scheduler and every shard
supervisor on one asyncio event loop; a single blocking call there
stalls heartbeats for *all* shards and trips the watchdog.  For every
``async def`` in the configured ``async-paths`` the rule flags:

* **direct blocking calls** — ``time.sleep``, ``os.fsync``/``system``,
  ``subprocess.*``, builtin ``open``, ``Path.read_text`` and friends,
  ``Queue.get(timeout=None)``, and ``.join()`` on process/thread-named
  receivers;
* **transitive blocking calls** — the same set reached through the
  :class:`~repro.lint.project.ProjectGraph` call graph (e.g. a shard
  loop calling a sweep-engine helper that joins a worker process);
  findings anchor at the first call edge inside the coroutine, which
  is where a waiver belongs;
* **unsafe signal handlers** — callbacks registered through
  ``loop.add_signal_handler`` / ``signal.signal`` may only set flags
  (``Event.set``-style calls, ``os.write``); anything else — and any
  lambda handler — is flagged;
* **``await`` under a synchronous lock** — holding ``with lock:``
  across an ``await`` serializes the loop against foreign threads;
  use ``asyncio.Lock`` with ``async with``.

Per-function blocking sites are recorded for *every* scanned file (the
transitive check needs them project-wide); findings are only raised
for coroutines and handlers in ``async-paths``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import ERROR, Finding
from repro.lint.rules.base import FileContext, Rule, dotted_name, finding_dict

#: Absolute dotted names (after import-alias resolution) that block.
_BLOCKING_EXACT = {
    "time.sleep": "time.sleep()",
    "os.fsync": "os.fsync()",
    "os.fdatasync": "os.fdatasync()",
    "os.system": "os.system()",
    "os.popen": "os.popen()",
    "os.wait": "os.wait()",
    "os.waitpid": "os.waitpid()",
    "socket.create_connection": "socket.create_connection()",
    "urllib.request.urlopen": "urllib.request.urlopen()",
}
_BLOCKING_PREFIXES = ("subprocess.", "shutil.")
#: Attribute calls that hit the filesystem regardless of receiver.
_BLOCKING_SUFFIXES = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})
#: ``x.join()`` blocks when ``x`` smells like a process or thread.
_JOIN_RECEIVERS = ("proc", "process", "thread", "worker")

#: Call names a signal handler may make: flag sets and async-safe
#: wakeups only (``signal-safety`` in the POSIX sense).
_HANDLER_SAFE_SUFFIXES = frozenset({
    "set", "is_set", "clear", "put_nowait", "call_soon_threadsafe",
    "append", "appendleft",
})
_HANDLER_SAFE_EXACT = frozenset({"os.write"})

#: Registration calls whose second argument is a signal handler.
_REGISTRATION_SUFFIXES = frozenset({"add_signal_handler"})


def blocking_reason(node: ast.Call,
                    imports: Dict[str, str]) -> Optional[str]:
    """Why this call blocks the event loop, or None."""
    name = dotted_name(node.func)
    if name is None:
        return None
    if name == "open" and "open" not in imports:
        return "builtin open()"
    head, _, rest = name.partition(".")
    target = imports.get(head)
    absolute = f"{target}.{rest}" if (target and rest) else \
        (target if target else name)
    if absolute in _BLOCKING_EXACT:
        return _BLOCKING_EXACT[absolute]
    for prefix in _BLOCKING_PREFIXES:
        if absolute.startswith(prefix):
            return f"{absolute}()"
    parts = name.rsplit(".", 2)
    last = parts[-1]
    if last in _BLOCKING_SUFFIXES:
        return f".{last}() file I/O"
    if last == "get":
        for kw in node.keywords:
            if kw.arg == "timeout" and \
                    isinstance(kw.value, ast.Constant) and \
                    kw.value.value is None:
                return ".get(timeout=None)"
    if last == "join" and len(parts) >= 2:
        receiver = parts[-2].lower()
        if any(tok in receiver for tok in _JOIN_RECEIVERS):
            return f"{name}() process/thread join"
    return None


def _imports_of(tree: ast.Module) -> Dict[str, str]:
    from repro.lint.project import _collect_imports
    return _collect_imports(tree, None)


class AsyncSafetyRule(Rule):
    name = "async-safety"

    def analyze(self, ctx: FileContext) -> dict:
        imports = _imports_of(ctx.tree)
        functions: Dict[str, dict] = {}

        def record(fn: ast.AST, qual: str) -> None:
            blocking: List[Tuple[str, int]] = []
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    reason = blocking_reason(node, imports)
                    if reason:
                        blocking.append((reason, node.lineno))
            functions[qual] = {
                "async": isinstance(fn, ast.AsyncFunctionDef),
                "line": fn.lineno,
                "blocking": blocking,
            }

        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                record(stmt, stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        record(sub, f"{stmt.name}.{sub.name}")

        findings: List[dict] = []
        handlers: List[Tuple[str, int]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                last = name.rsplit(".", 1)[-1] if name else ""
                is_reg = last in _REGISTRATION_SUFFIXES or \
                    name == "signal.signal"
                if is_reg and len(node.args) >= 2:
                    target = node.args[1]
                    if isinstance(target, ast.Lambda):
                        findings.append(finding_dict(
                            self.name, ctx.path, target.lineno,
                            target.col_offset,
                            "signal handler is a lambda; register a "
                            "named flag-set function so its body can "
                            "be audited", ERROR))
                    else:
                        tname = dotted_name(target)
                        if tname:
                            handlers.append((tname, node.lineno))
            elif isinstance(node, ast.With) and \
                    self._locks_in_items(node):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Await):
                        findings.append(finding_dict(
                            self.name, ctx.path, sub.lineno,
                            sub.col_offset,
                            "'await' while holding a synchronous lock "
                            "stalls the event loop; use asyncio.Lock "
                            "with 'async with'", ERROR))
                        break
        return {"functions": functions, "handlers": handlers,
                "findings": findings}

    @staticmethod
    def _locks_in_items(node: ast.With) -> bool:
        for item in node.items:
            name = dotted_name(item.context_expr)
            if name is None and isinstance(item.context_expr, ast.Call):
                name = dotted_name(item.context_expr.func)
            if name and "lock" in name.rsplit(".", 1)[-1].lower():
                return True
        return False

    # ------------------------------------------------------------------
    def report(self, payloads: Dict[str, dict], config: LintConfig,
               graph=None) -> List[Finding]:
        findings: List[Finding] = []
        for path in sorted(payloads):
            for f in payloads[path].get("findings", ()):
                findings.append(Finding(**f))
        if graph is None:
            return findings
        for path in sorted(payloads):
            if path not in config.async_paths:
                continue
            payload = payloads[path]
            for qual, info in sorted(payload.get("functions",
                                                 {}).items()):
                if not info["async"]:
                    continue
                findings.extend(self._check_coroutine(
                    path, qual, info, payloads, graph))
            for hname, line in payload.get("handlers", ()):
                findings.extend(self._check_handler(
                    path, hname, line, payloads, graph))
        return findings

    def _check_coroutine(self, path: str, qual: str, info: dict,
                         payloads: Dict[str, dict],
                         graph) -> List[Finding]:
        findings: List[Finding] = []
        for reason, line in info["blocking"]:
            findings.append(Finding(
                rule=self.name, path=path, line=line, col=0,
                message=f"blocking call {reason} inside "
                        f"'async def {qual}' stalls the event loop",
                severity=ERROR))
        # Transitive: chase call edges; anchor at the first hop so the
        # waiver sits next to the call that imports the blockage.
        visited: Set[Tuple[str, str]] = {(path, qual)}
        flagged: Set[Tuple[str, str]] = set()
        root_info = graph.lookup(path, qual)
        if root_info is None:
            return findings
        stack: List[Tuple[str, str, int, str, int]] = []
        for name, line in root_info["calls"]:
            target = graph.resolve_call(path, qual, name)
            if target and target != (path, qual):
                stack.append((target[0], target[1], line, name, 0))
        while stack:
            tpath, tqual, anchor, via, depth = stack.pop()
            if (tpath, tqual) in visited or depth > 8:
                continue
            visited.add((tpath, tqual))
            blocking = payloads.get(tpath, {}).get(
                "functions", {}).get(tqual, {}).get("blocking", ())
            for reason, bline in blocking:
                key = (tpath, f"{tqual}:{reason}")
                if key in flagged:
                    continue
                flagged.add(key)
                findings.append(Finding(
                    rule=self.name, path=path, line=anchor, col=0,
                    message=(
                        f"'async def {qual}' reaches blocking call "
                        f"{reason} in {tqual} ({tpath}:{bline}) via "
                        f"{via}"),
                    severity=ERROR))
            ginfo = graph.lookup(tpath, tqual)
            if ginfo is None:
                continue
            for name, _line in ginfo["calls"]:
                target = graph.resolve_call(tpath, tqual, name)
                if target:
                    stack.append((target[0], target[1], anchor, via,
                                  depth + 1))
        return findings

    def _check_handler(self, path: str, hname: str, line: int,
                       payloads: Dict[str, dict],
                       graph) -> List[Finding]:
        target = graph.resolve_call(path, "", hname)
        if target is None:
            return []
        tinfo = graph.lookup(target[0], target[1])
        if tinfo is None:
            return []
        findings: List[Finding] = []
        tpayload = payloads.get(target[0], {})
        pinfo = tpayload.get("functions", {}).get(target[1], {})
        for reason, bline in pinfo.get("blocking", ()):
            findings.append(Finding(
                rule=self.name, path=path, line=line, col=0,
                message=f"signal handler {hname} makes blocking call "
                        f"{reason} ({target[0]}:{bline})",
                severity=ERROR))
        for cname, cline in tinfo["calls"]:
            last = cname.rsplit(".", 1)[-1]
            if last in _HANDLER_SAFE_SUFFIXES or \
                    cname in _HANDLER_SAFE_EXACT:
                continue
            findings.append(Finding(
                rule=self.name, path=path, line=line, col=0,
                message=(
                    f"signal handler {hname} calls {cname} "
                    f"({target[0]}:{cline}); handlers are restricted "
                    "to flag-set and signal-safe operations"),
                severity=ERROR))
        return findings
