"""snapshot-coverage: every mutable SimComponent attribute is snapshotted.

For each ``SimComponent`` subclass the rule collects every ``self.X``
assignment target (plain/annotated/augmented assigns, stores through
subscripts or nested attributes, and receivers of mutating calls such
as ``self.X.append(...)``) across all methods, then checks the state
protocol:

* attributes assigned **only** in ``__init__`` are configuration and
  exempt;
* every other (mutable) attribute must be *covered* by ``state_dict``
  and ``load_state_dict``;
* attributes mutated outside ``reset`` must additionally be covered by
  ``reset``.

"Covered" means the method mentions ``self.X``, names the attribute as
a string constant (``"x"`` or ``"_x"`` — the ``_STATE_FIELDS`` idiom,
including class-level tuples of field names), or escapes to dynamic
attribute access (``self.__dict__`` / ``vars(self)`` /
``getattr(self, ...)`` — the ``InstructionPrefetcher`` deepcopy and
``HierarchicalPrefetcher`` scalar-loop idioms).  Protocol methods are
resolved through the class hierarchy across files, so a prefetcher that
inherits ``InstructionPrefetcher.state_dict`` is judged against it.

Derived state that is provably rebuilt (TAGE folded-history registers,
bound decode tables) is waived with ``# lint: ephemeral`` on — or
directly above — any of its assignment sites.

The per-file output is a pure class index, so results cache cleanly;
hierarchy resolution happens at report time over the whole run.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import ERROR, Finding
from repro.lint.rules.base import (
    FileContext,
    Rule,
    self_attr_chain,
    self_attr_root,
)

#: Method names whose call on ``self.X`` mutates ``X`` in place.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popleft", "popitem", "push",
    "remove", "reverse", "rotate", "setdefault", "sort", "update",
})

_PROTOCOL = ("state_dict", "load_state_dict", "reset")
_ROOT_CLASS = "SimComponent"


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Attribute):
            names.append(base.attr)
        elif isinstance(base, ast.Name):
            names.append(base.id)
    return names


def _assignment_targets(node: ast.AST) -> List[ast.AST]:
    """Flattened assignment-target expressions of a statement."""
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AnnAssign):
        targets = [node.target] if node.value is not None else []
    elif isinstance(node, ast.AugAssign):
        targets = [node.target]
    elif isinstance(node, ast.For):
        targets = [node.target]
    flat: List[ast.AST] = []
    stack = list(targets)
    while stack:
        t = stack.pop()
        if isinstance(t, (ast.Tuple, ast.List)):
            stack.extend(t.elts)
        elif isinstance(t, ast.Starred):
            stack.append(t.value)
        else:
            flat.append(t)
    return flat


def _analyze_method(fn: ast.AST, ctx: FileContext) -> dict:
    """Attribute stores/mentions/strings/escape info for one method."""
    assigned: Dict[str, int] = {}      # attr -> first site line
    waived: Set[str] = set()
    mentions: Set[str] = set()
    strings: Set[str] = set()
    self_calls: Set[str] = set()       # self.m(...) -> coverage via m
    escape = False
    for node in ast.walk(fn):
        stores: List[str] = []
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                             ast.For)):
            for target in _assignment_targets(node):
                attr = self_attr_root(target)
                if attr:
                    stores.append(attr)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in MUTATOR_METHODS:
                attr = self_attr_root(func.value)
                if attr:
                    stores.append(attr)
            if isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == "self":
                self_calls.add(func.attr)
            if isinstance(func, ast.Name) and \
                    func.id in ("getattr", "setattr", "delattr", "vars") \
                    and node.args \
                    and isinstance(node.args[0], ast.Name) \
                    and node.args[0].id == "self":
                escape = True
        if isinstance(node, ast.Attribute):
            chain = self_attr_chain(node)
            if chain:
                if chain[0] == "__dict__":
                    escape = True
                elif not chain[0].startswith("__"):
                    mentions.add(chain[0])
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            strings.add(node.value)
        for attr in stores:
            if attr.startswith("__"):
                continue
            assigned.setdefault(attr, node.lineno)
            if ctx.waived_ephemeral(node):
                waived.add(attr)
    return {
        "assigned": {a: line for a, line in assigned.items()},
        "waived": sorted(waived),
        "mentions": sorted(mentions),
        "strings": sorted(strings),
        "self_calls": sorted(self_calls),
        "escape": escape,
    }


def _covered(attr: str, proto: Optional[dict],
             class_strings: Sequence[str],
             method_map: Dict[str, dict]) -> bool:
    """Coverage closure: a protocol method covers an attribute directly
    or through any ``self.helper()`` it (transitively) calls — e.g.
    ``reset`` delegating to ``clear``, or ``load_state_dict`` rebuilding
    folds via ``_rebuild_folds``."""
    if proto is None:
        return False
    stripped = attr.lstrip("_")
    seen_names: Set[str] = set(class_strings)
    visited: Set[int] = set()
    stack = [proto]
    while stack:
        m = stack.pop()
        if id(m) in visited:
            continue
        visited.add(id(m))
        if m["escape"] or attr in m["mentions"]:
            return True
        seen_names.update(m["strings"])
        for call in m.get("self_calls", ()):
            target = method_map.get(call)
            if target is not None:
                stack.append(target)
    return attr in seen_names or stripped in seen_names


class SnapshotCoverageRule(Rule):
    name = "snapshot-coverage"

    def analyze(self, ctx: FileContext) -> dict:
        classes: Dict[str, dict] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            class_strings: Set[str] = set()
            methods: Dict[str, dict] = {}
            for stmt in node.body:
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Constant) and \
                                isinstance(sub.value, str):
                            class_strings.add(sub.value)
                elif isinstance(stmt, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    methods[stmt.name] = _analyze_method(stmt, ctx)
            classes[node.name] = {
                "line": node.lineno,
                "bases": _base_names(node),
                "class_strings": sorted(class_strings),
                "methods": methods,
            }
        return {"classes": classes, "findings": []}

    # ------------------------------------------------------------------
    def report(self, payloads: Dict[str, dict], config: LintConfig,
               graph=None) -> List[Finding]:
        # name -> (path, info); simple names are unique in this repo.
        index: Dict[str, Tuple[str, dict]] = {}
        for path in sorted(payloads):
            for name, info in payloads[path].get("classes", {}).items():
                index[name] = (path, info)

        descendants: Set[str] = set()
        known = {_ROOT_CLASS}
        changed = True
        while changed:
            changed = False
            for name, (_, info) in index.items():
                if name in known or name == _ROOT_CLASS:
                    continue
                if any(base in known for base in info["bases"]):
                    known.add(name)
                    descendants.add(name)
                    changed = True

        findings: List[Finding] = []
        for name in sorted(descendants):
            path, info = index[name]
            findings.extend(self._check_class(name, path, info, index,
                                              config))
        return findings

    def _chain(self, name: str,
               index: Dict[str, Tuple[str, dict]]) -> List[dict]:
        """DFS linearization of ``name`` and its scanned ancestors."""
        out: List[dict] = []
        seen: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop(0)
            if current in seen or current == _ROOT_CLASS or \
                    current not in index:
                continue
            seen.add(current)
            info = index[current][1]
            out.append(info)
            stack = info["bases"] + stack
        return out

    def _check_class(self, name: str, path: str, info: dict,
                     index: Dict[str, Tuple[str, dict]],
                     config: LintConfig) -> List[Finding]:
        chain = self._chain(name, index)
        chain_strings: List[str] = []
        for c in chain:
            chain_strings.extend(c["class_strings"])
        # First definition along the chain wins (approximate MRO).
        method_map: Dict[str, dict] = {}
        for c in chain:
            for m_name, m in c["methods"].items():
                method_map.setdefault(m_name, m)
        protocol: Dict[str, Optional[dict]] = {
            proto_name: method_map.get(proto_name)
            for proto_name in _PROTOCOL
        }

        # Own attributes only: inherited state is checked on the class
        # that defines the methods mutating it.
        attrs: Dict[str, dict] = {}
        waived: Set[str] = set()
        for method_name, method in info["methods"].items():
            waived.update(method["waived"])
            for attr, line in method["assigned"].items():
                entry = attrs.setdefault(attr, {"methods": set(),
                                                "line": line})
                entry["methods"].add(method_name)
                entry["line"] = min(entry["line"], line)

        findings: List[Finding] = []
        wiring = set(config.wiring_attrs)
        for attr in sorted(attrs):
            if attr in wiring or attr in waived:
                continue
            methods = attrs[attr]["methods"]
            mutators = methods - {"__init__", "state_dict",
                                  "load_state_dict"}
            if not mutators:
                continue  # configuration: only ever set in __init__
            missing = [m for m in ("state_dict", "load_state_dict")
                       if not _covered(attr, protocol[m], chain_strings,
                                       method_map)]
            if mutators - {"reset"} and \
                    not _covered(attr, protocol["reset"], chain_strings,
                                 method_map):
                missing.append("reset")
            if missing:
                where = ", ".join(sorted(mutators))
                findings.append(Finding(
                    rule=self.name,
                    path=path,
                    line=attrs[attr]["line"],
                    col=0,
                    message=(
                        f"{name}.{attr} is mutated (in {where}) but not "
                        f"covered by {', '.join(missing)}; snapshot it "
                        "or waive derived state with '# lint: ephemeral'"
                    ),
                    severity=ERROR,
                ))
        return findings
