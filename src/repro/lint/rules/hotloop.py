"""hot-loop: hygiene inside ``# lint: hot-begin``/``hot-end`` fences.

The fenced regions are the three per-commit code paths PR 3 optimized
(``FrontEndSimulator._run_range``, ``FDIPFrontEnd.advance``,
``HierarchicalPrefetcher.on_commit``); every statement there executes
once per committed block, so the 2–3x hot-loop win regresses silently
if costly idioms creep back in.  Inside a fence the rule flags:

* per-iteration allocation — list/dict/set displays, comprehensions,
  generator expressions, lambdas and nested ``def`` (error);
* module-global name reads inside a ``for``/``while`` loop — PR 3
  hoisted these to locals before the loop; a global read per iteration
  is a dict lookup per commit (error);
* repeated ``self.x.y`` attribute chains — two attribute lookups per
  occurrence that a single local binding would pay once (warning).

Files listed under ``fenced-paths`` in ``[tool.repro.lint]`` must
contain at least one fence: deleting a fence silently disables the
checks, so its absence is itself an error.
"""

from __future__ import annotations

import ast
import builtins
from collections import Counter
from typing import Dict, List, Set, Tuple

from repro.lint.findings import ERROR, WARNING
from repro.lint.rules.base import (
    FileContext,
    Rule,
    finding_dict,
    self_attr_chain,
)

_BUILTIN_NAMES = frozenset(dir(builtins))
_ALLOC_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
                ast.DictComp, ast.GeneratorExp, ast.Lambda)
_ALLOC_LABEL = {
    ast.List: "list display", ast.Dict: "dict display",
    ast.Set: "set display", ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension", ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression", ast.Lambda: "lambda",
}


def _span(node: ast.AST) -> Tuple[int, int]:
    return node.lineno, getattr(node, "end_lineno", node.lineno)


def _function_locals(fn: ast.AST) -> Set[str]:
    """Names bound anywhere in the function (conservative superset)."""
    names: Set[str] = set()
    args = fn.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        names.add(a.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and \
                isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not fn:
            names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names


def _module_globals(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for t in targets:
                for sub in ast.walk(t):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
    return names


class HotLoopRule(Rule):
    name = "hot-loop"

    def analyze(self, ctx: FileContext) -> dict:
        findings: List[dict] = []

        def flag(line: int, col: int, message: str,
                 severity: str = ERROR) -> None:
            findings.append(finding_dict(self.name, ctx.path, line, col,
                                         message, severity))

        for line, message in ctx.directives.problems:
            flag(line, 0, message)
        fences = ctx.directives.fences
        if ctx.path in ctx.config.fenced_paths and not fences:
            flag(1, 0, "file is listed in [tool.repro.lint] fenced-paths "
                       "but contains no '# lint: hot-begin' fence — the "
                       "hot-loop hygiene checks are silently off")
        if not fences:
            return {"findings": findings}

        functions = [n for n in ast.walk(ctx.tree)
                     if isinstance(n, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))]
        module_names = _module_globals(ctx.tree)

        for lo, hi in fences:
            scope = self._enclosing_function(functions, lo, hi)
            local_names = _function_locals(scope) if scope else set()
            region = self._region_nodes(scope or ctx.tree, lo, hi)
            self._check_allocations(region, flag)
            self._check_chains(region, flag)
            self._check_global_loads(region, module_names, local_names,
                                     flag)
        return {"findings": findings}

    # ------------------------------------------------------------------
    @staticmethod
    def _enclosing_function(functions, lo: int, hi: int):
        """Innermost function containing the whole fence, if any."""
        best = None
        for fn in functions:
            f_lo, f_hi = _span(fn)
            if f_lo <= lo and hi <= f_hi:
                if best is None or f_lo >= best.lineno:
                    best = fn
        return best

    @staticmethod
    def _region_nodes(root: ast.AST, lo: int, hi: int) -> List[ast.AST]:
        return [n for n in ast.walk(root)
                if getattr(n, "lineno", None) is not None
                and lo <= n.lineno <= hi]

    def _check_allocations(self, region, flag) -> None:
        for node in region:
            if isinstance(node, _ALLOC_NODES):
                flag(node.lineno, node.col_offset,
                     f"{_ALLOC_LABEL[type(node)]} allocated inside a hot "
                     "region; hoist it above the fence")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                flag(node.lineno, node.col_offset,
                     "closure defined inside a hot region; define it "
                     "once outside the fence")

    def _check_chains(self, region, flag) -> None:
        """Repeated ``self.x.y``+ load chains within one fence."""
        counts: Counter = Counter()
        first: Dict[str, Tuple[int, int]] = {}
        inner_attrs: Set[int] = set()
        for node in region:
            if not isinstance(node, ast.Attribute) or \
                    not isinstance(node.ctx, ast.Load):
                continue
            if id(node) in inner_attrs:
                continue
            chain = self_attr_chain(node)
            if not chain or len(chain) < 2:
                continue
            # Only count the outermost attribute of each chain.
            for sub in ast.walk(node):
                if sub is not node and isinstance(sub, ast.Attribute):
                    inner_attrs.add(id(sub))
            key = "self." + ".".join(chain)
            counts[key] += 1
            first.setdefault(key, (node.lineno, node.col_offset))
        for key, n in sorted(counts.items()):
            if n >= 2:
                line, col = first[key]
                flag(line, col,
                     f"attribute chain {key} read {n} times in a hot "
                     "region; bind it to a local once", WARNING)

    def _check_global_loads(self, region, module_names: Set[str],
                            local_names: Set[str], flag) -> None:
        seen: Set[str] = set()
        for node in region:
            if not isinstance(node, (ast.For, ast.While)):
                continue
            for sub in ast.walk(node):
                if not (isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)):
                    continue
                name = sub.id
                if name in seen or name in local_names \
                        or name in _BUILTIN_NAMES \
                        or name not in module_names:
                    continue
                seen.add(name)
                flag(sub.lineno, sub.col_offset,
                     f"module-global '{name}' read inside a hot loop; "
                     "hoist it to a local before the loop (PR 3 idiom)")
