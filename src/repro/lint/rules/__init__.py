"""Per-rule AST visitors for ``repro lint``.

Each rule module exposes a class with:

* ``name`` — the rule identifier (``--rule NAME``);
* ``analyze(ctx)`` — walk ``ctx.tree`` once and return a
  JSON-serializable per-file payload (cached by content hash);
* ``report(payloads, config)`` — turn the per-file payloads of a whole
  run into :class:`~repro.lint.findings.Finding` records.  Most rules
  emit findings directly from ``analyze``; ``snapshot-coverage`` defers
  to ``report`` because resolving the ``SimComponent`` class hierarchy
  needs every file's class index.
"""

from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.hotloop import HotLoopRule
from repro.lint.rules.pickles import PickleSafetyRule
from repro.lint.rules.snapshot import SnapshotCoverageRule

__all__ = [
    "DeterminismRule",
    "HotLoopRule",
    "PickleSafetyRule",
    "SnapshotCoverageRule",
]
