"""Per-rule AST visitors for ``repro lint``.

Each rule module exposes a class with:

* ``name`` — the rule identifier (``--rule NAME``);
* ``analyze(ctx)`` — walk ``ctx.tree`` once and return a
  JSON-serializable per-file payload (cached by content hash);
* ``report(payloads, config, graph)`` — turn the per-file payloads of
  a whole run into :class:`~repro.lint.findings.Finding` records,
  with the shared :class:`~repro.lint.project.ProjectGraph` available
  for cross-file resolution.  Most per-file rules emit findings
  directly from ``analyze``; ``snapshot-coverage`` resolves the
  ``SimComponent`` hierarchy at report time, and the project-level
  rules (``async-safety``, ``event-schema``, ``error-taxonomy``) walk
  the graph there.
"""

from repro.lint.rules.async_safety import AsyncSafetyRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.event_schema import EventSchemaRule
from repro.lint.rules.hotloop import HotLoopRule
from repro.lint.rules.ordering import CrashOrderingRule
from repro.lint.rules.pickles import PickleSafetyRule
from repro.lint.rules.snapshot import SnapshotCoverageRule
from repro.lint.rules.taxonomy import ErrorTaxonomyRule
from repro.lint.rules.transport import BoundaryTransportRule

__all__ = [
    "AsyncSafetyRule",
    "BoundaryTransportRule",
    "CrashOrderingRule",
    "DeterminismRule",
    "ErrorTaxonomyRule",
    "EventSchemaRule",
    "HotLoopRule",
    "PickleSafetyRule",
    "SnapshotCoverageRule",
]
