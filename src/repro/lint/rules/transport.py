"""boundary-transport: WorkUnit/WorkOutcome payloads stay JSON-safe.

The service's queue/result protocol (``WorkUnit`` / ``WorkOutcome``)
is deliberately flat and JSON-serializable — that is the whole remote
story: a future remote pool serializes the same two messages over a
socket.  ``pickle-safety`` guards the *current* fork boundary; this
rule guards the *declared* one: every expression passed to a
transport-class constructor is checked against JSON's type lattice.

Flagged value expressions (with one level of local dataflow — a name
is traced to its nearest preceding assignment in the same function):

* lambdas, generator expressions, set literals/comprehensions;
* ``bytes`` literals and calls to ``set``/``frozenset``/``bytes``/
  ``bytearray``/``memoryview``/``open``;
* ``pathlib`` constructors (``Path(...)`` serializes as a string only
  if someone remembers to convert — require the conversion at the
  construction site);
* dict displays with non-string literal keys.

Anything the rule cannot classify (attribute loads, subscripts, calls
into user code) passes — like the rest of the linter, missed edges
cost recall, never false positives.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.lint.findings import ERROR
from repro.lint.rules.base import FileContext, Rule, dotted_name, finding_dict

_UNSAFE_CALLS = frozenset({
    "set", "frozenset", "bytes", "bytearray", "memoryview", "open",
    "Path", "PurePath", "PosixPath", "WindowsPath", "PurePosixPath",
    "PureWindowsPath",
})


def _json_unsafe_reason(node: ast.AST) -> Optional[str]:
    """Why this expression can't cross a JSON boundary, or None."""
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.GeneratorExp):
        return "a generator expression"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
        return "a bytes literal"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name:
            last = name.rsplit(".", 1)[-1]
            if last in _UNSAFE_CALLS:
                return f"a {last}() value"
    if isinstance(node, ast.Dict):
        for key in node.keys:
            if isinstance(key, ast.Constant) and \
                    not isinstance(key.value, str):
                return (f"a dict with non-string key "
                        f"{key.value!r}")
    return None


class BoundaryTransportRule(Rule):
    name = "boundary-transport"

    def analyze(self, ctx: FileContext) -> dict:
        findings: List[dict] = []
        transport = set(ctx.config.transport_classes)

        functions = [n for n in ast.walk(ctx.tree)
                     if isinstance(n, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name or name.rsplit(".", 1)[-1] not in transport:
                continue
            cls = name.rsplit(".", 1)[-1]
            scope = self._enclosing(functions, node.lineno)
            for pos, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    continue
                self._check_value(ctx, cls, f"positional arg {pos}",
                                  arg, scope, findings)
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                self._check_value(ctx, cls, f"field '{kw.arg}'",
                                  kw.value, scope, findings)
        return {"findings": findings}

    @staticmethod
    def _enclosing(functions: List[ast.AST],
                   line: int) -> Optional[ast.AST]:
        best = None
        for fn in functions:
            lo = fn.lineno
            hi = getattr(fn, "end_lineno", lo)
            if lo <= line <= hi and \
                    (best is None or lo >= best.lineno):
                best = fn
        return best

    def _check_value(self, ctx: FileContext, cls: str, slot: str,
                     value: ast.AST, scope: Optional[ast.AST],
                     findings: List[dict]) -> None:
        reason = _json_unsafe_reason(value)
        if reason is None and isinstance(value, ast.Name) and scope:
            source = self._local_source(scope, value)
            if source is not None:
                reason = _json_unsafe_reason(source)
                if reason is not None:
                    reason = (f"{reason} (assigned to "
                              f"'{value.id}' at line "
                              f"{source.lineno})")
        if reason is not None:
            findings.append(finding_dict(
                self.name, ctx.path, value.lineno, value.col_offset,
                f"{cls} {slot} receives {reason}; transport payloads "
                "must be JSON-serializable (see WorkUnit.to_spec)",
                ERROR))

    @staticmethod
    def _local_source(scope: ast.AST,
                      use: ast.Name) -> Optional[ast.AST]:
        """Nearest single-target assignment to ``use`` above it."""
        best: Optional[ast.Assign] = None
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            if node.lineno >= use.lineno:
                continue
            if any(isinstance(t, ast.Name) and t.id == use.id
                   for t in node.targets):
                if best is None or node.lineno > best.lineno:
                    best = node
        return best.value if best is not None else None
