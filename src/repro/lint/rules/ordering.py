"""crash-ordering: annotated fsync sequences keep their order.

The resume correctness proof (docs/RESILIENCE.md) rests on two
write-ordering disciplines:

* **atomic-replace** — durable files are produced as
  mkstemp → write → fsync → ``os.replace`` so a crash leaves either
  the old complete file or the new complete file, never a torn one
  (``DiskCache.put``, the journal's ``meta.json`` writer);
* **persist-before-append** — a point's result is persisted to the
  disk cache *before* its ``completed`` record is appended to the
  journal, so replay never trusts a journal record whose artifact
  is missing (``_Scheduler.resolve``).

Those sequences are marked in source with ``# lint: ordered[template]``
… ``# lint: ordered-end``; inside each region the rule classifies
calls (write/dump, fsync, replace/rename, cache-put/seed, emit/append)
and verifies the template's ops are all present and ordered.  Files
listed under ``ordered-paths`` must contain at least one region —
deleting the annotation (and with it the check) is itself an error,
exactly like the hot-loop fences.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from repro.lint.findings import ERROR
from repro.lint.rules.base import FileContext, Rule, dotted_name, finding_dict

ATOMIC_REPLACE = "atomic-replace"
PERSIST_BEFORE_APPEND = "persist-before-append"
_TEMPLATES = (ATOMIC_REPLACE, PERSIST_BEFORE_APPEND)

#: Call-name last segments per op class.
_WRITE_OPS = frozenset({"write", "writelines", "dump"})
_FSYNC_OPS = frozenset({"fsync", "fdatasync"})
_REPLACE_OPS = frozenset({"replace", "rename"})
_PERSIST_OPS = frozenset({"seed_cache", "put"})
_APPEND_OPS = frozenset({"emit", "append"})


def _region_calls(tree: ast.Module, lo: int,
                  hi: int) -> List[Tuple[str, int]]:
    calls = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and lo <= node.lineno <= hi:
            name = dotted_name(node.func)
            if name:
                calls.append((name, node.lineno))
    return sorted(calls, key=lambda c: c[1])


def _op_lines(calls: List[Tuple[str, int]],
              ops: frozenset) -> List[int]:
    return [line for name, line in calls
            if name.rsplit(".", 1)[-1] in ops]


class CrashOrderingRule(Rule):
    name = "crash-ordering"

    def analyze(self, ctx: FileContext) -> dict:
        findings: List[dict] = []

        def flag(line: int, message: str) -> None:
            findings.append(finding_dict(self.name, ctx.path, line, 0,
                                         message, ERROR))

        regions = ctx.directives.ordered
        if ctx.path in ctx.config.ordered_paths and not regions:
            flag(1, "file is listed in [tool.repro.lint] ordered-paths "
                    "but contains no '# lint: ordered[...]' region — "
                    "the crash-ordering checks are silently off")
        for lo, hi, template in regions:
            if template == ATOMIC_REPLACE:
                self._check_atomic(ctx, lo, hi, flag)
            elif template == PERSIST_BEFORE_APPEND:
                self._check_persist(ctx, lo, hi, flag)
            else:
                flag(lo, f"unknown ordered template {template!r}; "
                         f"expected one of {', '.join(_TEMPLATES)}")
        return {"findings": findings, "regions": len(regions)}

    def _check_atomic(self, ctx: FileContext, lo: int, hi: int,
                      flag) -> None:
        calls = _region_calls(ctx.tree, lo, hi)
        writes = _op_lines(calls, _WRITE_OPS)
        fsyncs = _op_lines(calls, _FSYNC_OPS)
        replaces = _op_lines(calls, _REPLACE_OPS)
        for ops, label in ((writes, "write/dump"),
                           (fsyncs, "fsync"),
                           (replaces, "replace/rename")):
            if not ops:
                flag(lo, f"ordered[{ATOMIC_REPLACE}] region has no "
                         f"{label} call; the sequence this annotation "
                         "protects is gone")
        if not (writes and fsyncs and replaces):
            return
        if max(writes) > min(fsyncs):
            flag(min(fsyncs),
                 f"ordered[{ATOMIC_REPLACE}] region writes after "
                 "fsync: every write must be flushed before the sync "
                 "that makes it durable")
        if max(fsyncs) > min(replaces):
            flag(min(replaces),
                 f"ordered[{ATOMIC_REPLACE}] region fsyncs after "
                 "replace: the rename must publish already-durable "
                 "bytes (write → fsync → replace)")

    def _check_persist(self, ctx: FileContext, lo: int, hi: int,
                       flag) -> None:
        calls = _region_calls(ctx.tree, lo, hi)
        persists = _op_lines(calls, _PERSIST_OPS)
        appends = _op_lines(calls, _APPEND_OPS)
        if not persists:
            flag(lo, f"ordered[{PERSIST_BEFORE_APPEND}] region has no "
                     "cache-persist call (seed_cache/put)")
        if not appends:
            flag(lo, f"ordered[{PERSIST_BEFORE_APPEND}] region has no "
                     "journal-append call (emit/append)")
        if persists and appends and min(appends) < min(persists):
            flag(min(appends),
                 f"ordered[{PERSIST_BEFORE_APPEND}] region appends to "
                 "the journal before persisting the artifact; a crash "
                 "between the two would journal a completion whose "
                 "result is unrecoverable")
