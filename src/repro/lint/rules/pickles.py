"""pickle-safety: nothing unpicklable crosses the worker boundary.

The sweep engine runs every point in its own spawned process
(``repro.experiments.sweep._spawn`` -> ``ctx.Process(target=..., args=...)``),
so everything passed to the configured boundary callables
(``Process``, ``apply_async``, ``submit``, ``sweep``, ``sweep_grid`` by
default) is pickled.  The rule flags arguments that cannot survive the
trip:

* ``lambda`` expressions and generator expressions (unpicklable);
* references to *nested* functions — only module-level functions
  pickle by qualified name;
* inline ``open(...)`` calls — live file handles don't cross processes.

Arguments are examined one tuple/list level deep, covering the
``args=(...)`` convention of ``multiprocessing.Process``.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.findings import ERROR
from repro.lint.rules.base import FileContext, Rule, dotted_name, finding_dict


def _nested_function_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is not node and \
                        isinstance(sub, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    names.add(sub.name)
    return names


class PickleSafetyRule(Rule):
    name = "pickle-safety"

    def analyze(self, ctx: FileContext) -> dict:
        findings: List[dict] = []
        boundary = set(ctx.config.boundary_callables)
        nested = _nested_function_names(ctx.tree)

        def flag(node: ast.AST, message: str) -> None:
            findings.append(finding_dict(
                self.name, ctx.path, node.lineno, node.col_offset,
                message, ERROR,
            ))

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            d = dotted_name(node.func)
            if d is None or d.split(".")[-1] not in boundary:
                continue
            callee = d.split(".")[-1]
            values = list(node.args) + [kw.value for kw in node.keywords]
            flat: List[ast.AST] = []
            for v in values:
                if isinstance(v, (ast.Tuple, ast.List)):
                    flat.extend(v.elts)
                else:
                    flat.append(v)
            for v in flat:
                if isinstance(v, ast.Lambda):
                    flag(v, f"lambda passed across the {callee}() worker "
                            "boundary cannot be pickled; use a "
                            "module-level function")
                elif isinstance(v, ast.GeneratorExp):
                    flag(v, f"generator passed to {callee}() cannot be "
                            "pickled; materialize a list first")
                elif isinstance(v, ast.Name) and v.id in nested:
                    flag(v, f"nested function '{v.id}' passed across the "
                            f"{callee}() worker boundary; only "
                            "module-level functions pickle")
                elif isinstance(v, ast.Call) and \
                        dotted_name(v.func) == "open":
                    flag(v, f"open() handle passed to {callee}(); file "
                            "handles cannot cross the worker boundary — "
                            "pass the path and open in the worker")
        return {"findings": findings}
