"""determinism: no nondeterminism sources on the simulation path.

Applies only to files under the configured ``determinism-paths``
(``src/repro/{cpu,frontend,prefetchers,workloads}``).  Forbidden:

* wall-clock reads — any ``time.*`` call, ``datetime.now/utcnow``,
  ``date.today``;
* unseeded randomness — module-level ``random.*`` calls, ``random.Random()``
  with no seed, ``numpy.random.*`` except explicitly seeded constructors,
  and ``os.urandom``;
* environment reads (``os.environ`` / ``os.getenv``) outside the
  configured ``env-ok-paths`` — configuration belongs in config or the
  experiment layer, not on the simulation path;
* iteration over ``set`` literals/comprehensions (``for x in {...}``):
  set order is insertion-and-hash dependent and must not reach results;
* builtin ``hash()`` of strings: randomized per process by
  PYTHONHASHSEED (the repo's stable hashing lives in
  ``repro.isa.loader.bundle_id_of`` / ``analysis.jaccard``).

A justified exception carries ``# lint: allow[determinism]`` on or
above the offending line.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.findings import ERROR
from repro.lint.rules.base import FileContext, Rule, dotted_name, finding_dict

#: numpy RNG constructors that are deterministic when given a seed.
_SEEDED_NP = {"default_rng", "RandomState", "Generator", "SeedSequence",
              "PCG64", "Philox", "MT19937", "SFC64"}
_DATETIME_PREFIXES = {"datetime", "date"}
_DATETIME_CALLS = {"now", "utcnow", "today"}


def _path_matches(path: str, prefixes) -> bool:
    return any(path == p or path.startswith(p.rstrip("/") + "/")
               for p in prefixes)


def _is_stringish(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str)
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.Call):
        d = dotted_name(node.func)
        return d == "str" or (isinstance(node.func, ast.Attribute)
                              and node.func.attr in ("format", "join"))
    if isinstance(node, ast.BinOp):
        return _is_stringish(node.left) or _is_stringish(node.right)
    return False


class DeterminismRule(Rule):
    name = "determinism"

    def analyze(self, ctx: FileContext) -> dict:
        cfg = ctx.config
        if not _path_matches(ctx.path, cfg.determinism_paths):
            return {"findings": []}
        env_ok = _path_matches(ctx.path, cfg.env_ok_paths)
        findings: List[dict] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(finding_dict(
                self.name, ctx.path, node.lineno, node.col_offset,
                message, ERROR,
            ))

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                self._check_call(node, flag)
            if isinstance(node, ast.Attribute) and node.attr == "environ" \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "os" and not env_ok:
                flag(node, "os.environ read on the simulation path; move "
                           "the knob to config/ or the experiment layer")
            if isinstance(node, ast.For) and \
                    isinstance(node.iter, (ast.Set, ast.SetComp)):
                flag(node, "iteration over a set literal/comprehension: "
                           "set order is nondeterministic; iterate a "
                           "sorted() or ordered collection")
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp)):
                for gen in node.generators:
                    if isinstance(gen.iter, (ast.Set, ast.SetComp)):
                        flag(gen.iter,
                             "comprehension over a set literal: order is "
                             "nondeterministic; sort it first")
        return {"findings": findings}

    # ------------------------------------------------------------------
    def _check_call(self, node: ast.Call, flag) -> None:
        d: Optional[str] = dotted_name(node.func)
        if d is None:
            return
        parts = d.split(".")
        last = parts[-1]
        if parts[0] == "time" and len(parts) > 1:
            flag(node, f"wall-clock call {d}(): simulation code must be "
                       "deterministic (use cycle counts, not real time)")
        elif last in _DATETIME_CALLS and \
                any(p in _DATETIME_PREFIXES for p in parts[:-1]):
            flag(node, f"wall-clock call {d}(): nondeterministic")
        elif last == "urandom":
            flag(node, "os.urandom is nondeterministic; use a seeded "
                       "random.Random or xorshift")
        elif last == "getenv" and (len(parts) == 1 or parts[0] == "os"):
            flag(node, "os.getenv on the simulation path; move the knob "
                       "to config/ or the experiment layer")
        elif parts[0] == "random" and len(parts) > 1:
            if last == "Random":
                if not node.args:
                    flag(node, "random.Random() without a seed; pass an "
                               "explicit seed")
            elif last == "SystemRandom":
                flag(node, "random.SystemRandom is OS-entropy seeded and "
                           "nondeterministic")
            else:
                flag(node, f"module-level {d}() uses the shared unseeded "
                           "RNG; use an explicitly seeded random.Random "
                           "instance")
        elif len(parts) >= 3 and parts[0] in ("np", "numpy") \
                and parts[1] == "random":
            if last in _SEEDED_NP:
                if not node.args and not node.keywords:
                    flag(node, f"{d}() without a seed; pass one explicitly")
            else:
                flag(node, f"{d}() uses numpy's global unseeded RNG; use "
                           "a seeded Generator")
        elif d == "hash" and len(node.args) == 1 and \
                _is_stringish(node.args[0]):
            flag(node, "builtin hash() of a string varies with "
                       "PYTHONHASHSEED; use a stable hash (sha256, or "
                       "repro.isa.loader.bundle_id_of)")
