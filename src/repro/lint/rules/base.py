"""Shared per-file context, waiver/fence directives, and AST helpers."""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.config import LintConfig

# Anchored at the start of a COMMENT token, so directive text quoted in
# docstrings or string literals never registers.
_DIRECTIVE_RE = re.compile(r"^#\s*lint:\s*([a-z-]+)(?:\[([^\]]*)\])?")


@dataclass
class Directives:
    """Lint directives scanned from one file's comments."""

    #: Lines bearing ``# lint: ephemeral`` (snapshot-coverage waiver).
    ephemeral: Set[int] = field(default_factory=set)
    #: Line -> rule names from ``# lint: allow[rule, ...]``.
    allows: Dict[int, Set[str]] = field(default_factory=dict)
    #: ``# lint: hot-begin`` .. ``# lint: hot-end`` line ranges.
    fences: List[Tuple[int, int]] = field(default_factory=list)
    #: ``# lint: ordered[template]`` .. ``# lint: ordered-end`` regions
    #: as ``(lo, hi, template)`` (crash-ordering rule).
    ordered: List[Tuple[int, int, str]] = field(default_factory=list)
    #: Malformed directive messages, reported as findings.
    problems: List[Tuple[int, str]] = field(default_factory=list)

    def in_fence(self, line: int) -> bool:
        return any(lo <= line <= hi for lo, hi in self.fences)


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        return [(tok.start[0], tok.string) for tok in tokens
                if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []


def scan_directives(source: str, config: LintConfig) -> Directives:
    """Parse every ``# lint:`` comment in a file (1-indexed lines)."""
    out = Directives()
    open_fence: Optional[int] = None
    open_ordered: Optional[Tuple[int, str]] = None
    for lineno, text in _comment_tokens(source):
        m = _DIRECTIVE_RE.match(text)
        if not m:
            continue
        kind, payload = m.group(1), m.group(2)
        if kind == "ephemeral":
            if "ephemeral" in config.waivers:
                out.ephemeral.add(lineno)
        elif kind == "allow":
            if not payload:
                out.problems.append(
                    (lineno, "allow waiver needs rule names: "
                             "# lint: allow[rule, ...]"))
            elif "allow" in config.waivers:
                rules = {r.strip() for r in payload.split(",") if r.strip()}
                out.allows.setdefault(lineno, set()).update(rules)
        elif kind == "hot-begin":
            if open_fence is not None:
                out.problems.append((lineno, "nested hot-begin fence"))
            open_fence = lineno
        elif kind == "hot-end":
            if open_fence is None:
                out.problems.append((lineno, "hot-end without hot-begin"))
            else:
                out.fences.append((open_fence, lineno))
                open_fence = None
        elif kind == "ordered":
            if not payload or not payload.strip():
                out.problems.append(
                    (lineno, "ordered region needs a template name: "
                             "# lint: ordered[template]"))
            elif open_ordered is not None:
                out.problems.append((lineno, "nested ordered region"))
            else:
                open_ordered = (lineno, payload.strip())
        elif kind == "ordered-end":
            if open_ordered is None:
                out.problems.append((lineno, "ordered-end without ordered"))
            else:
                out.ordered.append((open_ordered[0], lineno, open_ordered[1]))
                open_ordered = None
        else:
            out.problems.append((lineno, f"unknown lint directive {kind!r}"))
    if open_fence is not None:
        out.problems.append((open_fence, "hot-begin fence never closed"))
    if open_ordered is not None:
        out.problems.append((open_ordered[0], "ordered region never closed"))
    return out


@dataclass
class FileContext:
    """Everything a rule needs to analyze one file."""

    path: str                 # project-root-relative, POSIX separators
    tree: ast.Module
    directives: Directives
    config: LintConfig

    def waived_ephemeral(self, node: ast.AST) -> bool:
        """Is ``node``'s statement covered by ``# lint: ephemeral``?

        The marker sits either on the statement's first line or on the
        line directly above it.
        """
        line = getattr(node, "lineno", 0)
        eph = self.directives.ephemeral
        return line in eph or (line - 1) in eph


class Rule:
    """Base interface; see ``repro.lint.rules.__doc__``."""

    name: str = ""

    def analyze(self, ctx: FileContext) -> dict:
        raise NotImplementedError

    def report(self, payloads: Dict[str, dict], config: LintConfig,
               graph=None) -> list:
        """Default: findings were emitted inline during ``analyze``.

        ``graph`` is the shared :class:`repro.lint.project.ProjectGraph`
        built once per run; per-file rules may ignore it.
        """
        from repro.lint.findings import Finding
        out = []
        for path in sorted(payloads):
            for f in payloads[path].get("findings", ()):
                out.append(Finding(**f))
        return out


def finding_dict(rule: str, path: str, line: int, col: int, message: str,
                 severity: str) -> dict:
    """JSON-serializable finding payload (cached per file)."""
    return {"rule": rule, "path": path, "line": line, "col": col,
            "message": message, "severity": severity}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr_chain(node: ast.AST) -> Optional[List[str]]:
    """Attribute names of a ``self.a.b...`` chain (subscripts skipped).

    ``self.x`` -> ``["x"]``; ``self.x.y[i].z`` -> ``["x", "y", "z"]``;
    anything not rooted at the name ``self`` -> None.
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            return list(reversed(parts)) if node.id == "self" else None
        else:
            return None


def self_attr_root(node: ast.AST) -> Optional[str]:
    """Root attribute of a ``self.``-rooted chain, else None."""
    chain = self_attr_chain(node)
    return chain[0] if chain else None
