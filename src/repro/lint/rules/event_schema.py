"""event-schema: producers and consumers agree on the v2 event table.

``EVENT_SCHEMA`` in :mod:`repro.experiments.service` (configurable via
``event-schema-table = "path::NAME"``) is the single declarative source
of truth for the progress-event protocol: event kind → required and
optional payload keys (beyond the ``v``/``seq``/``event`` envelope the
emitter adds).  Against that table the rule checks, statically:

* **emit sites** — every ``emit("kind", key=...)``-shaped call (a
  callable whose name ends in ``emit`` with a string-literal first
  argument) must use a known kind, pass every required key, and pass
  no key the schema doesn't declare (``**extra`` splats skip the
  required-key check — the ``begin`` record's run-info merge);
* **consumer dispatch** — string literals compared against a value
  read from ``event["event"]`` / ``.get("event")`` must be known
  kinds, so a consumer can't silently dispatch on a kind that nothing
  emits;
* **exhaustive consumers** — functions listed under
  ``event-exhaustive-consumers`` (``summarize_events``) must mention
  every schema kind, so adding an event without teaching the
  summarizer fails the lint, not the dashboard.

Only files under ``event-consumer-paths`` are checked; the rule is
inert when the schema table's file is outside the scan set (fixture
trees opt in through their own config).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import ERROR, Finding
from repro.lint.rules.base import FileContext, Rule, dotted_name


def _split_table(spec: str) -> Tuple[str, str]:
    path, _, name = spec.partition("::")
    return path, name or "EVENT_SCHEMA"


def _extract_schema(tree: ast.Module, name: str) -> Optional[dict]:
    """The literal schema dict assigned to ``name`` at module level."""
    for stmt in tree.body:
        value = None
        if isinstance(stmt, ast.Assign):
            targets = [t.id for t in stmt.targets
                       if isinstance(t, ast.Name)]
            if name in targets:
                value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name) and \
                stmt.target.id == name:
            value = stmt.value
        if value is None:
            continue
        try:
            raw = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            return None
        if not isinstance(raw, dict):
            return None
        schema = {}
        for kind, spec in raw.items():
            if not isinstance(kind, str) or not isinstance(spec, dict):
                return None
            schema[kind] = {
                "required": [str(k) for k in spec.get("required", ())],
                "optional": [str(k) for k in spec.get("optional", ())],
            }
        return schema
    return None


def _event_kind_vars(fn: ast.AST) -> Set[str]:
    """Names assigned from ``X["event"]`` / ``X.get("event", ...)``."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        if not _is_event_read(node.value):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def _is_event_read(node: ast.AST) -> bool:
    if isinstance(node, ast.Subscript):
        key = node.slice
        if isinstance(key, ast.Index):  # pragma: no cover - py38 form
            key = key.value
        return isinstance(key, ast.Constant) and key.value == "event"
    if isinstance(node, ast.Call) and \
            isinstance(node.func, ast.Attribute) and \
            node.func.attr == "get" and node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and \
            first.value == "event"
    return False


class EventSchemaRule(Rule):
    name = "event-schema"

    def analyze(self, ctx: FileContext) -> dict:
        table_path, table_name = _split_table(
            ctx.config.event_schema_table)
        payload: Dict[str, object] = {"findings": []}
        if ctx.path == table_path:
            schema = _extract_schema(ctx.tree, table_name)
            if schema is None:
                payload["schema_error"] = (
                    f"event schema table {table_name!r} is missing or "
                    "not a literal dict of "
                    "{kind: {required/optional: [...]}}")
            else:
                payload["schema"] = schema
        if ctx.path not in ctx.config.event_consumer_paths and \
                ctx.path != table_path:
            return payload

        emits: List[dict] = []
        consumed: List[Tuple[str, int]] = []
        exhaustive: Dict[str, dict] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name and name.rsplit(".", 1)[-1] == "emit" and \
                        node.args and \
                        isinstance(node.args[0], ast.Constant) and \
                        isinstance(node.args[0].value, str):
                    emits.append({
                        "kind": node.args[0].value,
                        "line": node.lineno,
                        "keys": sorted(kw.arg for kw in node.keywords
                                       if kw.arg is not None),
                        "splat": any(kw.arg is None
                                     for kw in node.keywords),
                    })
            elif isinstance(node, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                kind_vars = _event_kind_vars(node)
                consumed.extend(self._kind_literals(node, kind_vars))
                if node.name in ctx.config.event_exhaustive_consumers:
                    strings = sorted({
                        sub.value for sub in ast.walk(node)
                        if isinstance(sub, ast.Constant)
                        and isinstance(sub.value, str)
                    })
                    exhaustive[node.name] = {"line": node.lineno,
                                             "strings": strings}
        payload.update({"emits": emits, "consumed": consumed,
                        "exhaustive": exhaustive})
        return payload

    @staticmethod
    def _kind_literals(fn: ast.AST,
                       kind_vars: Set[str]) -> List[Tuple[str, int]]:
        """String literals compared against an event-kind read."""
        out: List[Tuple[str, int]] = []
        for node in ast.walk(fn):
            if not isinstance(node, ast.Compare):
                continue
            left_is_kind = _is_event_read(node.left) or (
                isinstance(node.left, ast.Name)
                and node.left.id in kind_vars)
            if not left_is_kind:
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)) and \
                        isinstance(comparator, ast.Constant) and \
                        isinstance(comparator.value, str):
                    out.append((comparator.value, node.lineno))
                elif isinstance(op, (ast.In, ast.NotIn)) and \
                        isinstance(comparator, (ast.Tuple, ast.List,
                                                ast.Set)):
                    for elt in comparator.elts:
                        if isinstance(elt, ast.Constant) and \
                                isinstance(elt.value, str):
                            out.append((elt.value, node.lineno))
        return out

    # ------------------------------------------------------------------
    def report(self, payloads: Dict[str, dict], config: LintConfig,
               graph=None) -> List[Finding]:
        findings: List[Finding] = []
        for path in sorted(payloads):
            for f in payloads[path].get("findings", ()):
                findings.append(Finding(**f))
        table_path, _ = _split_table(config.event_schema_table)
        schema = None
        for path, payload in payloads.items():
            if "schema_error" in payload:
                findings.append(Finding(
                    rule=self.name, path=path, line=1, col=0,
                    message=str(payload["schema_error"]),
                    severity=ERROR))
            if "schema" in payload:
                schema = payload["schema"]
        if schema is None:
            return findings  # table not in the scan set: rule inert
        kinds = set(schema)
        for path in sorted(payloads):
            payload = payloads[path]
            for emit in payload.get("emits", ()):
                findings.extend(self._check_emit(path, emit, schema))
            for kind, line in payload.get("consumed", ()):
                if kind not in kinds:
                    findings.append(Finding(
                        rule=self.name, path=path, line=line, col=0,
                        message=(
                            f"consumer dispatches on event kind "
                            f"{kind!r} which is not in the schema "
                            f"table ({table_path})"),
                        severity=ERROR))
            for fname, info in sorted(
                    payload.get("exhaustive", {}).items()):
                missing = sorted(kinds - set(info["strings"]))
                if missing:
                    findings.append(Finding(
                        rule=self.name, path=path,
                        line=info["line"], col=0,
                        message=(
                            f"{fname} must handle every schema event "
                            f"kind; missing: {', '.join(missing)}"),
                        severity=ERROR))
        return findings

    def _check_emit(self, path: str, emit: dict,
                    schema: dict) -> List[Finding]:
        kind = emit["kind"]
        line = emit["line"]
        if kind not in schema:
            return [Finding(
                rule=self.name, path=path, line=line, col=0,
                message=f"emit of unknown event kind {kind!r}; add it "
                        "to the schema table first",
                severity=ERROR)]
        spec = schema[kind]
        keys = set(emit["keys"])
        known = set(spec["required"]) | set(spec["optional"])
        out: List[Finding] = []
        if not emit["splat"]:
            missing = sorted(set(spec["required"]) - keys)
            if missing:
                out.append(Finding(
                    rule=self.name, path=path, line=line, col=0,
                    message=(
                        f"emit of {kind!r} is missing required "
                        f"key(s): {', '.join(missing)}"),
                    severity=ERROR))
        unknown = sorted(keys - known)
        if unknown:
            out.append(Finding(
                rule=self.name, path=path, line=line, col=0,
                message=(
                    f"emit of {kind!r} passes undeclared key(s): "
                    f"{', '.join(unknown)}; declare them in the "
                    "schema table"),
                severity=ERROR))
        return out
