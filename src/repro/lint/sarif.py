"""SARIF 2.1.0 serialization of lint findings (CI annotations).

One run, one tool (``repro-lint``), one result per finding.  Columns
and lines are 1-based per the SARIF spec; the ``ruleIndex`` of each
result points into the deduplicated ``tool.driver.rules`` array so
viewers can group by rule.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.lint.findings import ERROR, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Per-rule one-liners surfaced in SARIF viewers.
RULE_DESCRIPTIONS = {
    "snapshot-coverage": "Mutable component state must be snapshotted.",
    "determinism": "Simulation code must stay deterministic.",
    "hot-loop": "Fenced hot loops must stay allocation-free.",
    "pickle-safety": "Worker-boundary arguments must pickle cleanly.",
    "async-safety": "Coroutines must not block the event loop.",
    "event-schema": "Emitted events must match the declared schema.",
    "boundary-transport": "Transport payloads must stay JSON-safe.",
    "error-taxonomy": "Raises must resolve to the experiment taxonomy.",
    "crash-ordering": "Annotated regions must keep their fsync order.",
}


def to_sarif(findings: Sequence[Finding]) -> dict:
    """SARIF 2.1.0 log dict for one lint run."""
    rule_ids: List[str] = []
    for f in findings:
        if f.rule not in rule_ids:
            rule_ids.append(f.rule)
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": RULE_DESCRIPTIONS.get(rule_id, rule_id),
            },
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_ids.index(f.rule),
            "level": "error" if f.severity == ERROR else "warning",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {
                        "startLine": max(f.line, 1),
                        "startColumn": max(f.col + 1, 1),
                    },
                },
            }],
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def format_sarif(findings: Sequence[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2, sort_keys=False)
