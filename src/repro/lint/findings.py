"""Finding records and the text/JSON report formats."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Sequence

WARNING = "warning"
ERROR = "error"
_SEVERITY_RANK = {WARNING: 1, ERROR: 2}

#: JSON schema version of the ``--format json`` output.
JSON_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = ERROR

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)


def severity_rank(severity: str) -> int:
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; expected one of "
            f"{sorted(_SEVERITY_RANK)}"
        ) from None


def counts(findings: Sequence[Finding]) -> Dict[str, int]:
    out = {ERROR: 0, WARNING: 0}
    for f in findings:
        out[f.severity] = out.get(f.severity, 0) + 1
    return out


def format_text(findings: Sequence[Finding], files_scanned: int,
                cache_hits: int) -> str:
    lines: List[str] = [
        f"{f.path}:{f.line}:{f.col}: {f.severity} [{f.rule}] {f.message}"
        for f in findings
    ]
    c = counts(findings)
    lines.append(
        f"{len(findings)} finding(s) ({c[ERROR]} error(s), "
        f"{c[WARNING]} warning(s)) in {files_scanned} file(s) "
        f"({cache_hits} cached)"
    )
    return "\n".join(lines)


def format_json(findings: Sequence[Finding], files_scanned: int,
                cache_hits: int) -> str:
    return json.dumps(
        {
            "version": JSON_VERSION,
            "findings": [asdict(f) for f in findings],
            "counts": counts(findings),
            "files_scanned": files_scanned,
            "cache_hits": cache_hits,
        },
        indent=2,
        sort_keys=True,
    )
