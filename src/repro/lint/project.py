"""Project-level index and approximate call graph for cross-file rules.

The lint engine builds one :func:`build_file_index` payload per file at
analyze time (cached alongside rule payloads), then assembles them into
a :class:`ProjectGraph` once per run at report time.  The graph offers:

* module/import resolution (``import x``, ``from x import y``, relative
  imports) down to project-root-relative file paths;
* a class index with hierarchy resolution across files (multiple
  inheritance included), used by ``error-taxonomy``;
* an approximate, name-based call graph, used by ``async-safety`` to
  chase blocking calls through helpers.

The call graph is deliberately approximate — it resolves

* ``self.m(...)`` against the enclosing class and its scanned bases,
* plain names against module-level functions and imports,
* ``alias.sym(...)`` through the import map, and
* ``obj.m(...)`` only when exactly one scanned class defines ``m``
  (unique-method fallback),

and silently drops anything else.  Missed edges cost recall, never
false positives, which is the right trade for a lint gate.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.rules.base import dotted_name

#: Method names too generic for the unique-method fallback: an
#: ``obj.get(...)`` edge would be guesswork even if only one scanned
#: class defines ``get``.
_AMBIGUOUS_METHODS = frozenset({
    "get", "set", "put", "add", "pop", "run", "close", "open", "read",
    "write", "update", "items", "keys", "values", "copy", "clear",
    "start", "stop", "send", "join",
})


def module_name(rel_path: str, src_roots: Tuple[str, ...]) -> Optional[str]:
    """Dotted module name of a project-relative path, or None."""
    if not rel_path.endswith(".py"):
        return None
    for root in src_roots:
        prefix = root.rstrip("/") + "/"
        if not rel_path.startswith(prefix):
            continue
        mod = rel_path[len(prefix):-len(".py")]
        if mod.endswith("/__init__"):
            mod = mod[: -len("/__init__")]
        return mod.replace("/", ".")
    return None


def path_of_module(dotted: str, src_roots: Tuple[str, ...],
                   known: Set[str]) -> Optional[str]:
    """Project-relative path for a dotted module, if scanned."""
    as_path = dotted.replace(".", "/")
    for root in src_roots:
        prefix = root.rstrip("/")
        for candidate in (f"{prefix}/{as_path}.py",
                          f"{prefix}/{as_path}/__init__.py"):
            if candidate in known:
                return candidate
    return None


def _resolve_from_base(node: ast.ImportFrom,
                       module: Optional[str]) -> Optional[str]:
    """Absolute dotted base of a ``from ... import`` statement."""
    if node.level == 0:
        return node.module
    if module is None:
        return None
    parts = module.split(".")
    # ``from . import x`` inside package module a.b resolves against a;
    # our scan has no package __init__ special-casing (flat modules).
    drop = node.level
    if drop >= len(parts) + 1:
        return None
    base = parts[: len(parts) - drop]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


def _collect_imports(tree: ast.Module,
                     module: Optional[str]) -> Dict[str, str]:
    """Local binding -> absolute dotted target, for the whole file.

    Covers ``import``/``from ... import`` plus the
    ``X = importlib.import_module("pkg.mod")`` idiom the service uses
    to reach a submodule shadowed by a same-named re-export.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Call) and \
                dotted_name(node.value.func) in (
                    "importlib.import_module", "import_module") and \
                node.value.args and \
                isinstance(node.value.args[0], ast.Constant) and \
                isinstance(node.value.args[0].value, str):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    imports[target.id] = node.value.args[0].value
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    imports.setdefault(root, root)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from_base(node, module)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}"
    return imports


def _call_names(fn: ast.AST) -> List[Tuple[str, int]]:
    """``(dotted-or-self name, line)`` for every call in ``fn``'s body,
    nested closures included (their work runs on the caller's behalf)."""
    calls: List[Tuple[str, int]] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name:
                calls.append((name, node.lineno))
    return calls


def _func_info(fn: ast.AST) -> dict:
    return {
        "line": fn.lineno,
        "async": isinstance(fn, ast.AsyncFunctionDef),
        "calls": _call_names(fn),
    }


def build_file_index(tree: ast.Module, rel_path: str,
                     config: LintConfig, known: Set[str]) -> dict:
    """JSON-serializable project index for one file (engine-cached)."""
    module = module_name(rel_path, config.src_roots)
    imports = _collect_imports(tree, module)

    classes: Dict[str, dict] = {}
    functions: Dict[str, dict] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            methods = {
                sub.name: _func_info(sub)
                for sub in stmt.body
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            bases = [dotted_name(b) for b in stmt.bases]
            classes[stmt.name] = {
                "line": stmt.lineno,
                "bases": [b for b in bases if b],
                "methods": methods,
            }
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[stmt.name] = _func_info(stmt)

    deps: Set[str] = set()
    for target in imports.values():
        path = path_of_module(target, config.src_roots, known)
        if path is None and "." in target:
            # ``from repro.x import sym`` binds to target repro.x.sym.
            path = path_of_module(target.rsplit(".", 1)[0],
                                  config.src_roots, known)
        if path and path != rel_path:
            deps.add(path)

    return {
        "module": module,
        "imports": imports,
        "deps": sorted(deps),
        "classes": classes,
        "functions": functions,
    }


class ProjectGraph:
    """Whole-run view over every file's :func:`build_file_index`."""

    def __init__(self, indices: Dict[str, dict], config: LintConfig):
        self.indices = indices
        self.config = config
        self._module_to_path: Dict[str, str] = {}
        #: class name -> [(path, info)] — names are near-unique here.
        self._classes: Dict[str, List[Tuple[str, dict]]] = {}
        #: method name -> [(path, class name)] for the unique fallback.
        self._method_sites: Dict[str, List[Tuple[str, str]]] = {}
        for path, idx in indices.items():
            if idx.get("module"):
                self._module_to_path[idx["module"]] = path
            for cname, cinfo in idx.get("classes", {}).items():
                self._classes.setdefault(cname, []).append((path, cinfo))
                for mname in cinfo["methods"]:
                    self._method_sites.setdefault(mname, []).append(
                        (path, cname))

    # -- lookups -------------------------------------------------------
    def functions(self) -> Iterator[Tuple[str, str, dict]]:
        """Yield ``(path, qual, info)`` for every function and method."""
        for path in sorted(self.indices):
            idx = self.indices[path]
            for fname, info in sorted(idx.get("functions", {}).items()):
                yield path, fname, info
            for cname, cinfo in sorted(idx.get("classes", {}).items()):
                for mname, info in sorted(cinfo["methods"].items()):
                    yield path, f"{cname}.{mname}", info

    def lookup(self, path: str, qual: str) -> Optional[dict]:
        idx = self.indices.get(path)
        if idx is None:
            return None
        if "." in qual:
            cname, mname = qual.split(".", 1)
            cinfo = idx.get("classes", {}).get(cname)
            return cinfo["methods"].get(mname) if cinfo else None
        return idx.get("functions", {}).get(qual)

    # -- class hierarchy -----------------------------------------------
    def resolve_class(self, path: str,
                      name: str) -> Optional[Tuple[str, str]]:
        """``(defining path, class name)`` for a class reference in
        ``path`` — local class, imported symbol, or ``mod.Class``."""
        idx = self.indices.get(path)
        if idx is None:
            return None
        head = name.split(".", 1)[0]
        if "." not in name and name in idx.get("classes", {}):
            return path, name
        target = idx.get("imports", {}).get(head)
        if target is None:
            return None
        dotted = target if "." not in name else \
            f"{target}.{name.split('.', 1)[1]}"
        return self._class_of_dotted(dotted)

    def _class_of_dotted(self, dotted: str) -> Optional[Tuple[str, str]]:
        if "." not in dotted:
            return None
        mod, sym = dotted.rsplit(".", 1)
        mpath = self._module_to_path.get(mod)
        if mpath and sym in self.indices[mpath].get("classes", {}):
            return mpath, sym
        return None

    def class_closure(self, root_name: str) -> Set[Tuple[str, str]]:
        """Every scanned class equal to or (transitively, via any base)
        derived from ``root_name``, multiple inheritance included."""
        closure: Set[Tuple[str, str]] = set()
        for site in self._classes.get(root_name, ()):
            closure.add((site[0], root_name))
        changed = True
        while changed:
            changed = False
            for path, idx in self.indices.items():
                for cname, cinfo in idx.get("classes", {}).items():
                    if (path, cname) in closure:
                        continue
                    for base in cinfo["bases"]:
                        resolved = self.resolve_class(path, base)
                        if resolved in closure or \
                                (resolved is None and
                                 base.rsplit(".", 1)[-1] == root_name):
                            closure.add((path, cname))
                            changed = True
                            break
        return closure

    def mro_chain(self, path: str, cname: str) -> List[Tuple[str, str]]:
        """Approximate linearization of a class and scanned ancestors."""
        out: List[Tuple[str, str]] = []
        seen: Set[Tuple[str, str]] = set()
        queue = deque([(path, cname)])
        while queue:
            site = queue.popleft()
            if site in seen or site[0] not in self.indices:
                continue
            cinfo = self.indices[site[0]].get("classes", {}).get(site[1])
            if cinfo is None:
                continue
            seen.add(site)
            out.append(site)
            for base in cinfo["bases"]:
                resolved = self.resolve_class(site[0], base)
                if resolved:
                    queue.append(resolved)
        return out

    # -- call graph ----------------------------------------------------
    def resolve_call(self, path: str, caller_qual: str,
                     name: str) -> Optional[Tuple[str, str]]:
        """Callee site for call expression ``name`` inside ``caller``."""
        idx = self.indices.get(path)
        if idx is None:
            return None
        if name.startswith("self."):
            mname = name[len("self."):]
            if "." in mname or "." not in caller_qual:
                return None
            cname = caller_qual.split(".", 1)[0]
            for cpath, ccls in self.mro_chain(path, cname):
                cinfo = self.indices[cpath]["classes"][ccls]
                if mname in cinfo["methods"]:
                    return cpath, f"{ccls}.{mname}"
            return None
        head = name.split(".", 1)[0]
        if "." not in name:
            if name in idx.get("functions", {}):
                return path, name
            target = idx.get("imports", {}).get(name)
            if target:
                return self._callable_of_dotted(target)
            return None
        target = idx.get("imports", {}).get(head)
        if target:
            dotted = f"{target}.{name.split('.', 1)[1]}"
            return self._callable_of_dotted(dotted)
        # obj.m(...): unique-method fallback on the last attribute.
        mname = name.rsplit(".", 1)[1]
        if mname.startswith("__") or mname in _AMBIGUOUS_METHODS:
            return None
        sites = self._method_sites.get(mname, ())
        if len(sites) == 1:
            spath, scls = sites[0]
            return spath, f"{scls}.{mname}"
        return None

    def _callable_of_dotted(self,
                            dotted: str) -> Optional[Tuple[str, str]]:
        """``mod.func`` / ``mod.Class`` / ``mod.Class.method`` site."""
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:split])
            mpath = self._module_to_path.get(mod)
            if mpath is None:
                continue
            idx = self.indices[mpath]
            rest = parts[split:]
            if len(rest) == 1:
                sym = rest[0]
                if sym in idx.get("functions", {}):
                    return mpath, sym
                cinfo = idx.get("classes", {}).get(sym)
                if cinfo:
                    # Calling a class runs its constructor.
                    if "__init__" in cinfo["methods"]:
                        return mpath, f"{sym}.__init__"
                    return mpath, sym
            elif len(rest) == 2:
                cinfo = idx.get("classes", {}).get(rest[0])
                if cinfo and rest[1] in cinfo["methods"]:
                    return mpath, f"{rest[0]}.{rest[1]}"
            return None
        return None

    def walk_calls(self, path: str, qual: str, max_depth: int = 8,
                   ) -> Iterator[Tuple[str, str, str, int, int,
                                       Optional[Tuple[str, str]]]]:
        """BFS over the call graph from one function.

        Yields ``(caller_path, caller_qual, call_name, line, depth,
        resolved_target)`` for every call expression reached, without
        revisiting resolved targets.
        """
        seen: Set[Tuple[str, str]] = {(path, qual)}
        queue = deque([(path, qual, 0)])
        while queue:
            cpath, cqual, depth = queue.popleft()
            info = self.lookup(cpath, cqual)
            if info is None:
                continue
            for name, line in info["calls"]:
                target = self.resolve_call(cpath, cqual, name)
                yield cpath, cqual, name, line, depth, target
                if target and target not in seen and depth < max_depth:
                    seen.add(target)
                    queue.append((target[0], target[1], depth + 1))

    def deps_of(self, path: str) -> List[str]:
        idx = self.indices.get(path)
        return list(idx.get("deps", ())) if idx else []
