"""Memoized access to generated applications and traces.

Binary generation takes ~1s and trace generation a few seconds per
workload; experiments run the same trace under many prefetchers, so
both are cached (applications by name, traces by (name, scale, seed),
small LRU to bound memory).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict

from repro.workloads.appmodel import Application
from repro.workloads.suite import build_application, requests_for
from repro.workloads.trace import Trace

_APPS: Dict[str, Application] = {}
_TRACES: OrderedDict = OrderedDict()


def _trace_cache_max() -> int:
    """LRU bound for memoized traces.

    The default of 6 suits single-figure runs; full-grid sweeps touch
    all 11 workloads round-robin and would evict every entry before its
    reuse, so the bound is overridable via ``REPRO_TRACE_CACHE``.
    """
    try:
        # Capacity only: eviction changes memory use, never the trace
        # contents, so this env read cannot perturb simulated results.
        return max(1, int(os.environ.get("REPRO_TRACE_CACHE", "6")))  # lint: allow[determinism]
    except ValueError:
        return 6


def get_application(name: str) -> Application:
    """Build (once) and return the named application."""
    app = _APPS.get(name)
    if app is None:
        app = build_application(name)
        _APPS[name] = app
    return app


def get_trace(name: str, scale: str = "bench", seed: int = 1) -> Trace:
    """Build (once) and return the trace for (workload, scale, seed)."""
    key = (name, scale, seed)
    trace = _TRACES.get(key)
    if trace is not None:
        _TRACES.move_to_end(key)
        return trace
    app = get_application(name)
    trace = app.trace(requests_for(name, scale), seed=seed)
    _TRACES[key] = trace
    while len(_TRACES) > _trace_cache_max():
        _TRACES.popitem(last=False)
    return trace


def clear_caches() -> None:
    """Drop all cached applications and traces (tests/memory pressure)."""
    _APPS.clear()
    _TRACES.clear()
