"""Synthetic application generator.

Builds a :class:`~repro.isa.binary.Binary` from an
:class:`~repro.workloads.appmodel.AppParams`: a hot pool of tiny
always-resident helpers, a shared helper library, per-stage routine call
trees, indirect-call stage dispatchers, the request loop, and a large
body of cold (never executed) code shaped like more of the same so that
the *static* bundle statistics (Table 4) resemble a real binary.  All
randomness is seeded; the same params object always yields the same
binary.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.binary import Binary, BlockSpec, Function
from repro.isa.instructions import BranchKind, INSTR_BYTES
from repro.isa.linker import Linker
from repro.isa.loader import LoadedProgram
from repro.workloads.appmodel import (
    Application,
    AppParams,
    zipf_weights,
)

_EASY_TAKEN = 0.008
_EASY_NOT_TAKEN = 0.985


# ----------------------------------------------------------------------
# Function-body construction
# ----------------------------------------------------------------------
def _make_body(
    rng: random.Random,
    params: AppParams,
    size_bytes: int,
    callees: Sequence[Tuple[str, bool]],
    loop: bool = False,
    switch_targets: Optional[Tuple[str, ...]] = None,
) -> List[BlockSpec]:
    """Build a function body of roughly ``size_bytes``.

    ``callees`` is a sequence of ``(name, optional)`` call sites emitted
    in order; optional sites get a conditional guard that skips the call
    with ``params.optional_call_prob`` per execution.  Compute blocks
    with forward conditional branches fill the remaining budget; at most
    one fixed-trip-count loop is placed when ``loop`` is set.
    """
    target_instrs = max(6, size_bytes // INSTR_BYTES)
    blocks: List[BlockSpec] = []
    instrs = 0

    def compute_block(lo: int = 4, hi: int = 10) -> int:
        nonlocal instrs
        n = rng.randint(lo, hi)
        draw = rng.random()
        if draw < params.branch_noise:
            prob = params.noisy_taken_prob
        elif draw < params.branch_noise + params.taken_bias_frac:
            # Taken-biased branch: direction is easy to predict, but the
            # branch needs a BTB entry for the FTQ to follow it — the
            # population that pressures the BTB on large working sets.
            # (The taken target is the next block, so FDIP's sequential
            # continuation covers the code even on a BTB miss; only the
            # resteer bubble is paid.)
            prob = _EASY_NOT_TAKEN
        else:
            prob = _EASY_TAKEN
        blocks.append(
            BlockSpec(ninstr=n, kind=BranchKind.COND, taken_prob=prob,
                      taken_next=len(blocks) + 1)
        )
        instrs += n
        return n

    # Reserve instruction budget for call blocks.
    call_budget = sum(3 + (4 if optional else 0) for _, optional in callees)
    fill_target = max(0, target_instrs - call_budget - 4)
    n_callees = len(callees)
    fill_per_gap = fill_target // (n_callees + 1) if n_callees else fill_target

    def fill(amount: int) -> None:
        nonlocal instrs
        done = 0
        while done < amount:
            done += compute_block()

    fill(fill_per_gap)
    if switch_targets:
        blocks.append(
            BlockSpec(ninstr=rng.randint(2, 5), kind=BranchKind.ICALL,
                      targets=tuple(switch_targets))
        )
        instrs += blocks[-1].ninstr
        fill(max(4, fill_per_gap // 2))
    for name, optional in callees:
        if optional:
            # Guard block: taken skips over the call block.
            guard = BlockSpec(
                ninstr=rng.randint(2, 4),
                kind=BranchKind.COND,
                taken_prob=params.optional_call_prob,
                taken_next=len(blocks) + 2,
            )
            blocks.append(guard)
            instrs += guard.ninstr
        blocks.append(
            BlockSpec(ninstr=rng.randint(2, 5), kind=BranchKind.CALL,
                      callee=name)
        )
        instrs += blocks[-1].ninstr
        fill(fill_per_gap)
    if loop:
        # Fixed-trip-count loop: body block, then a backward branch.
        body = BlockSpec(ninstr=rng.randint(4, 8), kind=BranchKind.COND,
                         taken_prob=_EASY_TAKEN, taken_next=len(blocks) + 1)
        blocks.append(body)
        back = BlockSpec(ninstr=rng.randint(2, 5), kind=BranchKind.COND,
                         taken_prob=0.0, taken_next=len(blocks) - 1,
                         loop_count=rng.randint(3, 9))
        blocks.append(back)
        trips = back.loop_count
        instrs += (body.ninstr + back.ninstr) * trips
    while instrs < target_instrs:
        instrs += compute_block()
    # Fix dangling guard/cond targets that point past the RET we add now.
    blocks.append(BlockSpec(ninstr=rng.randint(1, 3), kind=BranchKind.RET))
    last = len(blocks) - 1
    for i, blk in enumerate(blocks[:-1]):
        if blk.kind == BranchKind.COND and blk.taken_next > last:
            blk.taken_next = last
    return blocks


def _new_function(
    binary: Binary,
    rng: random.Random,
    params: AppParams,
    name: str,
    size_bytes: int,
    callees: Sequence[Tuple[str, bool]] = (),
    loop: bool = False,
    switch_targets: Optional[Tuple[str, ...]] = None,
) -> Function:
    body = _make_body(rng, params, size_bytes, callees, loop=loop,
                      switch_targets=switch_targets)
    return binary.add_function(Function(name, body))


def _func_size(rng: random.Random, params: AppParams) -> int:
    """Draw a function size (bytes) around the configured mean."""
    mean = params.avg_func_bytes
    return max(48, int(rng.lognormvariate(0, 0.6) * mean))


# ----------------------------------------------------------------------
# Program regions
# ----------------------------------------------------------------------
def _build_hot_pool(binary, rng, params) -> List[str]:
    names: List[str] = []
    budget = int(params.hot_pool_kb * 1024)
    i = 0
    while budget > 0:
        size = rng.randint(48, 160)
        name = f"hot_{i}"
        callees: List[Tuple[str, bool]] = []
        if names and rng.random() < 0.3:
            callees.append((rng.choice(names), False))
        _new_function(binary, rng, params, name, size, callees)
        names.append(name)
        budget -= size
        i += 1
    return names


def _build_shared_pool(binary, rng, params, hot: List[str]) -> List[str]:
    names: List[str] = []
    budget = int(params.shared_pool_kb * 1024)
    i = 0
    while budget > 0:
        size = _func_size(rng, params)
        name = f"lib_{i}"
        callees: List[Tuple[str, bool]] = []
        # Earlier library functions and hot helpers, keeping the
        # intra-library call graph acyclic.
        for _ in range(rng.randint(0, 2)):
            if names and rng.random() < 0.6:
                callees.append((rng.choice(names[-20:]), False))
            elif hot:
                callees.append((rng.choice(hot), False))
        _new_function(binary, rng, params, name, size,
                      callees, loop=rng.random() < 0.2)
        names.append(name)
        budget -= size
        i += 1
    return names


def _build_subtree(
    binary,
    rng,
    params,
    prefix: str,
    budget_bytes: int,
    shared: List[str],
    hot: List[str],
    shared_frac: float,
) -> str:
    """Build a deterministic call tree under ``prefix``; return its root.

    Private functions are generated to consume ``budget_bytes`` and
    linked into a fan-out tree (children only at deeper indices, so the
    intra-routine graph is acyclic); call sites additionally target the
    shared library with probability ``shared_frac``, some of them
    optional per execution.
    """
    sizes: List[int] = []
    remaining = budget_bytes
    while remaining > 0:
        size = _func_size(rng, params)
        sizes.append(size)
        remaining -= size
    n = len(sizes)
    names = [f"{prefix}_f{i}" for i in range(n)]
    # Assign children: breadth-first partition of the index space.
    children: List[List[int]] = [[] for _ in range(n)]
    next_child = 1
    frontier = [0]
    while next_child < n:
        parent = frontier.pop(0) if frontier else next_child - 1
        fanout = min(rng.randint(2, 4), n - next_child)
        for _ in range(fanout):
            children[parent].append(next_child)
            frontier.append(next_child)
            next_child += 1
    # Emit deepest-first so callees exist before callers.
    for i in range(n - 1, -1, -1):
        callees: List[Tuple[str, bool]] = []
        for child in children[i]:
            callees.append((names[child], False))
        n_shared = rng.randint(0, 2) if rng.random() < shared_frac else 0
        for _ in range(n_shared):
            optional = rng.random() < params.optional_site_frac
            callees.append((rng.choice(shared), optional))
        if hot and rng.random() < 0.5:
            callees.append((rng.choice(hot), False))
        rng.shuffle(callees)
        _new_function(binary, rng, params, names[i], sizes[i], callees,
                      loop=rng.random() < 0.25)
    return names[0]


def _build_tree(
    binary,
    rng,
    params,
    prefix: str,
    budget_bytes: int,
    shared: List[str],
    hot: List[str],
    shared_frac: float,
) -> str:
    """Build one routine: a root calling a sequence of *sections*.

    Most sections are fixed subtrees executed every invocation; with
    probability ``params.switch_site_frac`` a section is a per-execution
    *switch* — an indirect call selecting one of 2-3 alternative variant
    subtrees.  Switches are the paper's minor divergence points: they
    stay inside the Bundle (each variant is far below the divergence
    threshold) and bound how well any record-and-replay prefetcher can
    anticipate the footprint.
    """
    n_sections = max(2, min(5, budget_bytes // (12 * 1024)))
    base = budget_bytes // n_sections
    root_callees: List[Tuple[str, bool]] = []
    switches: List[Tuple[str, ...]] = []
    for k in range(n_sections):
        section_budget = max(4096, int(base * rng.uniform(0.7, 1.3)))
        is_switch = (
            rng.random() < params.switch_site_frac
            and section_budget >= 8 * 1024
        )
        if is_switch:
            n_variants = rng.randint(2, 3)
            variants = tuple(
                _build_subtree(
                    binary, rng, params, f"{prefix}s{k}v{j}",
                    int(section_budget * 0.75), shared, hot, shared_frac,
                )
                for j in range(n_variants)
            )
            switches.append(variants)
        else:
            root_callees.append((
                _build_subtree(binary, rng, params, f"{prefix}s{k}",
                               section_budget, shared, hot, shared_frac),
                False,
            ))
    # Switches beyond the first get thin wrapper functions called from
    # the root, so every switch is a distinct indirect-call site.
    for w, variants in enumerate(switches[1:], start=1):
        wrapper = f"{prefix}_sw{w}"
        _new_function(binary, rng, params, wrapper,
                      rng.randint(96, 224), (), switch_targets=variants)
        root_callees.append((wrapper, False))
    rng.shuffle(root_callees)
    root = f"{prefix}_f0"
    _new_function(
        binary, rng, params, root,
        rng.randint(256, 640), root_callees,
        switch_targets=switches[0] if switches else None,
    )
    return root


def _build_cold_region(binary, rng, params, shared: List[str],
                       n_funcs: int) -> None:
    """Cold modules: never-executed code shaped like the live code.

    Cold code is organized as module trees with their own dispatch-like
    divergence so the *static* bundle census (Table 4) counts entries in
    cold code too, as it would in a real binary.
    """
    built = 0
    module = 0
    while built < n_funcs:
        tree_budget = int(
            rng.uniform(0.5, 2.0) * params.bundle_threshold
        )
        prefix = f"cold_m{module}"
        before = len(binary)
        _build_tree(binary, rng, params, prefix, tree_budget, shared, [],
                    shared_frac=0.2)
        built += len(binary) - before
        module += 1


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------
def generate_binary(params: AppParams) -> Tuple[Binary, Dict[str, str]]:
    """Generate the binary; returns (binary, stage->dispatcher map)."""
    rng = random.Random(params.seed)
    binary = Binary(entry="main")
    hot = _build_hot_pool(binary, rng, params)
    shared = _build_shared_pool(binary, rng, params, hot)

    dispatchers: Dict[str, str] = {}
    for stage in params.stages:
        roots = []
        for r in range(stage.n_routines):
            prefix = f"{stage.name}_r{r}"
            root = _build_tree(
                binary, rng, params, prefix,
                int(stage.routine_kb * 1024), shared, hot,
                stage.shared_frac,
            )
            roots.append(root)
        stub = f"{stage.name}_skip"
        _new_function(binary, rng, params, stub, 64)
        roots.append(stub)
        dispatcher = f"{stage.name}_dispatch"
        body = [
            BlockSpec(ninstr=rng.randint(4, 8), kind=BranchKind.COND,
                      taken_prob=_EASY_TAKEN, taken_next=1),
            BlockSpec(ninstr=rng.randint(2, 4), kind=BranchKind.ICALL,
                      targets=tuple(roots), selector=stage.name),
            BlockSpec(ninstr=rng.randint(1, 3), kind=BranchKind.RET),
        ]
        binary.add_function(Function(dispatcher, body))
        dispatchers[stage.name] = dispatcher

    # Request loop: one call block per stage dispatcher, then loop back.
    main_blocks: List[BlockSpec] = [
        BlockSpec(ninstr=6, kind=BranchKind.COND, taken_prob=_EASY_TAKEN,
                  taken_next=1)
    ]
    for stage in params.stages:
        main_blocks.append(
            BlockSpec(ninstr=3, kind=BranchKind.CALL,
                      callee=dispatchers[stage.name])
        )
    main_blocks.append(BlockSpec(ninstr=2, kind=BranchKind.JUMP, taken_next=0))
    binary.add_function(Function("main", main_blocks))

    live_funcs = len(binary)
    _build_cold_region(
        binary, rng, params, shared,
        n_funcs=int(live_funcs * params.cold_func_frac),
    )
    binary.layout()
    return binary, dispatchers


def build_app(params: AppParams) -> Application:
    """Generate, link and load a complete application."""
    binary, dispatchers = generate_binary(params)
    Linker(params.bundle_threshold).link(binary)
    program = LoadedProgram(binary)
    rng = random.Random(params.seed ^ 0x5EED)
    stage_names = [s.name for s in params.stages]
    route_map: List[Dict[str, str]] = []
    for rt in range(params.n_request_types):
        routes: Dict[str, str] = {}
        for stage in params.stages:
            if rng.random() < stage.skip_prob:
                routes[stage.name] = f"{stage.name}_skip"
            else:
                routine = (rt + rng.randint(0, 1)) % stage.n_routines
                routes[stage.name] = f"{stage.name}_r{routine}_f0"
        route_map.append(routes)
    weights = zipf_weights(params.n_request_types, params.zipf_alpha)
    return Application(
        params=params,
        binary=binary,
        program=program,
        dispatchers=dispatchers,
        route_map=route_map,
        stage_names=stage_names,
        request_weights=weights,
    )
