"""Synthetic server workloads.

The paper evaluates on 11 real server applications (Go web frameworks,
Caddy, DGraph, gorm, MySQL and TiDB under several OLTP drivers).  We
cannot run those binaries here, so this package generates synthetic
applications that reproduce the *structural* properties HP exploits
(§3.1): request/response processing through a pipeline of stages, each
stage dispatching to per-request-type routines with 10s-100s of KB of
stable code, shared libraries creating call-graph sharing, fine-grained
control-flow noise inside routines, and MB-scale instruction working
sets with long reuse distances.

Public entry points: :func:`~repro.workloads.suite.build_application`
and :func:`~repro.workloads.cache.get_trace`.
"""

from repro.workloads.appmodel import AppParams, StageSpec, Application
from repro.workloads.generator import generate_binary, build_app
from repro.workloads.trace import Trace, TraceBuilder
from repro.workloads.suite import (
    WORKLOAD_NAMES,
    SCALES,
    workload_params,
    build_application,
)
from repro.workloads.cache import get_application, get_trace

__all__ = [
    "AppParams",
    "StageSpec",
    "Application",
    "generate_binary",
    "build_app",
    "Trace",
    "TraceBuilder",
    "WORKLOAD_NAMES",
    "SCALES",
    "workload_params",
    "build_application",
    "get_application",
    "get_trace",
]
