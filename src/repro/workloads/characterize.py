"""Workload characterization reports.

One call produces the structural profile of a workload that the paper's
motivation section reasons about: code-size census, executed working
set, per-stage footprints, Bundle statistics, and reuse-distance
percentiles.  Used by ``repro.cli`` consumers and by tests that pin the
suite's server-like properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.footprints import request_footprints, stage_footprints
from repro.analysis.jaccard import bundle_similarity
from repro.analysis.mrc import working_set_blocks
from repro.analysis.reuse import block_reuse_distances
from repro.core.bundles import identify_bundles


@dataclass
class WorkloadProfile:
    """Structural profile of one (application, trace) pair."""

    name: str
    n_functions: int
    text_kb: float
    static_bundles: int
    bundle_fraction: float
    trace_blocks: int
    trace_instructions: int
    n_requests: int
    executed_ws_kb: float
    ws95_kb: float
    stage_footprints_kb: Dict[str, float]
    avg_request_footprint_kb: float
    bundle_jaccard: float
    bundle_footprint_kb: float
    reuse_p50: float
    reuse_p90: float

    def rows(self) -> List[List[str]]:
        return [
            ["functions", f"{self.n_functions}"],
            ["text size", f"{self.text_kb:.0f} KB"],
            ["static bundles",
             f"{self.static_bundles} ({self.bundle_fraction:.2%})"],
            ["trace", f"{self.trace_blocks} blocks / "
                      f"{self.trace_instructions} instrs / "
                      f"{self.n_requests} requests"],
            ["executed working set", f"{self.executed_ws_kb:.0f} KB"],
            ["95% LRU working set", f"{self.ws95_kb:.0f} KB"],
            ["avg request footprint",
             f"{self.avg_request_footprint_kb:.0f} KB"],
            ["bundle Jaccard", f"{self.bundle_jaccard:.3f}"],
            ["bundle footprint", f"{self.bundle_footprint_kb:.1f} KB"],
            ["reuse distance p50/p90",
             f"{self.reuse_p50:.0f} / {self.reuse_p90:.0f} blocks"],
        ]


def _percentile(sorted_values: List[int], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(q * (len(sorted_values) - 1)))
    return float(sorted_values[index])


def characterize(app, trace) -> WorkloadProfile:
    """Profile ``app``/``trace``; see :class:`WorkloadProfile`."""
    info = identify_bundles(app.binary, app.params.bundle_threshold)
    footprint = trace.footprint(0, len(trace))
    stage_fps = stage_footprints(trace)
    request_fps = request_footprints(trace)
    bundle = bundle_similarity(trace)
    distances: List[int] = []
    for ds in block_reuse_distances(trace).values():
        distances.extend(ds)
    distances.sort()
    return WorkloadProfile(
        name=app.name,
        n_functions=len(app.binary),
        text_kb=app.binary.text_size / 1024,
        static_bundles=info.n_bundles,
        bundle_fraction=info.bundle_fraction,
        trace_blocks=len(trace),
        trace_instructions=trace.n_instructions,
        n_requests=len(trace.requests),
        executed_ws_kb=len(footprint) * 64 / 1024,
        ws95_kb=working_set_blocks(trace, 0.95) * 64 / 1024,
        stage_footprints_kb=stage_fps,
        avg_request_footprint_kb=(
            sum(request_fps) / len(request_fps) if request_fps else 0.0
        ),
        bundle_jaccard=bundle["avg_jaccard"],
        bundle_footprint_kb=bundle["avg_footprint_kb"],
        reuse_p50=_percentile(distances, 0.50),
        reuse_p90=_percentile(distances, 0.90),
    )
