"""Execution-trace generation: interpret an application's block bodies.

The :class:`TraceBuilder` runs the request loop with an explicit call
stack, drawing branch outcomes / request types / dispatch decisions from
a seeded RNG, and emits one record per executed basic block into
parallel arrays (the representation the simulator consumes).  It also
annotates request and stage spans for the Figure 1 footprint analysis.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Tuple

from repro.isa.binary import Function
from repro.isa.instructions import BranchKind, INSTR_BYTES
from repro.workloads.appmodel import Application

_NONE = int(BranchKind.NONE)
_COND = int(BranchKind.COND)
_JUMP = int(BranchKind.JUMP)
_CALL = int(BranchKind.CALL)
_RET = int(BranchKind.RET)
_ICALL = int(BranchKind.ICALL)
_IJUMP = int(BranchKind.IJUMP)


class Trace:
    """Parallel per-basic-block arrays plus workload annotations.

    Arrays (all ``len(self)`` long):

    * ``pc`` — block start address;
    * ``ninstr`` — instructions in the block;
    * ``kind`` — terminator :class:`BranchKind` as int;
    * ``taken`` — 1 if a COND terminator was taken;
    * ``target`` — address of the next executed block;
    * ``tagged`` — 1 if the terminator carries the Bundle tag bit.

    Derived *decode tables* (``block0``, ``block1``, ``page``, ``term``)
    are computed lazily in one pass and cached on the trace: every
    consumer of the commit stream (the simulator's hot loop, the FDIP
    runahead, commit-driven prefetchers) indexes them instead of
    re-deriving cache-block and page indices per committed block.
    """

    def __init__(self) -> None:
        self.pc: List[int] = []
        self.ninstr: List[int] = []
        self.kind: List[int] = []
        self.taken: List[int] = []
        self.target: List[int] = []
        self.tagged: List[int] = []
        #: (trace index of first block, request type) per request.
        self.requests: List[Tuple[int, int]] = []
        #: (start index, end index exclusive, stage name, request type).
        self.stage_spans: List[Tuple[int, int, str, int]] = []
        #: Open-loop inter-arrival gaps in *ideal-instruction* units, one
        #: per request (``request_gaps[k]`` separates request ``k-1``
        #: from ``k``; index 0 is 0.0).  ``None`` for closed-loop
        #: workloads — presence of this field is what auto-enables the
        #: simulator's per-request latency tracker.
        self.request_gaps: Optional[List[float]] = None
        #: SLO latency threshold in ideal-instruction units.
        self.slo_instr: Optional[float] = None
        self.n_instructions = 0
        self._block0: Optional[List[int]] = None
        self._block1: Optional[List[int]] = None
        self._page: Optional[List[int]] = None
        self._term: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self.pc)

    # ------------------------------------------------------------------
    # Precomputed decode tables
    # ------------------------------------------------------------------
    def _decode(self) -> None:
        pc = self.pc
        nin = self.ninstr
        ib = INSTR_BYTES
        self._block0 = [a >> 6 for a in pc]
        self._block1 = [(a + n * ib - 1) >> 6 for a, n in zip(pc, nin)]
        self._page = [a >> 12 for a in pc]
        self._term = [a + (n - 1) * ib for a, n in zip(pc, nin)]

    @property
    def block0(self) -> List[int]:
        """First cache-block index per trace block (``pc >> 6``)."""
        if self._block0 is None:
            self._decode()
        return self._block0

    @property
    def block1(self) -> List[int]:
        """Last cache-block index per trace block."""
        if self._block1 is None:
            self._decode()
        return self._block1

    @property
    def page(self) -> List[int]:
        """4 KiB page index per trace block (``pc >> 12``)."""
        if self._page is None:
            self._decode()
        return self._page

    @property
    def term(self) -> List[int]:
        """Terminator instruction address per trace block."""
        if self._term is None:
            self._decode()
        return self._term

    def blocks_of(self, i: int) -> Tuple[int, int]:
        """First and last cache-block index touched by trace block ``i``."""
        pc = self.pc[i]
        return pc >> 6, (pc + self.ninstr[i] * INSTR_BYTES - 1) >> 6

    def terminator_addr(self, i: int) -> int:
        return self.pc[i] + (self.ninstr[i] - 1) * INSTR_BYTES

    def footprint(self, start: int, end: int) -> set:
        """Set of cache blocks touched by trace records [start, end)."""
        out = set()
        pc = self.pc
        nin = self.ninstr
        for i in range(start, end):
            b0 = pc[i] >> 6
            b1 = (pc[i] + nin[i] * 4 - 1) >> 6
            out.add(b0)
            if b1 != b0:
                out.add(b1)
        return out

    def request_of(self, i: int) -> int:
        """Request type being processed at trace index ``i``."""
        starts = [s for s, _ in self.requests]
        pos = bisect.bisect_right(starts, i) - 1
        return self.requests[pos][1] if pos >= 0 else -1

    def __repr__(self) -> str:
        return (
            f"Trace(blocks={len(self)}, instrs={self.n_instructions}, "
            f"requests={len(self.requests)})"
        )


class TraceBuilder:
    """Seeded interpreter for one application."""

    def __init__(self, app: Application, seed: int = 1):
        self.app = app
        self.seed = seed

    def build(self, n_requests: int) -> Trace:
        if n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        app = self.app
        rng = random.Random(self.seed)
        binary = app.binary
        tagged_set = app.program.tagged
        trace = Trace()
        pc_a = trace.pc
        nin_a = trace.ninstr
        kind_a = trace.kind
        taken_a = trace.taken
        tgt_a = trace.target
        tag_a = trace.tagged

        dispatch_names = set(app.dispatchers.values())
        dispatcher_stage = {v: k for k, v in app.dispatchers.items()}
        weights = app.request_weights
        cum: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w
            cum.append(acc)

        main = binary.get("main")
        # Call stack: (function, resume block index). Loop counters are
        # per-frame dicts created lazily.
        stack: List[Tuple[Function, int, Optional[dict]]] = []
        func = main
        idx = 0
        loops: Optional[dict] = None
        # Preheat prefix: the first requests cycle deterministically
        # through every type so the measurement window (after the
        # simulator's warmup fraction) sees a warmed server, mirroring
        # the paper's 100M-instruction warmup.
        n_types = len(weights)
        preheat = n_types if n_requests > 2 * n_types else 0
        arrival = app.arrival
        request_type = 0 if preheat else self._draw_type(rng, cum)
        requests_done = 0
        switch_counts: dict = {}
        trace.requests.append((0, request_type))
        open_stage: Optional[Tuple[int, str]] = None
        n_instr = 0
        rand = rng.random

        while True:
            blk = func.blocks[idx]
            pc = func.addr + blk.offset
            nin = blk.ninstr
            kind = blk.kind
            term = pc + (nin - 1) * INSTR_BYTES
            n_instr += nin
            if kind == _COND:
                if blk.loop_count:
                    if loops is None:
                        loops = {}
                    remaining = loops.get(idx)
                    if remaining is None:
                        remaining = blk.loop_count
                    remaining -= 1
                    taken = remaining > 0
                    loops[idx] = remaining if taken else None
                    if not taken:
                        loops.pop(idx, None)
                else:
                    taken = rand() < blk.taken_prob
                nxt = blk.taken_next if taken else idx + 1
                target = func.addr + func.blocks[nxt].offset
                pc_a.append(pc)
                nin_a.append(nin)
                kind_a.append(_COND)
                taken_a.append(1 if taken else 0)
                tgt_a.append(target)
                tag_a.append(0)
                idx = nxt
            elif kind == _NONE:
                target = func.addr + func.blocks[idx + 1].offset
                pc_a.append(pc)
                nin_a.append(nin)
                kind_a.append(_NONE)
                taken_a.append(0)
                tgt_a.append(target)
                tag_a.append(0)
                idx += 1
            elif kind == _CALL or kind == _ICALL:
                if kind == _CALL:
                    callee = binary.get(blk.callee)
                else:
                    chosen = None
                    if blk.selector is not None:
                        chosen = app.route_map[request_type].get(blk.selector)
                    if chosen is None:
                        # Per-execution switch.  During the preheat
                        # prefix the variants rotate round-robin so the
                        # warmup window touches all of them (the paper's
                        # 100M-instruction warmup leaves no cold code).
                        if requests_done < preheat:
                            count = switch_counts.get(pc, 0)
                            switch_counts[pc] = count + 1
                            chosen = blk.targets[count % len(blk.targets)]
                        else:
                            chosen = blk.targets[
                                int(rand() * len(blk.targets))
                                % len(blk.targets)
                            ]
                    callee = binary.get(chosen)
                target = callee.addr
                is_tagged = 1 if term in tagged_set else 0
                pc_a.append(pc)
                nin_a.append(nin)
                kind_a.append(kind)
                taken_a.append(1)
                tgt_a.append(target)
                tag_a.append(is_tagged)
                if kind == _CALL and callee.name in dispatch_names:
                    open_stage = (len(pc_a), dispatcher_stage[callee.name])
                stack.append((func, idx + 1, loops))
                func = callee
                idx = 0
                loops = None
            elif kind == _RET:
                rfunc, ridx, rloops = stack.pop()
                target = rfunc.addr + rfunc.blocks[ridx].offset
                is_tagged = 1 if term in tagged_set else 0
                pc_a.append(pc)
                nin_a.append(nin)
                kind_a.append(_RET)
                taken_a.append(1)
                tgt_a.append(target)
                tag_a.append(is_tagged)
                if rfunc is main and open_stage is not None:
                    start, stage_name = open_stage
                    trace.stage_spans.append(
                        (start, len(pc_a), stage_name, request_type)
                    )
                    open_stage = None
                func, idx, loops = rfunc, ridx, rloops
            elif kind == _JUMP:
                nxt = blk.taken_next
                target = func.addr + func.blocks[nxt].offset
                pc_a.append(pc)
                nin_a.append(nin)
                kind_a.append(_JUMP)
                taken_a.append(1)
                tgt_a.append(target)
                tag_a.append(0)
                idx = nxt
                if func is main and nxt == 0:
                    requests_done += 1
                    if requests_done >= n_requests:
                        break
                    if requests_done < preheat:
                        request_type = requests_done % n_types
                    elif (arrival is not None
                          and rand() < arrival.burst_repeat_prob):
                        # Mixed tenancy burst: the next request repeats
                        # the previous type (request_type unchanged).
                        pass
                    else:
                        request_type = self._draw_type(rng, cum)
                    trace.requests.append((len(pc_a), request_type))
            elif kind == _IJUMP:
                nxt = blk.itargets[int(rand() * len(blk.itargets))
                                   % len(blk.itargets)]
                target = func.addr + func.blocks[nxt].offset
                pc_a.append(pc)
                nin_a.append(nin)
                kind_a.append(_IJUMP)
                taken_a.append(1)
                tgt_a.append(target)
                tag_a.append(0)
                idx = nxt
            else:
                raise ValueError(f"unhandled kind {kind}")
        trace.n_instructions = n_instr
        if arrival is not None:
            self._attach_arrivals(trace, arrival)
        return trace

    def _attach_arrivals(self, trace: Trace, arrival) -> None:
        """Generate the bursty open-loop arrival process for the trace.

        Gaps live on the ideal-instruction clock and are drawn from a
        dedicated RNG stream (independent of branch outcomes), then
        rescaled so the mean inter-arrival gap is exactly
        ``mean_request_instructions / utilization`` — the same offered
        load for every prefetcher simulating this trace.
        """
        n = len(trace.requests)
        mean_service = trace.n_instructions / n
        trace.slo_instr = arrival.slo_factor * mean_service
        if n == 1:
            trace.request_gaps = [0.0]
            return
        gap_rng = random.Random(self.seed ^ 0x6A95)
        raw: List[float] = []
        in_burst = True
        for _ in range(n - 1):
            scale = (arrival.burst_gap_scale if in_burst
                     else arrival.idle_gap_scale)
            raw.append(scale * gap_rng.expovariate(1.0))
            if in_burst:
                in_burst = gap_rng.random() >= 1.0 / arrival.burst_len
            else:
                in_burst = True
        target_mean = mean_service / arrival.utilization
        norm = target_mean * (n - 1) / sum(raw)
        trace.request_gaps = [0.0] + [g * norm for g in raw]

    @staticmethod
    def _draw_type(rng: random.Random, cum: List[float]) -> int:
        x = rng.random()
        return bisect.bisect_left(cum, x)
