"""Microservice request-graph workloads (SLOFetch-style scenarios).

The paper evaluates monolithic server applications; this module opens
the cloud-microservice workload family: a set of *services* with
distinct code footprints, composed per request type into a seeded RPC
fan-out DAG.  On the one simulated core an RPC hop is a call through
the shared RPC runtime into the callee service's endpoint routine, so a
request graph compiles to a deep call tree spanning several services —
exactly the deep-call-chain, large-footprint behavior that separates
instruction prefetchers (FDIP Revisited, arXiv 2006.13547).

Construction (all seeded, byte-deterministic):

* a shared RPC runtime — hot pool (dispatch/locks) plus a marshal/
  transport library — touched on every hop of every request;
* per service: a private helper library and ``n_endpoints`` endpoint
  routines built with the monolithic generator's call-tree machinery
  (so endpoints carry the same optional-call / switch divergence);
* per request type: a DAG over the services.  Edges only point from a
  service to strictly higher-indexed services, so the graph is acyclic
  by construction; per-node fan-out and depth are bounded by the
  params.  Each DAG node becomes a thin RPC wrapper function calling
  marshal code, the endpoint routine, the child wrappers, and reply
  code — depth-first execution of the fan-out tree;
* one indirect-call dispatcher (the "rpc" stage) selects the request
  type's root wrapper, mirroring the monolithic request loop so the
  existing :class:`~repro.workloads.trace.TraceBuilder` interprets the
  binary unchanged.

Request traces additionally carry *mixed tenancy* (bursty request-type
sequences: with ``ArrivalSpec.burst_repeat_prob`` the next request
repeats the previous type) and a bursty open-loop arrival process
(per-request inter-arrival gaps on an ideal-instruction clock) that the
simulator's request-latency tracker turns into p50/p95/p99 latency and
SLO attainment — see :mod:`repro.cpu.requests`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.binary import Binary, BlockSpec, Function
from repro.isa.instructions import BranchKind
from repro.isa.linker import Linker
from repro.isa.loader import LoadedProgram
from repro.workloads.appmodel import (
    Application,
    AppParams,
    ArrivalSpec,
    zipf_weights,
)
from repro.workloads.generator import (
    _build_cold_region,
    _build_hot_pool,
    _build_shared_pool,
    _build_tree,
    _new_function,
)

_EASY_TAKEN = 0.008

#: Seed salt for the per-request-type DAG construction.
_GRAPH_SALT = 0x600D
#: Entry service index (the "frontend" of every request graph).
ENTRY_SERVICE = 0


@dataclass
class ServiceSpec:
    """One microservice: a code footprint of endpoint routines."""

    name: str
    #: Number of distinct RPC endpoints the service exposes.
    n_endpoints: int
    #: Target static code size per endpoint routine tree, in KB.
    endpoint_kb: float
    #: Fraction of endpoint call sites into the shared RPC runtime.
    shared_frac: float = 0.3


@dataclass
class MicroserviceParams(AppParams):
    """Parameter set for one request-graph workload.

    Inherits the monolithic generator knobs (function sizes, branch
    noise, divergence fractions, cold-code fraction...); ``stages`` is
    unused and stays empty — dispatch happens at the single "rpc"
    stage.  ``shared_pool_kb`` sizes the RPC marshal/transport library
    and ``hot_pool_kb`` the RPC hot pool.
    """

    services: List[ServiceSpec] = field(default_factory=list)
    #: Max outgoing RPC edges per DAG node.
    fanout_max: int = 3
    #: Max RPC chain depth (root = depth 0).
    max_depth: int = 4
    #: Probability that a candidate downstream edge is taken while
    #: growing a node's fan-out.
    edge_prob: float = 0.6
    #: Open-loop arrival process / SLO definition for traces.
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)

    def total_routine_kb(self) -> float:
        return sum(s.n_endpoints * s.endpoint_kb for s in self.services)


@dataclass
class RequestGraph:
    """The RPC fan-out DAG of one request type.

    ``nodes[k]`` is ``(service_index, endpoint_index)``; ``children[k]``
    lists child node ids.  Node 0 is the root (entry service); edges
    always point to nodes whose service index is strictly larger, so
    the graph is acyclic by construction.
    """

    nodes: List[Tuple[int, int]]
    children: List[List[int]]

    def depth(self) -> int:
        """Longest root-to-leaf chain length in edges."""
        def walk(k: int) -> int:
            kids = self.children[k]
            return 1 + max(map(walk, kids)) if kids else 0
        return walk(0)

    def max_fanout(self) -> int:
        return max(len(kids) for kids in self.children)

    def __len__(self) -> int:
        return len(self.nodes)


def request_graphs(params: MicroserviceParams) -> List[RequestGraph]:
    """The seeded RPC DAG per request type (same seed, same graphs).

    Exposed separately from binary generation so tests and reports can
    inspect the graph family without building code.
    """
    n_services = len(params.services)
    if n_services < 2:
        raise ValueError("a microservice workload needs >= 2 services")
    graphs: List[RequestGraph] = []
    for rt in range(params.n_request_types):
        rng = random.Random(params.seed ^ _GRAPH_SALT ^ (rt * 7919))
        nodes: List[Tuple[int, int]] = []
        children: List[List[int]] = []

        def grow(service: int, depth: int) -> int:
            endpoint = rng.randrange(params.services[service].n_endpoints)
            node = len(nodes)
            nodes.append((service, endpoint))
            children.append([])
            if depth >= params.max_depth:
                return node
            downstream = list(range(service + 1, n_services))
            rng.shuffle(downstream)
            for callee in downstream[: params.fanout_max]:
                if len(children[node]) >= params.fanout_max:
                    break
                if rng.random() < params.edge_prob:
                    children[node].append(grow(callee, depth + 1))
            return node

        grow(ENTRY_SERVICE, 0)
        graphs.append(RequestGraph(nodes, children))
    return graphs


# ----------------------------------------------------------------------
# Binary construction
# ----------------------------------------------------------------------
def _build_service_lib(binary, rng, params, svc_index: int,
                       shared: List[str], hot: List[str]) -> List[str]:
    """A service's private helper library (its distinct footprint)."""
    # Reuse the shared-pool builder's shape at a smaller budget by
    # renaming its output: build fresh functions under the service
    # prefix so footprints never alias across services.
    names: List[str] = []
    budget = int(params.services[svc_index].endpoint_kb * 1024 * 0.5)
    i = 0
    while budget > 0:
        size = max(64, int(rng.lognormvariate(0, 0.5)
                           * params.avg_func_bytes))
        name = f"svc{svc_index}_lib{i}"
        callees: List[Tuple[str, bool]] = []
        if names and rng.random() < 0.5:
            callees.append((rng.choice(names[-12:]), False))
        elif shared and rng.random() < 0.4:
            callees.append((rng.choice(shared), False))
        elif hot:
            callees.append((rng.choice(hot), False))
        _new_function(binary, rng, params, name, size, callees,
                      loop=rng.random() < 0.2)
        names.append(name)
        budget -= size
        i += 1
    return names


def generate_microservice_binary(
    params: MicroserviceParams,
) -> Tuple[Binary, Dict[str, str], List[Dict[str, str]], List[RequestGraph]]:
    """Generate the system binary.

    Returns ``(binary, dispatchers, route_map, graphs)``: one dispatcher
    for the single "rpc" stage, and per request type the route to its
    root RPC wrapper.
    """
    graphs = request_graphs(params)
    rng = random.Random(params.seed)
    binary = Binary(entry="main")
    # Shared RPC runtime: hot pool + marshal/transport library.
    hot = _build_hot_pool(binary, rng, params)
    shared = _build_shared_pool(binary, rng, params, hot)

    # Per-service code: private library, then endpoint routine trees.
    endpoint_roots: List[List[str]] = []
    for si, svc in enumerate(params.services):
        lib = _build_service_lib(binary, rng, params, si, shared, hot)
        # Endpoints call into the service library plus the RPC runtime.
        local_pool = lib + shared
        roots = [
            _build_tree(
                binary, rng, params, f"svc{si}_ep{ei}",
                int(svc.endpoint_kb * 1024), local_pool, hot,
                svc.shared_frac,
            )
            for ei in range(svc.n_endpoints)
        ]
        endpoint_roots.append(roots)

    # RPC wrappers: one thin function per DAG node, deepest-first so
    # callees exist before callers.  Each wrapper marshals the request,
    # runs the endpoint, fans out to child wrappers, then replies.
    root_wrappers: List[str] = []
    for rt, graph in enumerate(graphs):
        names = [f"rpc_t{rt}n{k}" for k in range(len(graph))]
        for k in range(len(graph) - 1, -1, -1):
            service, endpoint = graph.nodes[k]
            callees: List[Tuple[str, bool]] = [
                (rng.choice(shared), False),            # marshal in
                (endpoint_roots[service][endpoint], False),
            ]
            for child in graph.children[k]:
                callees.append((names[child], False))   # RPC fan-out
            callees.append((rng.choice(shared), False))  # reply out
            _new_function(binary, rng, params, names[k],
                          rng.randint(160, 360), callees)
        root_wrappers.append(names[0])

    # The "rpc" stage dispatcher: an indirect call selecting the
    # request type's root wrapper (same shape as the monolithic stage
    # dispatchers, so TraceBuilder's selector path drives it).
    dispatcher = "rpc_dispatch"
    binary.add_function(Function(dispatcher, [
        BlockSpec(ninstr=rng.randint(4, 8), kind=BranchKind.COND,
                  taken_prob=_EASY_TAKEN, taken_next=1),
        BlockSpec(ninstr=rng.randint(2, 4), kind=BranchKind.ICALL,
                  targets=tuple(root_wrappers), selector="rpc"),
        BlockSpec(ninstr=rng.randint(1, 3), kind=BranchKind.RET),
    ]))
    dispatchers = {"rpc": dispatcher}

    # Request loop.
    binary.add_function(Function("main", [
        BlockSpec(ninstr=6, kind=BranchKind.COND, taken_prob=_EASY_TAKEN,
                  taken_next=1),
        BlockSpec(ninstr=3, kind=BranchKind.CALL, callee=dispatcher),
        BlockSpec(ninstr=2, kind=BranchKind.JUMP, taken_next=0),
    ]))

    live_funcs = len(binary)
    _build_cold_region(
        binary, rng, params, shared,
        n_funcs=int(live_funcs * params.cold_func_frac),
    )
    binary.layout()
    route_map = [{"rpc": root} for root in root_wrappers]
    return binary, dispatchers, route_map, graphs


def build_microservice_app(params: MicroserviceParams) -> Application:
    """Generate, link and load a complete microservice system."""
    binary, dispatchers, route_map, _ = generate_microservice_binary(params)
    Linker(params.bundle_threshold).link(binary)
    program = LoadedProgram(binary)
    weights = zipf_weights(params.n_request_types, params.zipf_alpha)
    return Application(
        params=params,
        binary=binary,
        program=program,
        dispatchers=dispatchers,
        route_map=route_map,
        stage_names=["rpc"],
        request_weights=weights,
        arrival=params.arrival,
    )


# ----------------------------------------------------------------------
# The named workload family
# ----------------------------------------------------------------------
def _social(name: str, seed: int) -> MicroserviceParams:
    """DeathStarBench-style social network: wide fan-out at the
    frontend, mid-size per-service footprints, strong tenant skew."""
    return MicroserviceParams(
        name=name, seed=seed, stages=[],
        services=[
            ServiceSpec("edge", 3, 16.0),
            ServiceSpec("compose", 3, 20.0),
            ServiceSpec("timeline", 2, 22.0),
            ServiceSpec("graph", 2, 18.0),
            ServiceSpec("text", 2, 14.0),
            ServiceSpec("storage", 3, 20.0),
        ],
        fanout_max=3, max_depth=4, edge_prob=0.6,
        n_request_types=6, zipf_alpha=1.0,
        shared_pool_kb=120.0, hot_pool_kb=18.0,
        bundle_threshold=36 * 1024, base_requests=26,
        arrival=ArrivalSpec(utilization=0.65, burst_repeat_prob=0.6,
                            slo_factor=6.0),
    )


def _media(name: str, seed: int) -> MicroserviceParams:
    """Media pipeline: deep, narrow chains (review -> rating -> ...)."""
    return MicroserviceParams(
        name=name, seed=seed, stages=[],
        services=[
            ServiceSpec("gateway", 2, 14.0),
            ServiceSpec("review", 3, 22.0),
            ServiceSpec("rating", 2, 16.0),
            ServiceSpec("media", 2, 24.0),
            ServiceSpec("meta", 2, 18.0),
        ],
        fanout_max=2, max_depth=5, edge_prob=0.7,
        n_request_types=5, zipf_alpha=0.8,
        shared_pool_kb=110.0, hot_pool_kb=16.0,
        bundle_threshold=32 * 1024, base_requests=26,
        arrival=ArrivalSpec(utilization=0.6, burst_repeat_prob=0.55,
                            idle_gap_scale=2.4, slo_factor=6.5),
    )


def _hotel(name: str, seed: int) -> MicroserviceParams:
    """Hotel-reservation style search/recommend: shallow wide fan-out,
    few request types hammered hard (high Zipf, long bursts)."""
    return MicroserviceParams(
        name=name, seed=seed, stages=[],
        services=[
            ServiceSpec("frontend", 2, 16.0),
            ServiceSpec("search", 3, 24.0),
            ServiceSpec("geo", 2, 14.0),
            ServiceSpec("rate", 2, 16.0),
            ServiceSpec("profile", 2, 20.0),
            ServiceSpec("reserve", 2, 18.0),
        ],
        fanout_max=3, max_depth=3, edge_prob=0.65,
        n_request_types=4, zipf_alpha=1.2,
        shared_pool_kb=100.0, hot_pool_kb=16.0,
        bundle_threshold=30 * 1024, base_requests=28,
        arrival=ArrivalSpec(utilization=0.7, burst_repeat_prob=0.7,
                            burst_len=8.0, slo_factor=5.5),
    )


def _ecommerce(name: str, seed: int) -> MicroserviceParams:
    """E-commerce storefront: many services and request shapes, mixed
    tenancy with moderate skew — the largest combined footprint."""
    return MicroserviceParams(
        name=name, seed=seed, stages=[],
        services=[
            ServiceSpec("edge", 2, 14.0),
            ServiceSpec("catalog", 3, 22.0),
            ServiceSpec("cart", 2, 16.0),
            ServiceSpec("pricing", 2, 14.0),
            ServiceSpec("inventory", 2, 18.0),
            ServiceSpec("payment", 2, 20.0),
            ServiceSpec("shipping", 2, 16.0),
        ],
        fanout_max=3, max_depth=4, edge_prob=0.55,
        n_request_types=7, zipf_alpha=0.9,
        shared_pool_kb=130.0, hot_pool_kb=20.0,
        bundle_threshold=38 * 1024, base_requests=24,
        arrival=ArrivalSpec(utilization=0.65, burst_repeat_prob=0.5,
                            slo_factor=7.0),
    )


def _family() -> Dict[str, MicroserviceParams]:
    return {
        "msvc_social": _social("msvc_social", 201),
        "msvc_media": _media("msvc_media", 202),
        "msvc_hotel": _hotel("msvc_hotel", 203),
        "msvc_ecommerce": _ecommerce("msvc_ecommerce", 204),
    }


_MPARAMS = _family()

#: The microservice request-graph workloads, in reporting order.
MICROSERVICE_NAMES = tuple(_MPARAMS)


def microservice_params(name: str) -> MicroserviceParams:
    """Parameter set for microservice workload ``name``."""
    try:
        return _MPARAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown microservice workload {name!r}; expected one of "
            f"{MICROSERVICE_NAMES}"
        ) from None
