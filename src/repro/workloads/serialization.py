"""Trace serialization: save/load traces as compressed ``.npz`` files.

Traces take seconds to generate; experiments that sweep many
configurations over the same trace can persist them.  The format stores
the six parallel arrays as numpy vectors plus the annotations as
structured arrays; loading reconstructs an identical
:class:`~repro.workloads.trace.Trace` (verified down to cycle-exact
simulation results in the tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.workloads.trace import Trace

#: Format version written into every file; bumped on layout changes.
#: v2 adds the optional open-loop arrival process (``request_gaps`` +
#: ``slo_instr``); v1 files still load (they predate arrivals).
FORMAT_VERSION = 2


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (``.npz``, compressed)."""
    path = Path(path)
    meta = {
        "version": FORMAT_VERSION,
        "n_instructions": trace.n_instructions,
        "stage_names": sorted({s[2] for s in trace.stage_spans}),
    }
    spans = np.array(
        [(s, e, stage, rt) for s, e, stage, rt in trace.stage_spans],
        dtype=[("start", "i8"), ("end", "i8"), ("stage", "U32"),
               ("rtype", "i4")],
    )
    requests = np.array(trace.requests, dtype="i8").reshape(-1, 2)
    arrays = dict(
        meta=json.dumps(meta),
        pc=np.array(trace.pc, dtype="i8"),
        ninstr=np.array(trace.ninstr, dtype="i4"),
        kind=np.array(trace.kind, dtype="i1"),
        taken=np.array(trace.taken, dtype="i1"),
        target=np.array(trace.target, dtype="i8"),
        tagged=np.array(trace.tagged, dtype="i1"),
        requests=requests,
        stage_spans=spans,
    )
    if trace.request_gaps is not None:
        meta["slo_instr"] = trace.slo_instr
        arrays["meta"] = json.dumps(meta)
        arrays["request_gaps"] = np.array(trace.request_gaps, dtype="f8")
    np.savez_compressed(path, **arrays)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        version = meta.get("version")
        if version not in (1, FORMAT_VERSION):
            raise ValueError(
                f"{path}: unsupported trace format version {version!r} "
                f"(expected <= {FORMAT_VERSION})"
            )
        trace = Trace()
        trace.pc = data["pc"].tolist()
        trace.ninstr = data["ninstr"].tolist()
        trace.kind = data["kind"].tolist()
        trace.taken = data["taken"].tolist()
        trace.target = data["target"].tolist()
        trace.tagged = data["tagged"].tolist()
        trace.requests = [tuple(row) for row in data["requests"].tolist()]
        trace.stage_spans = [
            (int(r["start"]), int(r["end"]), str(r["stage"]),
             int(r["rtype"]))
            for r in data["stage_spans"]
        ]
        trace.n_instructions = int(meta["n_instructions"])
        if "request_gaps" in data.files:
            trace.request_gaps = data["request_gaps"].tolist()
            trace.slo_instr = float(meta["slo_instr"])
    lengths = {
        len(trace.pc), len(trace.ninstr), len(trace.kind),
        len(trace.taken), len(trace.target), len(trace.tagged),
    }
    if len(lengths) != 1:
        raise ValueError(f"{path}: corrupt trace (ragged arrays)")
    return trace
