"""The 11 named workloads of the paper's evaluation (§6.2).

Each entry parameterizes the synthetic generator to echo the character
of the real application: number and size of pipeline stages, routine
working sets, shared-library weight, request-type mix, and control-flow
noise.  The absolute sizes are scaled down ~2-4x from the real binaries
(DESIGN.md §2) while keeping working sets far beyond the 32 KB L1-I and
around/above the 512 KB L2.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.appmodel import Application, AppParams, StageSpec
from repro.workloads.generator import build_app
from repro.workloads.microservices import (
    MICROSERVICE_NAMES,
    build_microservice_app,
    microservice_params,
)

#: Trace length factors; "full" targets ~1M instructions per workload.
SCALES: Dict[str, float] = {"tiny": 0.15, "bench": 0.6, "full": 1.0}


def _web_framework(name: str, seed: int, routine_kb: float,
                   noise: float) -> AppParams:
    """Go web frameworks (beego / gin / echo): HTTP routing pipelines —
    mid-size working sets, strongly repetitive handlers."""
    return AppParams(
        name=name,
        seed=seed,
        stages=[
            StageSpec("parse", 2, routine_kb * 0.6, shared_frac=0.35),
            StageSpec("route", 4, routine_kb * 0.8, shared_frac=0.3),
            StageSpec("handle", 5, routine_kb, shared_frac=0.3),
            StageSpec("render", 4, routine_kb * 0.9, shared_frac=0.35,
                      skip_prob=0.15),
            StageSpec("respond", 2, routine_kb * 0.5, shared_frac=0.4),
        ],
        n_request_types=6,
        zipf_alpha=0.9,
        shared_pool_kb=220.0,
        branch_noise=noise,
        bundle_threshold=44 * 1024,
        base_requests=26,
    )


def _database(name: str, seed: int, routine_kb: float, n_stages_big: int,
              noise: float, request_types: int,
              threshold_kb: int) -> AppParams:
    """OLTP databases (mysql / tidb): deep statement pipelines with the
    Figure-1 stage structure and large per-statement working sets."""
    stages = [
        StageSpec("read", 1, routine_kb * 0.7, shared_frac=0.4),
        StageSpec("dispatch", 3, routine_kb * 0.5, shared_frac=0.3),
        StageSpec("compile", 5, routine_kb * 1.1, shared_frac=0.25,
                  skip_prob=0.1),
        StageSpec("exec", n_stages_big, routine_kb * 1.4, shared_frac=0.25),
        StageSpec("finish", 2, routine_kb * 0.6, shared_frac=0.4),
    ]
    return AppParams(
        name=name,
        seed=seed,
        stages=stages,
        n_request_types=request_types,
        zipf_alpha=0.8,
        shared_pool_kb=260.0,
        branch_noise=noise,
        bundle_threshold=threshold_kb * 1024,
        base_requests=24,
    )


def _suite() -> Dict[str, AppParams]:
    apps: Dict[str, AppParams] = {}
    apps["beego"] = _web_framework("beego", 101, 42.0, 0.035)
    gin = _web_framework("gin", 102, 46.0, 0.04)
    gin.bundle_threshold = 48 * 1024
    apps["gin"] = gin
    echo = _web_framework("echo", 103, 44.0, 0.035)
    echo.bundle_threshold = 40 * 1024
    apps["echo"] = echo
    # Caddy: HTTP/1-2-3 server under nghttp2 load — bigger shared core
    # (TLS/h2 framing), fewer request types.
    caddy = _web_framework("caddy", 104, 40.0, 0.045)
    caddy.shared_pool_kb = 220.0
    caddy.n_request_types = 4
    caddy.bundle_threshold = 30 * 1024
    caddy.base_requests = 28
    apps["caddy"] = caddy
    # DGraph: graph database — many query shapes, large exec stage.
    apps["dgraph"] = _database("dgraph", 105, 40.0, 6, 0.045, 6, 36)
    # gorm: ORM over PostgreSQL — mid working set, heavy shared library
    # (driver + reflection-style code).
    gorm = _web_framework("gorm", 106, 44.0, 0.035)
    gorm.shared_pool_kb = 240.0
    gorm.bundle_threshold = 36 * 1024
    gorm.name = "gorm"
    apps["gorm"] = gorm
    # MySQL / TiDB under several OLTP drivers: same engine personality,
    # different request mixes and intensities.
    apps["mysql_sysbench"] = _database("mysql_sysbench", 107, 42.0, 6,
                                       0.04, 6, 27)
    apps["tidb_sysbench"] = _database("tidb_sysbench", 108, 42.0, 5,
                                      0.04, 6, 34)
    tpcc = _database("tidb_tpcc", 109, 44.0, 6, 0.045, 6, 34)
    tpcc.zipf_alpha = 0.6  # TPC-C's five transaction types are balanced
    apps["tidb_tpcc"] = tpcc
    ycsb = _database("mysql_ycsb", 110, 38.0, 5, 0.035, 4, 25)
    ycsb.zipf_alpha = 1.1  # YCSB hammers a few operation types
    apps["mysql_ycsb"] = ycsb
    sib = _database("mysql_sibench", 111, 36.0, 4, 0.035, 3, 26)
    sib.base_requests = 26
    apps["mysql_sibench"] = sib
    return apps


_PARAMS = _suite()

#: The paper's 11 workloads, in reporting order.
WORKLOAD_NAMES = tuple(_PARAMS)

#: Every named workload: the paper's 11 plus the microservice
#: request-graph family (docs/MICROSERVICES.md).
ALL_WORKLOAD_NAMES = WORKLOAD_NAMES + MICROSERVICE_NAMES


def is_microservice(name: str) -> bool:
    """True when ``name`` is a microservice request-graph workload."""
    return name in MICROSERVICE_NAMES


def workload_params(name: str) -> AppParams:
    """Parameter set for workload ``name`` (KeyError lists valid names)."""
    if name in MICROSERVICE_NAMES:
        return microservice_params(name)
    try:
        return _PARAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; expected one of {ALL_WORKLOAD_NAMES}"
        ) from None


def build_application(name: str) -> Application:
    """Generate + link + load the named workload's application."""
    if name in MICROSERVICE_NAMES:
        return build_microservice_app(microservice_params(name))
    return build_app(workload_params(name))


def requests_for(name: str, scale: str) -> int:
    """Number of requests to trace for ``name`` at ``scale``."""
    try:
        factor = SCALES[scale]
    except KeyError:
        raise KeyError(
            f"unknown scale {scale!r}; expected one of {tuple(SCALES)}"
        ) from None
    return max(4, round(workload_params(name).base_requests * factor))
