"""Application model: the knobs describing a synthetic server program.

An application is a request loop over a pipeline of *stages* (Figure 1:
Read -> Dispatch -> Compile -> Exec -> Finish for TiDB).  Each stage owns
several alternative *routines*; the routine executed for a request is
selected by the request's type at an indirect-call dispatch point — the
coarse-grained divergence points that delimit Bundles.  Routines are
trees of functions mixing private code with calls into shared helper
libraries, plus a small hot pool (allocator/logging-style code) touched
from everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.isa.binary import Binary
from repro.isa.loader import LoadedProgram


@dataclass
class StageSpec:
    """One stage of the request-processing pipeline."""

    name: str
    #: Number of alternative routines the stage dispatches among.
    n_routines: int
    #: Target static code size per routine, in KB.
    routine_kb: float
    #: Fraction of a routine's call sites that go to shared helpers.
    shared_frac: float = 0.3
    #: Probability that a given request type skips this stage entirely.
    skip_prob: float = 0.0


@dataclass
class ArrivalSpec:
    """Open-loop arrival process for request-graph workloads.

    Arrival times are expressed on an *ideal clock* (committed
    instructions at full commit width), so the same trace presents the
    identical offered load to every prefetcher under test — the
    SLOFetch-style methodology where only service times (and therefore
    queueing) respond to front-end quality.
    """

    #: Offered load as a fraction of ideal service capacity.  The mean
    #: inter-arrival gap is ``mean_request_instructions / utilization``.
    utilization: float = 0.65
    #: Probability that the next request repeats the previous type
    #: (tenancy burstiness: same-tenant requests cluster in time).
    burst_repeat_prob: float = 0.6
    #: Inter-arrival gap multiplier inside an arrival burst.
    burst_gap_scale: float = 0.25
    #: Inter-arrival gap multiplier between bursts.
    idle_gap_scale: float = 2.0
    #: Expected burst length in requests (geometric).
    burst_len: float = 6.0
    #: SLO threshold as a multiple of the mean *ideal* request service
    #: time (instructions / commit width).
    slo_factor: float = 6.0


@dataclass
class AppParams:
    """Full parameter set for one synthetic application."""

    name: str
    seed: int
    stages: List[StageSpec]
    n_request_types: int = 6
    #: Zipf exponent of the request-type popularity distribution.
    zipf_alpha: float = 0.9
    #: Shared helper-library size in KB (reused across routines/stages).
    shared_pool_kb: float = 160.0
    #: Hot pool size in KB — tiny functions called from everywhere that
    #: stay cache-resident (allocator, logging, locks).
    hot_pool_kb: float = 24.0
    #: Mean function size in bytes.
    avg_func_bytes: int = 380
    #: Fraction of conditional branches that are hard to predict.
    branch_noise: float = 0.05
    #: Fraction of conditional branches biased toward taken (predictable
    #: direction, but the taken target occupies a BTB entry).
    taken_bias_frac: float = 0.45
    #: Taken probability of a hard branch (easy branches use 0.04).
    noisy_taken_prob: float = 0.15
    #: Probability that an optional call site is skipped per execution
    #: (controls intra-Bundle footprint variation / Jaccard).
    optional_call_prob: float = 0.15
    #: Fraction of call sites that are optional.
    optional_site_frac: float = 0.3
    #: Fraction of eligible routine-tree nodes whose children become a
    #: per-invocation *switch*: an indirect call executing exactly one
    #: child subtree, drawn per execution.  These are the paper's "minor
    #: divergence points ... incorporated into their constituent
    #: Bundles" — the intra-Bundle control-flow variation that bounds
    #: every record-and-replay prefetcher's accuracy.
    switch_site_frac: float = 0.38
    #: Extra never-executed (cold) functions, as a fraction of the
    #: executed function count — real binaries are mostly cold code.
    cold_func_frac: float = 1.2
    #: Bundle divergence threshold in bytes used when linking.  The
    #: paper uses 200 KB on TiDB-scale binaries; synthetic apps scale it
    #: with their code size.
    bundle_threshold: int = 96 * 1024
    #: Requests per trace at scale factor 1.0.
    base_requests: int = 120

    def total_routine_kb(self) -> float:
        return sum(s.n_routines * s.routine_kb for s in self.stages)


class Application:
    """A generated application: binary + loaded program + dispatch maps."""

    def __init__(
        self,
        params: AppParams,
        binary: Binary,
        program: LoadedProgram,
        dispatchers: Dict[str, str],
        route_map: List[Dict[str, str]],
        stage_names: Sequence[str],
        request_weights: Sequence[float],
        arrival: Optional["ArrivalSpec"] = None,
    ):
        self.params = params
        self.binary = binary
        self.program = program
        #: stage name -> dispatcher function name.
        self.dispatchers = dispatchers
        #: route_map[request_type][stage name] -> routine function name
        #: (absent key = the request type skips that stage).
        self.route_map = route_map
        self.stage_names = list(stage_names)
        #: Normalized request-type popularity (Zipf).
        self.request_weights = list(request_weights)
        #: Open-loop arrival process (request-graph workloads only).
        #: When set, traces carry per-request inter-arrival gaps and an
        #: SLO threshold, and the simulator's request-latency tracker
        #: auto-enables on them.
        self.arrival = arrival

    @property
    def name(self) -> str:
        return self.params.name

    @property
    def n_request_types(self) -> int:
        return len(self.route_map)

    def trace(self, n_requests: int, seed: int = 1):
        """Generate an execution trace of ``n_requests`` requests."""
        from repro.workloads.trace import TraceBuilder

        return TraceBuilder(self, seed=seed).build(n_requests)

    def __repr__(self) -> str:
        return (
            f"Application({self.name!r}, functions={len(self.binary)}, "
            f"text={self.binary.text_size >> 10}KB, "
            f"bundles={self.program.n_bundles})"
        )


def zipf_weights(n: int, alpha: float) -> List[float]:
    """Normalized Zipf popularity weights for ``n`` ranks."""
    if n < 1:
        raise ValueError("n must be >= 1")
    raw = [1.0 / (k ** alpha) for k in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]
