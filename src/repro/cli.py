"""Command-line interface.

Subcommands::

    repro list                       enumerate workloads and prefetchers
    repro run WORKLOAD               simulate one prefetcher vs. FDIP
    repro compare WORKLOAD           run the paper's comparison set
    repro sweep [WORKLOAD...]        parallel cached grid (--jobs N)
    repro sweep --manifest F.toml    declarative grid via the sharded
                                     sweep service (--shards N),
                                     journaled; --resume [RUN_ID]
                                     continues an interrupted run
    repro manifest validate F...     check sweep manifests
    repro manifest expand F          show a manifest's expanded points
    repro manifest events F|DIR      summarize a progress event stream
                                     or run journal (--follow to tail)
    repro cache info|compact|clear   on-disk result cache maintenance
    repro probe WORKLOAD             interval IPC/MPKI/accuracy timelines
    repro bench [NAME...]            performance microbenchmarks
    repro bench compare BASE NEW     diff two benchmark artifact sets
    repro bundles WORKLOAD           Algorithm 1 report for a workload
    repro characterize WORKLOAD      structural workload profile
    repro trace WORKLOAD -o F.npz    generate + save a trace
    repro replay F.npz               simulate a saved trace
    repro lint [PATH...]             project-specific static analysis

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.metrics import compare_run
from repro.analysis.reporting import format_table
from repro.cpu import DEFAULT_WARMUP, MachineConfig, simulate
from repro.memory.policies import POLICY_DESCRIPTIONS, POLICY_NAMES
from repro.prefetchers import PREFETCHER_NAMES, make_prefetcher
from repro.workloads.suite import (
    ALL_WORKLOAD_NAMES,
    SCALES,
    WORKLOAD_NAMES,
    workload_params,
)


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="bench", choices=sorted(SCALES),
                        help="trace length preset (default: bench)")
    parser.add_argument("--seed", type=int, default=1,
                        help="trace RNG seed (default: 1)")
    parser.add_argument("--warmup", type=float, default=DEFAULT_WARMUP,
                        help=f"warmup fraction (default: {DEFAULT_WARMUP})")


def _get_trace(args):
    from repro.workloads.cache import get_trace

    return get_trace(args.workload, scale=args.scale, seed=args.seed)


def _print_policies() -> None:
    print("replacement policies (cache + I-TLB; --policy axis of "
          "repro sweep, docs/POLICIES.md):")
    print(format_table(
        ["policy", "description"],
        [[name, POLICY_DESCRIPTIONS[name]] for name in POLICY_NAMES],
    ))


def cmd_list(args) -> int:
    from repro.workloads.microservices import (
        MICROSERVICE_NAMES,
        request_graphs,
    )

    if args.policies:
        _print_policies()
        return 0
    rows = []
    for name in WORKLOAD_NAMES:
        params = workload_params(name)
        rows.append([
            name, len(params.stages), params.n_request_types,
            f"{params.total_routine_kb():.0f}",
            params.bundle_threshold // 1024,
        ])
    print(format_table(
        ["workload", "stages", "req_types", "routines_kb", "threshold_kb"],
        rows,
    ))
    rows = []
    for name in MICROSERVICE_NAMES:
        params = workload_params(name)
        graphs = request_graphs(params)
        rows.append([
            name, len(params.services), params.n_request_types,
            max(g.depth() for g in graphs),
            f"{params.total_routine_kb():.0f}",
            f"{params.arrival.utilization:.2f}",
            f"{params.arrival.slo_factor:.1f}",
        ])
    print("\nmicroservice request-graph workloads "
          "(per-request SLO metrics; docs/MICROSERVICES.md):")
    print(format_table(
        ["workload", "services", "req_types", "max_depth", "endpoints_kb",
         "utilization", "slo_factor"],
        rows,
    ))
    print(f"\nprefetchers: {', '.join(PREFETCHER_NAMES)}")
    print()
    _print_policies()
    return 0


def cmd_run(args) -> int:
    trace = _get_trace(args)
    print(f"{trace}")
    baseline = simulate(trace, warmup_fraction=args.warmup)
    print(f"FDIP baseline: IPC {baseline.ipc:.3f}, "
          f"L1-I MPKI {baseline.l1i_mpki:.2f}")
    if args.prefetcher in ("fdip", "none"):
        return 0
    pf = make_prefetcher(args.prefetcher)
    stats = simulate(trace, prefetcher=pf, warmup_fraction=args.warmup)
    report = compare_run(args.prefetcher, stats, baseline)
    print(format_table(
        ["prefetcher", "distance", "accuracy", "cov_L1", "cov_L2",
         "late", "speedup"],
        [report.row()],
    ))
    return 0


def cmd_compare(args) -> int:
    trace = _get_trace(args)
    baseline = simulate(trace, warmup_fraction=args.warmup)
    rows = []
    for name in args.prefetchers:
        pf = make_prefetcher(name)
        stats = simulate(trace, prefetcher=pf, warmup_fraction=args.warmup)
        rows.append(compare_run(name, stats, baseline).row())
    if args.perfect:
        cfg = MachineConfig().replace(**{"hierarchy.perfect_l1i": True})
        perfect = simulate(trace, config=cfg, warmup_fraction=args.warmup)
        rows.append(["perfect_l1i", "-", "-", "-", "-", "-",
                     f"{perfect.ipc / baseline.ipc - 1:+.1%}"])
    print(f"{args.workload} @ {args.scale}: baseline IPC "
          f"{baseline.ipc:.3f}, MPKI {baseline.l1i_mpki:.2f}\n")
    print(format_table(
        ["prefetcher", "distance", "accuracy", "cov_L1", "cov_L2",
         "late", "speedup"],
        rows,
    ))
    return 0


def cmd_sweep(args) -> int:
    import time

    from repro.experiments import runner
    from repro.experiments.errors import PointFailure, SweepInterrupted
    from repro.experiments.sweep import grid, sweep

    if args.clear_cache:
        from repro.experiments import diskcache

        runner.clear_run_cache(disk=True)
        print(f"cleared simulation cache at {diskcache.get_cache().root}")
        if not (args.workloads or args.manifest):
            return 0
    if args.manifest:
        if args.workloads or args.policy:
            print("--manifest already defines the grid; drop the "
                  "positional workloads / --policy arguments",
                  file=sys.stderr)
            return 2
        from repro.experiments.manifest import ManifestError, load_manifest

        try:
            manifest = load_manifest(args.manifest)
        except ManifestError as exc:
            print(exc, file=sys.stderr)
            return 2
        points = manifest.expand()
        title = manifest.name or args.manifest
        print(f"manifest {title}: {len(points)} point(s)"
              + (f" (sampled from {manifest.full_count})"
                 if manifest.sample else ""))
    elif args.events and args.shards is None:
        print("--events requires --manifest or --shards (the sharded "
              "service emits the stream)", file=sys.stderr)
        return 2
    else:
        workloads = args.workloads or list(WORKLOAD_NAMES)
        unknown = [w for w in workloads if w not in ALL_WORKLOAD_NAMES]
        if unknown:
            print(f"unknown workload(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        if args.policy:
            from repro.experiments.policies import policy_overrides

            points = []
            for pol in args.policy:
                points += grid(
                    workloads, args.prefetchers, scale=args.scale,
                    seed=args.seed, warmup=args.warmup,
                    overrides=policy_overrides(pol, args.itlb_prefetch),
                )
        else:
            points = grid(workloads, args.prefetchers, scale=args.scale,
                          seed=args.seed, warmup=args.warmup)
    use_service = args.manifest is not None or args.shards is not None
    if args.resume is not None and not use_service:
        print("--resume requires --manifest or --shards (only "
              "journaled service sweeps can be resumed)",
              file=sys.stderr)
        return 2
    if args.resume is not None and args.no_cache:
        print("--resume needs the disk cache: the journal records "
              "which points completed, the cache holds their results",
              file=sys.stderr)
        return 2

    def _resume_hint(run_id: Optional[str]) -> str:
        base = "repro sweep"
        if args.manifest:
            base += f" --manifest {args.manifest}"
        elif args.shards is not None:
            base += f" --shards {args.shards}"
        return f"{base} --resume" + (f" {run_id}" if run_id else "")

    before = runner.run_cache_stats()
    start = time.perf_counter()
    journal = None
    try:
        if use_service:
            from pathlib import Path

            from repro.experiments.journal import JournalError, run_sweep
            from repro.experiments.service import (
                JsonlEventLog,
                ServiceConfig,
            )

            config = ServiceConfig(
                shards=args.shards or 2, jobs=args.jobs,
                use_cache=not args.no_cache,
                max_retries=args.max_retries,
                point_timeout=args.point_timeout,
                keep_going=args.keep_going,
            )
            log = JsonlEventLog(args.events) if args.events else None
            try:
                report, journal = run_sweep(
                    points, config, events=log, progress=print,
                    resume=args.resume is not None,
                    run_id=args.resume or None,
                    run_root=(Path(args.run_dir)
                              if args.run_dir else None),
                    handle_signals=True,
                    extra_meta=({"manifest": args.manifest}
                                if args.manifest else None),
                )
            except JournalError as exc:
                print(exc, file=sys.stderr)
                return 2
            finally:
                if log is not None:
                    log.close()
            if args.events:
                print(f"progress events -> {args.events}")
            print(f"run journal {journal.run_id} "
                  f"(segment {journal.segment}) -> {journal.run_dir}")
            if args.resume is not None:
                print(f"resumed: {journal.replay_preresolved} "
                      f"completed point(s) replayed from the journal, "
                      f"{journal.replay_poisoned} poisoned point(s) "
                      "quarantined")
        else:
            report = sweep(
                points, jobs=args.jobs, use_cache=not args.no_cache,
                progress=print, max_retries=args.max_retries,
                point_timeout=args.point_timeout,
                keep_going=args.keep_going,
            )
    except SweepInterrupted as exc:
        done = len(exc.report.results) if exc.report else 0
        print(f"\nsweep interrupted: {done}/{len(points)} point(s) "
              "resolved; in-flight workers reaped, completed points "
              "journaled", file=sys.stderr)
        print(f"resume with: {_resume_hint(exc.run_id)}",
              file=sys.stderr)
        return exc.exit_code
    except KeyboardInterrupt:
        # The serial/parallel engine has no journal: nothing to
        # resume, but exit like an interrupted shell command instead
        # of spraying a traceback.
        print("\nsweep interrupted (no journal in --jobs mode; "
              "re-run to continue from the disk cache)",
              file=sys.stderr)
        return 130
    except PointFailure as failure:
        print(f"sweep aborted: {failure} "
              "(use --keep-going to collect partial results)",
              file=sys.stderr)
        if journal is not None:
            print(f"run journal: {journal.run_dir}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    results = report.results

    def _policy_of(point):
        return (point.overrides or {}).get("hierarchy.policy", "lru")

    # FDIP baselines are per (workload, policy, scale, seed): a policy
    # reshapes the baseline substrate too, and a manifest may sweep
    # heterogeneous scales/seeds, so speedups must compare like with
    # like.
    def _base_key(point):
        return (point.workload, _policy_of(point), point.scale,
                point.seed)

    baselines = {_base_key(r.point): r.stats
                 for r in results if r.point.prefetcher is None}
    with_policy = bool(getattr(args, "policy", None)) or any(
        "hierarchy.policy" in (r.point.overrides or {}) for r in results)
    # Scale/seed columns appear only when the grid actually varies them
    # (manifests can; the flag path cannot).
    with_scale = len({r.point.scale for r in results}) > 1
    with_seed = len({r.point.seed for r in results}) > 1
    # Request-latency columns appear when any swept workload carries
    # per-request SLO accounting (the microservice family).
    with_slo = any(r.stats.has_request_latency for r in results)
    rows = []
    for r in results:
        base = baselines.get(_base_key(r.point))
        speedup = ("-" if r.point.prefetcher is None or base is None
                   else f"{r.stats.ipc / base.ipc - 1:+.1%}")
        row = [
            r.point.workload, r.point.prefetcher or "fdip",
        ]
        if with_scale:
            row.append(r.point.scale)
        if with_seed:
            row.append(str(r.point.seed))
        if with_policy:
            row.append(_policy_of(r.point))
        row += [
            f"{r.stats.ipc:.3f}", f"{r.stats.l1i_mpki:.2f}", speedup,
        ]
        if with_slo:
            if r.stats.has_request_latency:
                extra = r.stats.extra
                row += [
                    f"{extra['request.p50']:.0f}",
                    f"{extra['request.p95']:.0f}",
                    f"{extra['request.p99']:.0f}",
                    f"{r.stats.slo_attainment:.1%}",
                ]
            else:
                row += ["-", "-", "-", "-"]
        row += [r.source, f"{r.seconds:.2f}"]
        rows.append(row)
    header = ["workload", "prefetcher"]
    if with_scale:
        header.append("scale")
    if with_seed:
        header.append("seed")
    if with_policy:
        header.append("policy")
    header += ["ipc", "l1i_mpki", "speedup"]
    if with_slo:
        header += ["p50", "p95", "p99", "slo"]
    header += ["source", "secs"]
    print()
    print(format_table(header, rows))
    s = runner.run_cache_stats()
    simulated = s.simulations - before.simulations
    disk = s.disk_hits - before.disk_hits
    memory = s.memory_hits - before.memory_hits
    corrupt = s.cache_corrupt - before.cache_corrupt
    refused = s.write_refusals - before.write_refusals
    lane = (f"--shards {args.shards or 2} --jobs {args.jobs}"
            if use_service else f"--jobs {args.jobs}")
    summary = (f"\n{len(results)}/{len(points)} points in {elapsed:.1f}s "
               f"with {lane}: {simulated} simulated, "
               f"{disk} disk hits, {memory} memory hits")
    if corrupt:
        summary += f", {corrupt} corrupt cache entries quarantined"
    if refused:
        summary += (f", {refused} cache write(s) refused "
                    "(volume nearly full)")
    print(summary)
    if report.failures:
        print(f"\n{len(report.failures)} point(s) failed after retries:",
              file=sys.stderr)
        for failure in report.failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    return 0


def cmd_probe(args) -> int:
    import json

    trace = _get_trace(args)
    pf = (make_prefetcher(args.prefetcher)
          if args.prefetcher not in ("fdip", "none") else None)
    config = None
    if args.policy != "lru" or args.itlb_prefetch:
        from repro.experiments.policies import policy_overrides

        config = MachineConfig().replace(
            **policy_overrides(args.policy, args.itlb_prefetch)
        )
    stats = simulate(trace, config=config, prefetcher=pf,
                     warmup_fraction=args.warmup,
                     probe_interval=args.interval)
    instructions = stats.extra.get("probe.instructions", ())
    if not instructions:
        print("no probe samples: trace's measured window is shorter than "
              f"--interval {args.interval}", file=sys.stderr)
        return 1
    ipc = stats.extra["probe.ipc"]
    mpki = stats.extra["probe.l1i_mpki"]
    acc = stats.extra["probe.pf_accuracy"]
    if args.json:
        payload = {
            "workload": args.workload,
            "prefetcher": args.prefetcher,
            "policy": args.policy,
            "interval": args.interval,
            "instructions": list(instructions),
            "cycles": list(stats.extra["probe.cycles"]),
            "ipc": list(ipc),
            "l1i_mpki": list(mpki),
            "pf_accuracy": list(acc),
        }
        if stats.has_request_latency:
            extra = stats.extra
            payload["requests"] = {
                "count": extra["request.count"],
                "p50": extra["request.p50"],
                "p95": extra["request.p95"],
                "p99": extra["request.p99"],
                "slo_threshold": extra["request.slo_threshold"],
                "slo_attainment": extra["request.slo_attainment"],
                "window": extra["request.window"],
                "latency": list(extra["probe.request_latency"]),
                "timeline_p99": list(extra["probe.request_p99"]),
                "timeline_slo": list(extra["probe.request_slo"]),
            }
        print(json.dumps(payload))
        return 0
    print(f"{args.workload} @ {args.scale}, {args.prefetcher}: "
          f"{len(instructions)} samples every {args.interval} instructions")
    rows = [
        [f"{int(n):,}", f"{i:.3f}", f"{m:.2f}", f"{a:.2%}"]
        for n, i, m, a in zip(instructions, ipc, mpki, acc)
    ]
    print(format_table(
        ["instructions", "ipc", "l1i_mpki", "pf_accuracy"], rows,
    ))
    print(f"\nwhole window: IPC {stats.ipc:.3f}, "
          f"L1-I MPKI {stats.l1i_mpki:.2f}")
    if args.itlb_prefetch:
        print(f"I-TLB prefetch: {stats.itlb_misses} demand walks "
              f"(MPKI {stats.itlb_mpki:.3f}), {stats.itlb_pf_probes} "
              f"probes, {stats.itlb_pf_installs} installs, "
              f"{stats.itlb_pf_hits} covered by prefetch")
    if stats.has_request_latency:
        extra = stats.extra
        print(f"\nper-request latency ({int(extra['request.count'])} "
              f"requests, SLO threshold "
              f"{extra['request.slo_threshold']:.0f} cycles):")
        print(f"  p50 {extra['request.p50']:.0f}  "
              f"p95 {extra['request.p95']:.0f}  "
              f"p99 {extra['request.p99']:.0f}  "
              f"max {extra['request.max']:.0f}  "
              f"SLO attainment {stats.slo_attainment:.1%}")
        window = int(extra["request.window"])
        rows = [
            [f"{i * window}", f"{p50:.0f}", f"{p95:.0f}", f"{p99:.0f}",
             f"{slo:.1%}"]
            for i, (p50, p95, p99, slo) in enumerate(zip(
                extra["probe.request_p50"], extra["probe.request_p95"],
                extra["probe.request_p99"], extra["probe.request_slo"]))
        ]
        print(format_table(
            ["request#", "p50", "p95", "p99", "slo"], rows,
        ))
    return 0


def cmd_bench(args) -> int:
    from repro.experiments import bench

    targets = list(args.targets)
    if targets and targets[0] == "compare":
        if len(targets) != 3:
            print("usage: repro bench compare BASE_DIR NEW_DIR "
                  "[--max-regression PCT]", file=sys.stderr)
            return 2
        try:
            threshold = bench.parse_regression(args.max_regression)
        except ValueError as exc:
            print(f"bad --max-regression: {exc}", file=sys.stderr)
            return 2
        try:
            rows, problems = bench.compare_dirs(targets[1], targets[2],
                                                threshold)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(format_table(
            ["benchmark", "base_s", "new_s", "delta", "threshold",
             "status"],
            rows,
        ))
        if problems:
            print()
            for message in problems:
                print(f"FAIL {message}", file=sys.stderr)
            return 1
        print(f"\nall benchmarks within {args.max_regression} "
              "of the baseline")
        return 0
    try:
        bench.run_benchmarks(
            targets or None, quick=args.quick, repeats=args.repeats,
            out_dir=args.out, progress=print,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.out:
        print(f"\nartifacts written to {args.out}/")
    return 0


def cmd_bundles(args) -> int:
    from repro.core.bundles import identify_bundles
    from repro.workloads.cache import get_application

    app = get_application(args.workload)
    threshold = (args.threshold * 1024 if args.threshold
                 else app.params.bundle_threshold)
    info = identify_bundles(app.binary, threshold)
    print(f"{app}")
    print(f"threshold {threshold // 1024} KB: {info.n_bundles} Bundle "
          f"entries / {info.n_functions} functions "
          f"({info.bundle_fraction:.2%})")
    live = sorted(
        (n for n in info.entries if not n.startswith("cold")),
        key=lambda n: -info.reachable[n],
    )[: args.top]
    print(format_table(
        ["entry point", "reachable_kb"],
        [[n, info.reachable[n] // 1024] for n in live],
    ))
    return 0


def cmd_characterize(args) -> int:
    from repro.workloads.cache import get_application
    from repro.workloads.characterize import characterize

    app = get_application(args.workload)
    trace = _get_trace(args)
    profile = characterize(app, trace)
    print(f"{args.workload} @ {args.scale}")
    print(format_table(["property", "value"], profile.rows()))
    print()
    print(format_table(
        ["stage", "avg footprint (KB)"],
        [[stage, f"{kb:.1f}"]
         for stage, kb in profile.stage_footprints_kb.items()],
    ))
    return 0


def cmd_trace(args) -> int:
    from repro.workloads.serialization import save_trace

    trace = _get_trace(args)
    save_trace(trace, args.output)
    print(f"wrote {trace} -> {args.output}")
    return 0


def cmd_manifest(args) -> int:
    from repro.experiments.manifest import ManifestError, load_manifest

    if args.action == "validate":
        bad = 0
        for path in args.files:
            try:
                manifest = load_manifest(path)
            except ManifestError as exc:
                print(exc, file=sys.stderr)
                bad += 1
                continue
            except FileNotFoundError:
                print(f"{path}: no such file", file=sys.stderr)
                bad += 1
                continue
            n = len(manifest.expand())
            sampled = (f" (sampled from {manifest.full_count})"
                       if manifest.sample else "")
            print(f"OK {path}: {manifest.name or '<unnamed>'}, "
                  f"{n} point(s){sampled}")
        return 2 if bad else 0

    if args.action == "expand":
        try:
            manifest = load_manifest(args.files[0])
        except ManifestError as exc:
            print(exc, file=sys.stderr)
            return 2
        points = manifest.expand()
        if args.json:
            import json

            print(json.dumps({
                "manifest": manifest.to_dict(),
                "count": len(points),
                "points": [
                    {"workload": p.workload,
                     "prefetcher": p.prefetcher or "fdip",
                     "scale": p.scale, "seed": p.seed,
                     "overrides": p.overrides or {}}
                    for p in points
                ],
            }, indent=2, sort_keys=True))
            return 0
        rows = [[str(i), p.workload, p.prefetcher or "fdip", p.scale,
                 str(p.seed),
                 (p.overrides or {}).get("hierarchy.policy", "-")]
                for i, p in enumerate(points)]
        print(format_table(
            ["#", "workload", "prefetcher", "scale", "seed", "policy"],
            rows))
        print(f"\n{len(points)} point(s)"
              + (f" sampled from {manifest.full_count}"
                 if manifest.sample else ""))
        return 0

    # action == "events": summarize (or tail) a service JSONL progress
    # stream — one file, or a run-journal directory whose segments are
    # joined and seq-deduplicated.
    from pathlib import Path

    from repro.experiments.journal import read_run_events
    from repro.experiments.service import (
        follow_events,
        format_events_summary,
        read_events,
        summarize_events,
    )

    target = Path(args.files[0])
    if args.follow:
        import json

        path = target
        if target.is_dir():
            segments = sorted(target.glob("events-*.jsonl"))
            path = (segments[-1] if segments
                    else target / "events-0001.jsonl")
        try:
            for event in follow_events(path):
                print(json.dumps(event, sort_keys=True), flush=True)
        except KeyboardInterrupt:
            return 130
        return 0
    try:
        events = (read_run_events(target) if target.is_dir()
                  else read_events(target))
        summary = summarize_events(events)
    except (OSError, ValueError) as exc:
        print(f"{args.files[0]}: {exc}", file=sys.stderr)
        return 2
    print(format_events_summary(summary))
    if args.check and (summary["failed"] or summary["missing"]
                       or summary["duplicates"]):
        return 1
    return 0


def cmd_cache(args) -> int:
    from repro.experiments import diskcache

    cache = diskcache.get_cache()
    warmup = diskcache.get_warmup_cache()
    if args.action == "info":
        for title, store in (("results", cache), ("warmup", warmup)):
            s = store.stats()
            print(f"{title}: {s['entries']} entries, {s['bytes']} bytes, "
                  f"{s['legacy']} legacy flat, {s['quarantined']} "
                  f"quarantined, {s['shard_dirs']} shard dir(s) "
                  f"[{s['root']}]")
        s = cache.stats()
        if s["free_bytes"] is not None:
            floor = s["min_free_bytes"]
            print(f"volume: {s['free_bytes'] / 1e6:.0f} MB free "
                  f"(writes refused below {floor / 1e6:.0f} MB; "
                  "REPRO_CACHE_MIN_FREE)")
        return 0
    if args.action == "compact":
        for title, store in (("results", cache), ("warmup", warmup)):
            report = store.compact(
                purge_quarantined=not args.keep_quarantined)
            print(f"{title}: {report.describe()}")
        return 0
    # action == "clear"
    from repro.experiments import runner

    runner.clear_run_cache(disk=True)
    print(f"cleared simulation cache at {cache.root}")
    return 0


def cmd_lint(args) -> int:
    from repro.lint.cli import cmd_lint as _cmd_lint

    return _cmd_lint(args)


def cmd_replay(args) -> int:
    from repro.workloads.serialization import load_trace

    trace = load_trace(args.file)
    print(f"loaded {trace}")
    pf = (make_prefetcher(args.prefetcher)
          if args.prefetcher not in ("fdip", "none") else None)
    stats = simulate(trace, prefetcher=pf, warmup_fraction=args.warmup)
    print(f"IPC {stats.ipc:.3f}, L1-I MPKI {stats.l1i_mpki:.2f}, "
          f"cycles {stats.cycles:.0f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hierarchical Prefetching (ASPLOS 2025) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ls = sub.add_parser("list",
                        help="list workloads, prefetchers and policies")
    ls.add_argument("--policies", action="store_true",
                    help="show only the replacement-policy table")

    run = sub.add_parser("run", help="simulate one prefetcher")
    run.add_argument("workload", choices=ALL_WORKLOAD_NAMES)
    run.add_argument("--prefetcher", default="hierarchical",
                     choices=PREFETCHER_NAMES)
    _add_scale(run)

    cmp_ = sub.add_parser("compare", help="run the comparison set")
    cmp_.add_argument("workload", choices=ALL_WORKLOAD_NAMES)
    cmp_.add_argument("--prefetchers", nargs="+",
                      default=["efetch", "mana", "eip", "hierarchical"],
                      choices=[n for n in PREFETCHER_NAMES if n != "fdip"])
    cmp_.add_argument("--perfect", action="store_true",
                      help="include the perfect-L1I headroom row")
    _add_scale(cmp_)

    sw = sub.add_parser(
        "sweep",
        help="run a workload x prefetcher grid in parallel, with the "
             "persistent simulation cache",
    )
    sw.add_argument("workloads", nargs="*", metavar="WORKLOAD",
                    help="workloads to sweep (default: all)")
    sw.add_argument("--prefetchers", nargs="+",
                    default=["efetch", "mana", "eip", "hierarchical"],
                    choices=[n for n in PREFETCHER_NAMES if n != "fdip"])
    sw.add_argument("--jobs", type=int, default=1,
                    help="worker processes (default: 1 = serial)")
    sw.add_argument("--no-cache", action="store_true",
                    help="ignore and do not update the result caches")
    sw.add_argument("--clear-cache", action="store_true",
                    help="clear the on-disk simulation cache first "
                         "(with no workloads: clear and exit)")
    sw.add_argument("--max-retries", type=int, default=2,
                    help="retries per point after a worker crash, "
                         "timeout, or transient fault (default: 2)")
    sw.add_argument("--point-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="kill and retry any point running longer than "
                         "this (enforced with --jobs >= 2)")
    sw.add_argument("--keep-going", action="store_true",
                    help="on unrecoverable point failures, keep "
                         "sweeping and report partial results "
                         "(exit 1 if any point failed)")
    sw.add_argument("--policy", nargs="+", choices=POLICY_NAMES,
                    metavar="POLICY",
                    help="replacement policies to cross with the "
                         f"prefetchers (choices: {', '.join(POLICY_NAMES)}; "
                         "default: lru only, no policy column)")
    sw.add_argument("--itlb-prefetch", action="store_true",
                    help="enable the I-TLB prefetch path on every "
                         "--policy point")
    sw.add_argument("--manifest", default=None, metavar="FILE",
                    help="run a declarative sweep manifest (.toml/.json, "
                         "docs/SWEEP_SERVICE.md) through the sharded "
                         "service instead of building the grid from "
                         "flags")
    sw.add_argument("--shards", type=int, default=None, metavar="N",
                    help="run through the sharded sweep service with N "
                         "local shards x --jobs workers each "
                         "(default with --manifest: 2)")
    sw.add_argument("--events", default=None, metavar="FILE",
                    help="stream JSONL progress events (scheduled/"
                         "completed/retried/failed) to FILE; service "
                         "mode only")
    sw.add_argument("--resume", nargs="?", const="", default=None,
                    metavar="RUN_ID",
                    help="service mode: resume an interrupted journaled "
                         "run — completed points replay from journal + "
                         "cache, poison points are quarantined "
                         "(default: the grid's most recent run)")
    sw.add_argument("--run-dir", default=None, metavar="DIR",
                    help="run-journal root (default: <cache root>/runs "
                         "or REPRO_RUN_DIR)")
    _add_scale(sw)

    man = sub.add_parser(
        "manifest",
        help="validate, expand, or summarize declarative sweep "
             "manifests (docs/SWEEP_SERVICE.md)",
    )
    man.add_argument("action", choices=("validate", "expand", "events"),
                     help="validate FILES... | expand FILE | events FILE")
    man.add_argument("files", nargs="+", metavar="FILE",
                     help="manifest file(s); for 'events' one JSONL "
                          "stream or a run-journal directory (segments "
                          "joined)")
    man.add_argument("--json", action="store_true",
                     help="expand: emit the canonical manifest + points "
                          "as JSON")
    man.add_argument("--check", action="store_true",
                     help="events: exit 1 when the stream records "
                          "failures, unaccounted points, or duplicate "
                          "terminal events")
    man.add_argument("--follow", action="store_true",
                     help="events: tail the stream live (JSONL to "
                          "stdout), returning after its end record")

    cache = sub.add_parser(
        "cache",
        help="inspect or maintain the on-disk simulation cache "
             "(docs/SWEEP_CACHE.md)",
    )
    cache.add_argument("action", choices=("info", "compact", "clear"),
                       help="info: counters | compact: migrate legacy "
                            "flat entries, drop stale schemas, purge "
                            "quarantine, GC empty shard dirs | clear: "
                            "delete everything")
    cache.add_argument("--keep-quarantined", action="store_true",
                       help="compact: keep *.corrupt sidecars instead "
                            "of purging them")

    probe = sub.add_parser(
        "probe",
        help="sample IPC/miss-rate/accuracy timelines over the measured "
             "window via the interval probe bus",
    )
    probe.add_argument("workload", choices=ALL_WORKLOAD_NAMES)
    probe.add_argument("--prefetcher", default="hierarchical",
                       choices=PREFETCHER_NAMES)
    probe.add_argument("--interval", type=int, default=20_000,
                       help="committed instructions between samples "
                            "(default: 20000)")
    probe.add_argument("--json", action="store_true",
                       help="emit the timelines as JSON")
    probe.add_argument("--policy", default="lru", choices=POLICY_NAMES,
                       help="replacement policy for caches + I-TLB "
                            "(default: lru)")
    probe.add_argument("--itlb-prefetch", action="store_true",
                       help="enable the I-TLB prefetch path")
    _add_scale(probe)

    bench = sub.add_parser(
        "bench",
        help="run performance microbenchmarks / compare artifact sets",
    )
    bench.add_argument(
        "targets", nargs="*", metavar="NAME",
        help="benchmarks to run (default: all), or 'compare BASE NEW'",
    )
    bench.add_argument("--quick", action="store_true",
                       help="CI preset: tiny scale, fewer repeats")
    bench.add_argument("--repeats", type=int, default=None,
                       help="timing repeats (default: 3 quick, 5 full)")
    bench.add_argument("--out", default=None, metavar="DIR",
                       help="write BENCH_<name>.json artifacts here")
    bench.add_argument("--max-regression", default="15%",
                       help="compare mode: allowed median slowdown "
                            "(e.g. '15%%' or '0.15'; default: 15%%)")

    bundles = sub.add_parser("bundles", help="Algorithm 1 report")
    bundles.add_argument("workload", choices=ALL_WORKLOAD_NAMES)
    bundles.add_argument("--threshold", type=int, default=0,
                         help="divergence threshold in KB "
                              "(default: the workload's)")
    bundles.add_argument("--top", type=int, default=15,
                         help="entries to display")

    char = sub.add_parser("characterize",
                          help="structural workload profile")
    char.add_argument("workload", choices=ALL_WORKLOAD_NAMES)
    _add_scale(char)

    trace = sub.add_parser("trace", help="generate and save a trace")
    trace.add_argument("workload", choices=ALL_WORKLOAD_NAMES)
    trace.add_argument("-o", "--output", required=True,
                       help="output .npz path")
    _add_scale(trace)

    replay = sub.add_parser("replay", help="simulate a saved trace")
    replay.add_argument("file", help="trace .npz path")
    replay.add_argument("--prefetcher", default="hierarchical",
                        choices=PREFETCHER_NAMES)
    replay.add_argument("--warmup", type=float, default=DEFAULT_WARMUP)

    lint = sub.add_parser(
        "lint",
        help="AST-based project lints (snapshot coverage, determinism, "
             "hot-loop hygiene, pickle safety); see docs/LINTING.md",
    )
    from repro.lint.cli import add_arguments as _add_lint_arguments
    _add_lint_arguments(lint)
    return parser


_COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "compare": cmd_compare,
    "sweep": cmd_sweep,
    "manifest": cmd_manifest,
    "cache": cmd_cache,
    "probe": cmd_probe,
    "bench": cmd_bench,
    "bundles": cmd_bundles,
    "characterize": cmd_characterize,
    "trace": cmd_trace,
    "replay": cmd_replay,
    "lint": cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
