"""Pluggable replacement policies for the caches and the I-TLB.

Eviction/insertion used to be hardwired LRU inside
:class:`~repro.memory.cache.SetAssocCache`; this module makes the
decision a first-class :class:`~repro.cpu.component.SimComponent` so
the substrate under a prefetcher becomes a swept dimension (Jamet et
al., arXiv 2605.12433: prefetched-line-aware cache/TLB management is a
multiplier on *any* instruction prefetcher).

A policy operates on one set's ``OrderedDict`` (iteration order is
recency: least recent first).  The *hit* path is uniform across
policies — every policy promotes a hit to MRU, which is exactly the
"promote on first demand hit" rule — so ``SetAssocCache.lookup`` stays
untouched and pays zero dispatch cost.  Policies differ only in
:meth:`ReplacementPolicy.insert_line`: where a fill enters the recency
stack and which resident line is the victim.  Entries carry the fill
origin (:data:`~repro.memory.cache.ORIGIN_DEMAND` /
``ORIGIN_FDIP`` / ``ORIGIN_PF``) and a used bit, which is what the
prefetch-aware variants key on.

``insert_line`` is called from the fenced commit loop (every demand
miss and completed prefetch fill lands here), so implementations follow
the hot-loop idiom: constants hoisted to locals above any loop, no
per-access allocation beyond the unavoidable eviction pair.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

from repro.cpu.component import SimComponent, check_state_fields
from repro.memory.cache import E_ORIGIN, E_USED, ORIGIN_DEMAND

#: Deterministic MRU-insertion period of the bimodal policy (BIP's
#: epsilon = 1/32, realized as a counter instead of an RNG so sweeps
#: stay bit-reproducible).
BIP_MRU_PERIOD = 32


class ReplacementPolicy(SimComponent):
    """Insertion/eviction strategy for one cache (or the I-TLB).

    Stateless policies share the base no-op snapshot protocol; stateful
    ones (BIP's insertion counter) override it.  One instance belongs
    to exactly one cache — per-cache state must not alias across
    levels.
    """

    name = "base"
    description = "abstract policy"

    def insert_line(
        self, entries, block: int, entry: list, assoc: int,
    ) -> Optional[Tuple[int, list]]:
        """Install ``entry`` for ``block`` into the set ``entries``.

        ``entries`` is the set's ``OrderedDict`` in recency order
        (least recent first); the caller guarantees ``block`` is not
        resident.  Returns the evicted ``(block, entry)`` pair or None.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # SimComponent protocol (stateless default)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        pass

    def state_dict(self) -> Dict[str, object]:
        return {}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, ())

    def stats_snapshot(self) -> Dict[str, float]:
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class LRUPolicy(ReplacementPolicy):
    """Classic LRU: insert at MRU, evict the LRU line.

    Bit-identical to the pre-refactor hardwired behavior — the golden
    matrix (tests/data/golden_matrix.json) pins this.
    """

    name = "lru"
    description = "insert at MRU, evict LRU (the pre-refactor default)"

    def insert_line(self, entries, block, entry, assoc):
        # lint: hot-begin
        evicted = None
        if len(entries) >= assoc:
            evicted = entries.popitem(last=False)
        entries[block] = entry
        return evicted
        # lint: hot-end


class LIPPolicy(ReplacementPolicy):
    """LRU-Insertion Policy: every fill enters at the LRU position.

    A line only climbs the stack when a demand hit promotes it (the
    uniform hit path), so single-use fills wash out of the set without
    displacing the reused working set (Qureshi et al., ISCA'07).
    """

    name = "lip"
    description = "insert at LRU position; only hits promote to MRU"

    def insert_line(self, entries, block, entry, assoc):
        # lint: hot-begin
        evicted = None
        if len(entries) >= assoc:
            evicted = entries.popitem(last=False)
        entries[block] = entry
        entries.move_to_end(block, last=False)
        return evicted
        # lint: hot-end


class BIPPolicy(ReplacementPolicy):
    """Bimodal Insertion Policy: LIP with an occasional MRU insert.

    Every :data:`BIP_MRU_PERIOD`-th fill enters at MRU (deterministic
    counter in place of BIP's epsilon-coin), preserving a trickle of
    thrash protection while still adapting to LRU-friendly phases.
    """

    name = "bip"
    description = ("LIP with every 32nd fill at MRU "
                   "(deterministic bimodal insertion)")

    def __init__(self) -> None:
        self._fills = 0

    def insert_line(self, entries, block, entry, assoc):
        # lint: hot-begin
        evicted = None
        if len(entries) >= assoc:
            evicted = entries.popitem(last=False)
        entries[block] = entry
        fills = self._fills + 1
        if fills >= BIP_MRU_PERIOD:
            fills = 0  # this fill stays at MRU
        else:
            entries.move_to_end(block, last=False)
        self._fills = fills
        return evicted
        # lint: hot-end

    def reset(self) -> None:
        self._fills = 0

    def state_dict(self) -> Dict[str, object]:
        return {"fills": self._fills}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, ("fills",))
        self._fills = state["fills"]


class PrefetchAwarePolicy(ReplacementPolicy):
    """Prefetch-aware insertion and demotion (Jamet et al. §4).

    Demand fills behave like LRU.  Prefetched fills (origin FDIP or the
    evaluated prefetcher) enter at the *distal* (LRU) position: a
    wrong-path prefetch ages out after one round instead of holding a
    full trip through the stack, while a correct one is promoted to MRU
    by its first demand hit.  On eviction the policy prefers demoting a
    still-unused prefetched line over the strict LRU victim, so
    speculative lines never displace the demand-proven working set.
    """

    name = "pf_aware"
    description = ("prefetches insert at LRU and unused prefetched "
                   "lines are evicted first; demand hits promote")

    def insert_line(self, entries, block, entry, assoc):
        e_origin = E_ORIGIN
        e_used = E_USED
        origin_demand = ORIGIN_DEMAND
        # lint: hot-begin
        evicted = None
        if len(entries) >= assoc:
            victim = -1
            for b, e in entries.items():  # recency order, LRU first
                if e[e_origin] != origin_demand and not e[e_used]:
                    victim = b
                    break
            if victim < 0:
                evicted = entries.popitem(last=False)
            else:
                evicted = (victim, entries.pop(victim))
        entries[block] = entry
        if entry[e_origin] != origin_demand:
            entries.move_to_end(block, last=False)
        return evicted
        # lint: hot-end


_POLICY_CLASSES: Dict[str, Type[ReplacementPolicy]] = {
    cls.name: cls
    for cls in (LRUPolicy, LIPPolicy, BIPPolicy, PrefetchAwarePolicy)
}

#: Names accepted by :func:`make_policy`, in presentation order.
POLICY_NAMES: Tuple[str, ...] = ("lru", "lip", "bip", "pf_aware")

#: ``{name: one-line description}`` for ``repro list --policies``.
POLICY_DESCRIPTIONS: Dict[str, str] = {
    name: _POLICY_CLASSES[name].description for name in POLICY_NAMES
}


def make_policy(name) -> ReplacementPolicy:
    """Build a replacement policy by name.

    Accepts a ready :class:`ReplacementPolicy` instance unchanged, so
    construction sites can take either form.
    """
    if isinstance(name, ReplacementPolicy):
        return name
    cls = _POLICY_CLASSES.get(str(name).lower())
    if cls is None:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of "
            f"{POLICY_NAMES}"
        )
    return cls()


__all__ = [
    "BIP_MRU_PERIOD", "POLICY_NAMES", "POLICY_DESCRIPTIONS",
    "ReplacementPolicy", "LRUPolicy", "LIPPolicy", "BIPPolicy",
    "PrefetchAwarePolicy", "make_policy",
]
