"""Set-associative cache with per-block fill-origin tracking.

Entries remember who brought the block in (demand, FDIP, or the
evaluated prefetcher) and whether a demand fetch has touched it since,
which is what prefetch accuracy/coverage accounting needs: a prefetched
block evicted untouched is a useless prefetch; the first demand touch of
a prefetched block is a covered miss.

Insertion/eviction is delegated to a pluggable
:class:`~repro.memory.policies.ReplacementPolicy` (default LRU,
bit-identical to the historical hardwired behavior).  The *hit* path is
policy-independent by design — every policy promotes a hit to MRU — so
``lookup`` carries no dispatch overhead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.cpu.component import SimComponent, check_state_fields

#: Fill origins.
ORIGIN_DEMAND = 0
ORIGIN_FDIP = 1
ORIGIN_PF = 2
N_ORIGINS = 3

# Entry layout (plain list for speed): [origin, used, issue_index, dirty]
E_ORIGIN = 0
E_USED = 1
E_ISSUE = 2
E_DIRTY = 3


class SetAssocCache(SimComponent):
    """Set-associative cache over abstract block indices.

    ``policy`` is a :class:`~repro.memory.policies.ReplacementPolicy`
    instance or name (default ``"lru"``); the instance belongs to this
    cache alone (stateful policies must not be shared across levels).
    """

    def __init__(self, size_bytes: int, assoc: int, block_bytes: int = 64,
                 name: str = "cache", policy=None):
        if size_bytes % (assoc * block_bytes) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"assoc*block ({assoc}*{block_bytes})"
            )
        # Imported here: policies.py depends on this module's layout
        # constants (E_*/ORIGIN_*).
        from repro.memory.policies import make_policy

        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_bytes = block_bytes
        self.n_sets = size_bytes // (assoc * block_bytes)
        if self.n_sets & (self.n_sets - 1):
            raise ValueError(f"{name}: set count {self.n_sets} not a power of 2")
        self._set_mask = self.n_sets - 1
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.policy = make_policy(policy if policy is not None else "lru")
        # Hot-path binding: one dispatch per fill, none per hit.
        self._insert_line = self.policy.insert_line

    def lookup(self, block: int) -> Optional[list]:
        """Return the entry for ``block`` (LRU-touching it) or None."""
        entries = self._sets[block & self._set_mask]
        entry = entries.get(block)
        if entry is not None:
            entries.move_to_end(block)
        return entry

    def peek(self, block: int) -> Optional[list]:
        """Return the entry without updating LRU state."""
        return self._sets[block & self._set_mask].get(block)

    def insert(
        self, block: int, origin: int = ORIGIN_DEMAND, issue_index: int = -1,
        used: bool = False,
    ) -> Optional[Tuple[int, list]]:
        """Insert ``block``; return ``(evicted_block, entry)`` if any.

        Re-inserting a resident block refreshes LRU but keeps the
        original entry (a prefetch to a resident block must not clear
        its used bit).
        """
        entries = self._sets[block & self._set_mask]
        existing = entries.get(block)
        if existing is not None:
            entries.move_to_end(block)
            return None
        return self._insert_line(
            entries, block, [origin, used, issue_index, False], self.assoc
        )

    def invalidate(self, block: int) -> Optional[list]:
        """Remove ``block`` if resident; return its entry."""
        return self._sets[block & self._set_mask].pop(block, None)

    def __contains__(self, block: int) -> bool:
        return block in self._sets[block & self._set_mask]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def capacity_blocks(self) -> int:
        return self.n_sets * self.assoc

    def clear(self) -> None:
        for entries in self._sets:
            entries.clear()

    # ------------------------------------------------------------------
    # SimComponent protocol
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.clear()
        self.policy.reset()

    def state_dict(self) -> Dict[str, object]:
        # Per set: (block, entry) pairs in recency order (least recent
        # first), which is exactly the OrderedDict iteration order.
        return {
            "sets": [
                [(block, list(entry)) for block, entry in entries.items()]
                for entries in self._sets
            ],
            "policy": self.policy.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, ("sets", "policy"))
        self.policy.load_state_dict(state["policy"])
        sets = state["sets"]
        if len(sets) != self.n_sets:
            raise ValueError(
                f"{self.name}: snapshot has {len(sets)} sets, "
                f"cache has {self.n_sets}"
            )
        for entries, saved in zip(self._sets, sets):
            entries.clear()
            for block, entry in saved:
                entries[block] = list(entry)

    def stats_snapshot(self) -> Dict[str, float]:
        return {"occupancy": len(self) / self.capacity_blocks}

    def resident_blocks(self) -> List[int]:
        """All resident block indices (test/analysis helper)."""
        out: List[int] = []
        for entries in self._sets:
            out.extend(entries.keys())
        return out

    def __repr__(self) -> str:
        return (
            f"SetAssocCache({self.name}, {self.size_bytes >> 10}KB, "
            f"{self.assoc}-way, {len(self)}/{self.capacity_blocks} blocks)"
        )
