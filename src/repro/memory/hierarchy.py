"""Timing model of the L1-I / L2 / LLC / DRAM hierarchy.

Demand fetches stall the core for the residual fill latency; prefetches
are queued, limited by prefetch MSHRs, and complete asynchronously
(min-heap of fills).  A demand fetch that finds its block still in
flight is a *late prefetch* — the MSHR hit of Figure 10 — and stalls for
the residual latency only.  HP's metadata lives in a dedicated region
serviced through the real LLC, so metadata traffic competes with
instruction blocks exactly as §5.3 requires, and the bandwidth meter
feeds Figure 16.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cpu.component import SimComponent, check_state_fields
from repro.cpu.stats import LEVEL_DRAM, LEVEL_L2, LEVEL_LLC, SimStats
from repro.memory.cache import (
    E_DIRTY,
    E_ISSUE,
    E_ORIGIN,
    E_USED,
    ORIGIN_DEMAND,
    SetAssocCache,
)

# Fill record layout: [ready, origin, level, issue_index, demanded, to_l2, id]
F_READY = 0
F_ORIGIN = 1
F_LEVEL = 2
F_ISSUE = 3
F_DEMANDED = 4
F_TO_L2 = 5
F_ID = 6

#: Base block index of the synthetic metadata region (disjoint from text).
METADATA_REGION_BLOCK = 1 << 40


@dataclass
class HierarchyParams:
    """Geometry and latencies; defaults follow Table 1 of the paper."""

    l1i_bytes: int = 32 * 1024
    l1i_assoc: int = 8
    l2_bytes: int = 512 * 1024
    l2_assoc: int = 8
    llc_bytes: int = 2 * 1024 * 1024
    llc_assoc: int = 16
    block_bytes: int = 64
    lat_l2: int = 14
    lat_llc: int = 50
    lat_dram: int = 250
    pf_mshrs: int = 16
    pf_queue: int = 512
    perfect_l1i: bool = False
    #: Replacement policy name (see :mod:`repro.memory.policies`)
    #: applied to L1-I, L2 and LLC; each level gets its own instance.
    policy: str = "lru"


class MemoryHierarchy(SimComponent):
    """Instruction-side memory hierarchy with asynchronous prefetch fills."""

    def __init__(self, params: HierarchyParams, stats: SimStats):
        self.params = params
        self.stats = stats
        p = params
        self.l1i = SetAssocCache(p.l1i_bytes, p.l1i_assoc, p.block_bytes,
                                 "L1I", policy=p.policy)
        self.l2 = SetAssocCache(p.l2_bytes, p.l2_assoc, p.block_bytes,
                                "L2", policy=p.policy)
        self.llc = SetAssocCache(p.llc_bytes, p.llc_assoc, p.block_bytes,
                                 "LLC", policy=p.policy)
        # Hot-path constants (params are immutable after construction).
        self._lat_l2 = float(p.lat_l2)
        self._lat_llc = float(p.lat_llc)
        self._lat_dram = float(p.lat_dram)
        self._level_lat = {LEVEL_L2: self._lat_l2, LEVEL_LLC: self._lat_llc,
                           LEVEL_DRAM: self._lat_dram}
        self._block_bytes = p.block_bytes
        self._pf_mshrs = p.pf_mshrs
        self._pf_queue = p.pf_queue
        self._perfect = p.perfect_l1i
        self._inflight: dict = {}
        self._heap: list = []
        self._pending: deque = deque()
        self._fill_seq = 0
        #: When set (a dict), demand L2 misses are tallied per block —
        #: used by the long-range-miss analysis of Figure 12.
        self.l2_miss_map: Optional[dict] = None
        #: Monotonic demand-access clock (never reset, unlike the stats
        #: counter): prefetch issue stamps and trigger-to-use distances
        #: survive the warmup-boundary stats reset.
        self.access_clock = 0

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def demand_fetch(self, block: int, now: float, commit_index: int) -> float:
        """Fetch ``block`` on the demand path; return stall cycles."""
        stats = self.stats
        stats.demand_accesses += 1
        self.access_clock += 1
        if self._perfect:
            stats.l1i_hits += 1
            return 0.0
        if self._heap and self._heap[0][0] <= now:
            self._drain(now)
        entry = self.l1i.lookup(block)
        if entry is not None:
            stats.l1i_hits += 1
            origin = entry[E_ORIGIN]
            if origin != ORIGIN_DEMAND:
                # Hit on a line a prefetcher brought in (the attribution
                # the policy study needs: prefetch-hit vs demand-hit).
                stats.l1i_prefetch_hits += 1
                if not entry[E_USED]:
                    entry[E_USED] = True
                    stats.pf_useful[origin] += 1
                    stats.covered[origin] += 1
                    issue = entry[E_ISSUE]
                    if issue >= 0:
                        stats.distance_sum[origin] += (
                            self.access_clock - issue
                        )
                        stats.distance_n[origin] += 1
            else:
                stats.l1i_demand_hits += 1
                if not entry[E_USED]:
                    entry[E_USED] = True
            return 0.0
        stats.l1i_misses += 1
        fill = self._inflight.get(block)
        if fill is not None:
            stall = fill[F_READY] - now
            if stall < 0.0:
                stall = 0.0
            # The demand promotes the outstanding prefetch: it can never
            # wait longer than fetching the block from the fill's source
            # level directly.
            cap = self._level_latency(fill[F_LEVEL])
            if stall > cap:
                stall = cap
                fill[F_READY] = now + cap
            origin = fill[F_ORIGIN]
            if not fill[F_DEMANDED]:
                fill[F_DEMANDED] = True
                if origin != ORIGIN_DEMAND:
                    stats.pf_late[origin] += 1
                    stats.pf_useful[origin] += 1
                    issue = fill[F_ISSUE]
                    if issue >= 0:
                        stats.distance_sum[origin] += (
                            self.access_clock - issue
                        )
                        stats.distance_n[origin] += 1
            level = fill[F_LEVEL]
            stats.exposed_latency[level] += stall
            # An MSHR hit whose residual latency exceeds an L2 hit is,
            # behaviourally, an L2 miss.
            if stall > self._lat_l2:
                stats.l2_demand_misses += 1
                if self.l2_miss_map is not None:
                    self.l2_miss_map[block] = self.l2_miss_map.get(block, 0) + 1
            return stall
        # True miss: probe downwards.
        entry = self.l2.lookup(block)
        if entry is not None:
            level, latency = LEVEL_L2, self._lat_l2
            if not entry[E_USED]:
                origin = entry[E_ORIGIN]
                entry[E_USED] = True
                if origin != ORIGIN_DEMAND:
                    stats.covered_l2[origin] += 1
        else:
            stats.l2_demand_misses += 1
            if self.l2_miss_map is not None:
                self.l2_miss_map[block] = self.l2_miss_map.get(block, 0) + 1
            llc_entry = self.llc.lookup(block)
            if llc_entry is not None:
                level, latency = LEVEL_LLC, self._lat_llc
            else:
                level, latency = LEVEL_DRAM, self._lat_dram
                stats.dram_read_bytes += self._block_bytes
                self._llc_insert(block)
            stats.uncore_fill_bytes += self._block_bytes
            self.l2.insert(block, ORIGIN_DEMAND, used=True)
        stats.served_by[level] += 1
        stats.exposed_latency[level] += latency
        evicted = self.l1i.insert(block, ORIGIN_DEMAND, used=True)
        if evicted is not None:
            self._account_l1_eviction(evicted[1])
        return latency

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------
    def prefetch(
        self,
        block: int,
        now: float,
        origin: int,
        extra_latency: float = 0.0,
        to_l2: bool = False,
        issue_index: int = -1,
    ) -> bool:
        """Queue a prefetch for ``block``; returns False if filtered.

        Redundant requests (block resident in the target cache or already
        in flight) and requests beyond the pending-queue capacity are
        dropped.
        """
        if self._perfect:
            return False
        stats = self.stats
        if self._heap and self._heap[0][0] <= now:
            self._drain(now)
        target = self.l2 if to_l2 else self.l1i
        if target.peek(block) is not None or block in self._inflight:
            stats.pf_redundant[origin] += 1
            return False
        if len(self._pending) >= self._pf_queue:
            stats.pf_dropped[origin] += 1
            return False
        # Stamp with the demand-access clock: trigger-to-use distance is
        # then measured in demand-fetched cache blocks, the paper's unit.
        issue_index = self.access_clock
        self._pending.append((block, origin, extra_latency, to_l2, issue_index))
        self._try_issue(now)
        return True

    def drain(self, now: float) -> None:
        """Complete fills due by ``now`` and issue queued prefetches."""
        self._drain(now)

    # ------------------------------------------------------------------
    # Metadata traffic (HP §5.3.2)
    # ------------------------------------------------------------------
    def metadata_read(self, base_line: int, n_lines: int, now: float) -> float:
        """Read ``n_lines`` metadata cache lines; return access latency.

        Lines are fetched in parallel from the LLC (or DRAM on an LLC
        miss); the returned latency is the slowest line.  Bandwidth is
        charged per line.
        """
        return self._metadata_access(base_line, n_lines, write=False)

    def metadata_write(self, base_line: int, n_lines: int, now: float) -> None:
        """Write ``n_lines`` metadata lines (posted; no core stall)."""
        self._metadata_access(base_line, n_lines, write=True)

    def _metadata_access(self, base_line: int, n_lines: int, write: bool) -> float:
        stats = self.stats
        nbytes = n_lines * self._block_bytes
        if write:
            stats.metadata_write_bytes += nbytes
        else:
            stats.metadata_read_bytes += nbytes
        worst = self._lat_llc
        for i in range(n_lines):
            line = METADATA_REGION_BLOCK + base_line + i
            entry = self.llc.lookup(line)
            if entry is None:
                worst = self._lat_dram
                if not write:
                    # Write misses allocate without a fill read (full-line
                    # writes); read misses fetch the line from DRAM.
                    stats.dram_read_bytes += self._block_bytes
                self._llc_insert(line, dirty=write)
            elif write:
                entry[E_DIRTY] = True
        return worst

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def in_l1i(self, block: int) -> bool:
        return self.l1i.peek(block) is not None

    def in_flight(self, block: int) -> bool:
        return block in self._inflight

    def inflight_count(self) -> int:
        return len(self._inflight)

    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # SimComponent protocol
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.l1i.reset()
        self.l2.reset()
        self.llc.reset()
        self._inflight.clear()
        self._heap.clear()
        self._pending.clear()
        self._fill_seq = 0
        self.access_clock = 0
        if self.l2_miss_map is not None:
            self.l2_miss_map.clear()

    _STATE_FIELDS = ("l1i", "l2", "llc", "inflight", "heap", "pending",
                     "fill_seq", "access_clock", "l2_miss_map")

    def state_dict(self) -> Dict[str, object]:
        return {
            "l1i": self.l1i.state_dict(),
            "l2": self.l2.state_dict(),
            "llc": self.llc.state_dict(),
            "inflight": {b: list(f) for b, f in self._inflight.items()},
            "heap": [tuple(item) for item in self._heap],
            "pending": [tuple(item) for item in self._pending],
            "fill_seq": self._fill_seq,
            "access_clock": self.access_clock,
            "l2_miss_map": (dict(self.l2_miss_map)
                            if self.l2_miss_map is not None else None),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, self._STATE_FIELDS)
        self.l1i.load_state_dict(state["l1i"])
        self.l2.load_state_dict(state["l2"])
        self.llc.load_state_dict(state["llc"])
        self._inflight = {b: list(f) for b, f in state["inflight"].items()}
        heap = [tuple(item) for item in state["heap"]]
        heapq.heapify(heap)  # snapshots preserve heap order; be safe
        self._heap = heap
        self._pending = deque(tuple(item) for item in state["pending"])
        self._fill_seq = state["fill_seq"]
        self.access_clock = state["access_clock"]
        # Whether block misses are tracked is decided at construction
        # (the run's ``track_block_misses`` flag), not by the snapshot:
        # warmup checkpoints are taken at the measurement boundary,
        # where the map is cleared anyway, so a checkpoint recorded
        # without tracking resumes a tracking run exactly.
        if self.l2_miss_map is not None:
            self.l2_miss_map.clear()
            if state["l2_miss_map"]:
                self.l2_miss_map.update(state["l2_miss_map"])

    def stats_snapshot(self) -> Dict[str, float]:
        out = {}
        for name, cache in (("l1i", self.l1i), ("l2", self.l2),
                            ("llc", self.llc)):
            for key, value in cache.stats_snapshot().items():
                out[f"{name}.{key}"] = value
        out["inflight"] = float(len(self._inflight))
        out["pending"] = float(len(self._pending))
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drain(self, now: float) -> None:
        heap = self._heap
        inflight = self._inflight
        while heap and heap[0][0] <= now:
            _, block, fill_id = heapq.heappop(heap)
            fill = inflight.get(block)
            if fill is None or fill[F_ID] != fill_id:
                continue
            del inflight[block]
            self._complete_fill(block, fill)
        if self._pending:
            self._try_issue(now)

    def _complete_fill(self, block: int, fill: list) -> None:
        origin = fill[F_ORIGIN]
        if fill[F_TO_L2]:
            self.l2.insert(block, origin, issue_index=fill[F_ISSUE],
                           used=fill[F_DEMANDED])
            return
        evicted = self.l1i.insert(
            block, origin, issue_index=fill[F_ISSUE], used=fill[F_DEMANDED]
        )
        if evicted is not None:
            self._account_l1_eviction(evicted[1])

    def _try_issue(self, now: float) -> None:
        pending = self._pending
        inflight = self._inflight
        stats = self.stats
        limit = self._pf_mshrs
        while pending and len(inflight) < limit:
            block, origin, extra, to_l2, issue_index = pending.popleft()
            target = self.l2 if to_l2 else self.l1i
            if target.peek(block) is not None or block in inflight:
                stats.pf_redundant[origin] += 1
                continue
            entry = self.l2.peek(block) if not to_l2 else None
            if entry is not None:
                level, latency = LEVEL_L2, self._lat_l2
            elif self.llc.peek(block) is not None:
                self.llc.lookup(block)  # LRU touch
                level, latency = LEVEL_LLC, self._lat_llc
                stats.uncore_fill_bytes += self._block_bytes
                if not to_l2:
                    self.l2.insert(block, origin)
            else:
                level, latency = LEVEL_DRAM, self._lat_dram
                stats.dram_read_bytes += self._block_bytes
                stats.uncore_fill_bytes += self._block_bytes
                self._llc_insert(block)
                if not to_l2:
                    self.l2.insert(block, origin)
            self._fill_seq += 1
            fill = [now + latency + extra, origin, level, issue_index,
                    False, to_l2, self._fill_seq]
            inflight[block] = fill
            heapq.heappush(self._heap, (fill[F_READY], block, self._fill_seq))
            stats.pf_issued[origin] += 1

    def _level_latency(self, level: str) -> float:
        return self._level_lat.get(level, self._lat_dram)

    def _llc_insert(self, block: int, dirty: bool = False) -> None:
        evicted = self.llc.insert(block, ORIGIN_DEMAND, used=True)
        if dirty:
            entry = self.llc.peek(block)
            if entry is not None:
                entry[E_DIRTY] = True
        if evicted is not None and evicted[1][E_DIRTY]:
            self.stats.dram_write_bytes += self._block_bytes

    def _account_l1_eviction(self, entry: list) -> None:
        if not entry[E_USED]:
            origin = entry[E_ORIGIN]
            if origin != ORIGIN_DEMAND:
                self.stats.pf_useless[origin] += 1
                self.stats.unused_prefetch_evictions += 1
