"""Memory-hierarchy substrate: caches, MSHR-limited fills, I-TLB, DRAM.

Geometry and latencies default to Table 1 of the paper (32 KB L1-I,
512 KB L2, 2 MB LLC, DDR4).  Prefetch fills allocate in the LRU caches
like any other fill, so prefetch pollution — the effect that limits EIP —
is modelled, and a bandwidth meter tracks DRAM plus metadata traffic for
Figure 16.
"""

from repro.memory.cache import (
    SetAssocCache,
    ORIGIN_DEMAND,
    ORIGIN_FDIP,
    ORIGIN_PF,
)
from repro.memory.tlb import InstructionTLB
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy

__all__ = [
    "SetAssocCache",
    "ORIGIN_DEMAND",
    "ORIGIN_FDIP",
    "ORIGIN_PF",
    "InstructionTLB",
    "HierarchyParams",
    "MemoryHierarchy",
]
