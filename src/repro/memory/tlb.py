"""Instruction TLB model (fully associative, pluggable replacement).

Demand fetches that miss stall for the page-walk latency; prefetch
translations (HP dispatches spatial-region base addresses to the TLB,
§5.3.5) add the walk latency to the prefetch's completion time instead
of stalling the core.

When the I-TLB prefetch path is enabled (``core.itlb_prefetch``), FDIP
runahead / HP replay / baseline-prefetcher addresses are probed at page
granularity through :meth:`InstructionTLB.prefetch`: a missing
translation is installed *without* counting as a demand miss and
without stalling anything — the first demand touch of such an entry is
a prefetch-covered walk (``pf_hits``).  Entries carry the same
``[origin, used]`` metadata as cache lines, so the prefetch-aware
replacement policies (:mod:`repro.memory.policies`) apply to the TLB
unchanged: speculative translations insert distally and are demoted
first while unused.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.cpu.component import SimComponent, check_state_fields
from repro.memory.cache import E_USED, ORIGIN_DEMAND, ORIGIN_PF

#: Page-walk latency in cycles charged on a TLB miss.
DEFAULT_WALK_LATENCY = 40


class InstructionTLB(SimComponent):
    """Fully associative I-TLB over page indices.

    ``policy`` is a :class:`~repro.memory.policies.ReplacementPolicy`
    name or instance (default ``"lru"``, the historical behavior).
    """

    def __init__(self, n_entries: int = 128,
                 walk_latency: int = DEFAULT_WALK_LATENCY,
                 policy=None):
        if n_entries < 1:
            raise ValueError("TLB needs at least one entry")
        from repro.memory.policies import make_policy

        self.n_entries = n_entries
        self.walk_latency = walk_latency
        self.policy = make_policy(policy if policy is not None else "lru")
        self._insert_line = self.policy.insert_line
        self._entries: OrderedDict = OrderedDict()
        self.accesses = 0
        self.misses = 0
        # Prefetch-probe path (core.itlb_prefetch); all three stay 0
        # when the path is off, keeping default stats bit-identical.
        self.pf_probes = 0
        self.pf_installs = 0
        self.pf_hits = 0  # first demand touch of a prefetched entry

    def translate(self, page: int) -> int:
        """Access the TLB for ``page``; return the added latency in cycles.

        0 on a hit; ``walk_latency`` on a miss (the page is then
        installed per the replacement policy).
        """
        self.accesses += 1
        entries = self._entries
        entry = entries.get(page)
        if entry is not None:
            entries.move_to_end(page)
            if not entry[E_USED]:
                entry[E_USED] = True
                self.pf_hits += 1
            return 0
        self.misses += 1
        self._insert_line(
            entries, page, [ORIGIN_DEMAND, True], self.n_entries
        )
        return self.walk_latency

    def prefetch(self, page: int, origin: int = ORIGIN_PF) -> int:
        """Non-stalling page-granularity prefetch probe.

        Installs ``page`` if absent (counted as ``pf_installs``, *not*
        as a demand miss) and returns the walk latency the requester
        should fold into its own completion time; a resident page costs
        nothing and — unlike a demand access — is not promoted.
        """
        self.pf_probes += 1
        entries = self._entries
        if page in entries:
            return 0
        self.pf_installs += 1
        self._insert_line(
            entries, page, [origin, False], self.n_entries
        )
        return self.walk_latency

    # ------------------------------------------------------------------
    # SimComponent protocol
    # ------------------------------------------------------------------
    _STATE_FIELDS = ("pages", "accesses", "misses", "pf_probes",
                     "pf_installs", "pf_hits", "policy")

    def reset(self) -> None:
        self._entries.clear()
        self.policy.reset()
        self.accesses = 0
        self.misses = 0
        self.pf_probes = 0
        self.pf_installs = 0
        self.pf_hits = 0

    def state_dict(self) -> Dict[str, object]:
        return {
            # Recency order, least recent first, with per-entry
            # [origin, used] metadata.
            "pages": [(page, list(entry))
                      for page, entry in self._entries.items()],
            "accesses": self.accesses,
            "misses": self.misses,
            "pf_probes": self.pf_probes,
            "pf_installs": self.pf_installs,
            "pf_hits": self.pf_hits,
            "policy": self.policy.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, self._STATE_FIELDS)
        self.policy.load_state_dict(state["policy"])
        self._entries.clear()
        for page, entry in state["pages"]:
            self._entries[page] = list(entry)
        self.accesses = state["accesses"]
        self.misses = state["misses"]
        self.pf_probes = state["pf_probes"]
        self.pf_installs = state["pf_installs"]
        self.pf_hits = state["pf_hits"]

    def stats_snapshot(self) -> Dict[str, float]:
        return {"resident": float(len(self)), "miss_rate": self.miss_rate}

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (
            f"InstructionTLB(entries={self.n_entries}, "
            f"resident={len(self)}, miss_rate={self.miss_rate:.4f})"
        )
