"""Instruction TLB model (fully associative, LRU).

Demand fetches that miss stall for the page-walk latency; prefetch
translations (HP dispatches spatial-region base addresses to the TLB,
§5.3.5) add the walk latency to the prefetch's completion time instead
of stalling the core.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.cpu.component import SimComponent, check_state_fields

#: Page-walk latency in cycles charged on a TLB miss.
DEFAULT_WALK_LATENCY = 40


class InstructionTLB(SimComponent):
    """Fully associative LRU I-TLB over page indices."""

    def __init__(self, n_entries: int = 128,
                 walk_latency: int = DEFAULT_WALK_LATENCY):
        if n_entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.n_entries = n_entries
        self.walk_latency = walk_latency
        self._entries: OrderedDict = OrderedDict()
        self.accesses = 0
        self.misses = 0

    def translate(self, page: int) -> int:
        """Access the TLB for ``page``; return the added latency in cycles.

        0 on a hit; ``walk_latency`` on a miss (the page is then
        installed, evicting the LRU entry if full).
        """
        self.accesses += 1
        entries = self._entries
        if page in entries:
            entries.move_to_end(page)
            return 0
        self.misses += 1
        if len(entries) >= self.n_entries:
            entries.popitem(last=False)
        entries[page] = True
        return self.walk_latency

    # ------------------------------------------------------------------
    # SimComponent protocol
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._entries.clear()
        self.accesses = 0
        self.misses = 0

    def state_dict(self) -> Dict[str, object]:
        return {
            "pages": list(self._entries),  # LRU order, least recent first
            "accesses": self.accesses,
            "misses": self.misses,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, ("pages", "accesses", "misses"))
        self._entries.clear()
        for page in state["pages"]:
            self._entries[page] = True
        self.accesses = state["accesses"]
        self.misses = state["misses"]

    def stats_snapshot(self) -> Dict[str, float]:
        return {"resident": float(len(self)), "miss_rate": self.miss_rate}

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (
            f"InstructionTLB(entries={self.n_entries}, "
            f"resident={len(self)}, miss_rate={self.miss_rate:.4f})"
        )
