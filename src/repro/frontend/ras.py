"""Return Address Stack.

A fixed-depth circular stack: overflow silently overwrites the oldest
entry (so deep call chains corrupt old return predictions, as in real
hardware), underflow predicts nothing.  Besides return prediction, the
top-of-stack window feeds EFetch's call-context signature (§2.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cpu.component import SimComponent, check_state_fields


class ReturnAddressStack(SimComponent):
    """Circular return-address stack (default depth 32)."""

    def __init__(self, depth: int = 32):
        if depth < 1:
            raise ValueError("RAS depth must be >= 1")
        self.depth = depth
        self._buf: List[int] = [0] * depth
        self._top = -1      # index of top entry in _buf
        self._count = 0     # live entries (<= depth)
        self.overflows = 0
        self.underflows = 0

    def push(self, return_addr: int) -> None:
        self._top = (self._top + 1) % self.depth
        self._buf[self._top] = return_addr
        if self._count < self.depth:
            self._count += 1
        else:
            self.overflows += 1

    def pop(self) -> Optional[int]:
        """Pop and return the predicted return address (None if empty)."""
        if self._count == 0:
            self.underflows += 1
            return None
        value = self._buf[self._top]
        self._top = (self._top - 1) % self.depth
        self._count -= 1
        return value

    def top_entries(self, n: int) -> Tuple[int, ...]:
        """The ``n`` most recent return addresses, newest first.

        Used by EFetch/RDIP-style signatures ("hashes of the top entries
        of the RAS").  Returns fewer than ``n`` when the stack is
        shallower.
        """
        n = min(n, self._count)
        out = []
        idx = self._top
        for _ in range(n):
            out.append(self._buf[idx])
            idx = (idx - 1) % self.depth
        return tuple(out)

    def __len__(self) -> int:
        return self._count

    def clear(self) -> None:
        self._top = -1
        self._count = 0

    # ------------------------------------------------------------------
    # SimComponent protocol
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._buf = [0] * self.depth
        self._top = -1
        self._count = 0
        self.overflows = 0
        self.underflows = 0

    def state_dict(self) -> Dict[str, object]:
        return {
            "buf": list(self._buf),
            "top": self._top,
            "count": self._count,
            "overflows": self.overflows,
            "underflows": self.underflows,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(
            self, state, ("buf", "top", "count", "overflows", "underflows")
        )
        if len(state["buf"]) != self.depth:
            raise ValueError("RAS snapshot depth mismatch")
        self._buf = list(state["buf"])
        self._top = state["top"]
        self._count = state["count"]
        self.overflows = state["overflows"]
        self.underflows = state["underflows"]

    def stats_snapshot(self) -> Dict[str, float]:
        return {"live": float(self._count),
                "underflows": float(self.underflows)}

    def __repr__(self) -> str:
        return f"ReturnAddressStack(depth={self.depth}, live={self._count})"
