"""Branch Target Buffer.

Set-associative, LRU, keyed by branch (terminator) instruction address.
The decoupled front end can only redirect fetch past a taken branch the
BTB knows about; a miss halts the FDIP runahead until the branch
resolves — the central FDIP limitation (§2.1).  ``n_entries=None``
models the infinite-BTB study of Figure 14.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.cpu.component import SimComponent, check_state_fields


class BranchTargetBuffer(SimComponent):
    """LRU set-associative BTB; default geometry is 8K entries, 8-way."""

    def __init__(self, n_entries: Optional[int] = 8192, assoc: int = 8):
        self.infinite = n_entries is None
        if self.infinite:
            self._all: dict = {}
            self.n_sets = 1
            self.assoc = 0
        else:
            if n_entries % assoc != 0:
                raise ValueError(
                    f"n_entries {n_entries} not divisible by assoc {assoc}"
                )
            self.assoc = assoc
            self.n_sets = n_entries // assoc
            if self.n_sets & (self.n_sets - 1):
                raise ValueError(f"set count {self.n_sets} not a power of 2")
            self._sets: List[OrderedDict] = [
                OrderedDict() for _ in range(self.n_sets)
            ]
        self.lookups = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        # Terminator addresses are 4-byte aligned; drop the low bits.
        return (pc >> 2) & (self.n_sets - 1)

    def lookup(self, pc: int) -> Optional[int]:
        """Return the stored target for branch ``pc``, or None."""
        self.lookups += 1
        if self.infinite:
            target = self._all.get(pc)
        else:
            entries = self._sets[self._index(pc)]
            target = entries.get(pc)
            if target is not None:
                entries.move_to_end(pc)
        if target is None:
            self.misses += 1
        return target

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target for branch ``pc``."""
        if self.infinite:
            self._all[pc] = target
            return
        entries = self._sets[self._index(pc)]
        if pc not in entries and len(entries) >= self.assoc:
            entries.popitem(last=False)
        entries[pc] = target
        entries.move_to_end(pc)

    def __contains__(self, pc: int) -> bool:
        if self.infinite:
            return pc in self._all
        return pc in self._sets[self._index(pc)]

    def __len__(self) -> int:
        if self.infinite:
            return len(self._all)
        return sum(len(s) for s in self._sets)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0

    # ------------------------------------------------------------------
    # SimComponent protocol
    # ------------------------------------------------------------------
    def reset(self) -> None:
        if self.infinite:
            self._all.clear()
        else:
            for entries in self._sets:
                entries.clear()
        self.lookups = 0
        self.misses = 0

    def state_dict(self) -> Dict[str, object]:
        if self.infinite:
            sets = [list(self._all.items())]
        else:
            # Per set: (pc, target) pairs in LRU order.
            sets = [list(entries.items()) for entries in self._sets]
        return {"sets": sets, "lookups": self.lookups, "misses": self.misses}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, ("sets", "lookups", "misses"))
        sets = state["sets"]
        if len(sets) != (1 if self.infinite else self.n_sets):
            raise ValueError(
                f"BTB snapshot has {len(sets)} sets, expected "
                f"{1 if self.infinite else self.n_sets}"
            )
        if self.infinite:
            self._all = dict(sets[0])
        else:
            for entries, saved in zip(self._sets, sets):
                entries.clear()
                entries.update(saved)
        self.lookups = state["lookups"]
        self.misses = state["misses"]

    def stats_snapshot(self) -> Dict[str, float]:
        return {"resident": float(len(self)), "miss_rate": self.miss_rate}

    def __repr__(self) -> str:
        size = "inf" if self.infinite else self.n_sets * self.assoc
        return f"BranchTargetBuffer(entries={size}, resident={len(self)})"
