"""FDIP: fetch-directed instruction prefetching via a decoupled front end.

The runahead pointer walks the committed path ahead of the commit
pointer, up to the FTQ capacity, issuing prefetches for every fetch
region it enqueues.  It advances past a branch only while the branch
prediction unit can follow it:

* conditional direction comes from TAGE; a wrong direction is a
  misprediction — the FTQ is flushed, the runahead collapses to the
  commit point and the pipeline pays the full restart penalty;
* taken direct branches need a BTB hit; a BTB miss stops the runahead
  (FDIP cannot discover the discontinuity) and costs a fetch resteer
  bubble when the branch resolves;
* returns come from the RAS; indirect targets from ITTAGE.

Wrong-path fetch is not modelled (see DESIGN.md §5); the first-order
FDIP behaviours — limited runahead under BTB pressure and flush-on-
mispredict — are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cpu.component import SimComponent, check_state_fields
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ittage import ITTagePredictor
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.tage import TagePredictor
from repro.isa.instructions import BranchKind
from repro.memory.cache import ORIGIN_FDIP

#: Penalty kinds recorded per block index.
PEN_NONE = 0
PEN_MISPREDICT = 1
PEN_BTB_MISS = 2

_COND = int(BranchKind.COND)
_JUMP = int(BranchKind.JUMP)
_CALL = int(BranchKind.CALL)
_RET = int(BranchKind.RET)
_ICALL = int(BranchKind.ICALL)
_IJUMP = int(BranchKind.IJUMP)


@dataclass
class FrontEndParams:
    """Front-end configuration (Table 1 defaults)."""

    ftq_entries: int = 24
    btb_entries: Optional[int] = 8192  # None = infinite (Figure 14)
    btb_assoc: int = 8
    ras_depth: int = 32
    mispredict_penalty: float = 15.0
    btb_miss_penalty: float = 8.0
    #: Issue FTQ prefetches (True = FDIP; False = no-FDIP ablation —
    #: branches are still predicted and penalties still charged).
    issue_prefetches: bool = True


class FDIPFrontEnd(SimComponent):
    """Decoupled front-end model bound to one trace.

    ``penalties`` is the public pending-penalty map (trace index →
    penalty kind): the simulator's commit loop consumes it via
    :meth:`penalty_at` (or reads the dict directly in its hot loop).
    """

    def __init__(self, params: FrontEndParams, stats):
        self.params = params
        self.stats = stats
        self.btb = BranchTargetBuffer(params.btb_entries, params.btb_assoc)
        self.tage = TagePredictor()
        self.ittage = ITTagePredictor()
        self.ras = ReturnAddressStack(params.ras_depth)
        self.hierarchy = None
        self.penalties: Dict[int, int] = {}
        self._ptr = 0          # next trace index the runahead will visit
        self._blocked_at = -1  # runahead waits until commit reaches this
        # Bound trace arrays (incl. the precomputed decode tables) and
        # bind-time constants: rebuilt wholesale by bind(), so resume
        # correctness never depends on snapshotting them.
        self._pc = self._nin = self._kind = self._taken = self._tgt = None  # lint: ephemeral
        self._b0 = self._b1 = self._term = None  # lint: ephemeral
        self._n = 0  # lint: ephemeral
        self._ftq = params.ftq_entries  # lint: ephemeral
        self._issue = False  # lint: ephemeral
        self._page = None  # lint: ephemeral
        self._tlb_pf = None  # lint: ephemeral

    def bind(self, trace, hierarchy, itlb=None,
             itlb_prefetch: bool = False) -> None:
        """Attach the front end to a trace and the memory hierarchy.

        With ``itlb_prefetch`` the runahead also probes the I-TLB for
        each enqueued region's page (non-stalling install; see
        :meth:`repro.memory.tlb.InstructionTLB.prefetch`).
        """
        self._pc = trace.pc
        self._nin = trace.ninstr
        self._kind = trace.kind
        self._taken = trace.taken
        self._tgt = trace.target
        self._b0 = trace.block0
        self._b1 = trace.block1
        self._term = trace.term
        self._page = trace.page
        self._n = len(trace)
        self.hierarchy = hierarchy
        self._ftq = self.params.ftq_entries
        self._issue = self.params.issue_prefetches and hierarchy is not None
        self._tlb_pf = (itlb.prefetch
                        if itlb_prefetch and itlb is not None else None)
        self._ptr = 0
        self._blocked_at = -1
        self.penalties.clear()

    def penalty_at(self, i: int) -> int:
        """Penalty kind charged when block ``i`` commits (consumed)."""
        if self.penalties:
            return self.penalties.pop(i, PEN_NONE)
        return PEN_NONE

    def advance(self, commit_i: int, now: float) -> None:
        """Advance the runahead pointer given the commit position."""
        if self._blocked_at >= 0:
            if commit_i < self._blocked_at:
                return
            self._blocked_at = -1
        limit = commit_i + self._ftq
        n = self._n
        if limit >= n:
            limit = n - 1
        ptr = self._ptr
        if ptr > limit:
            return
        b0_arr = self._b0
        b1_arr = self._b1
        page_arr = self._page
        kind_arr = self._kind
        issue = self._issue
        hier = self.hierarchy
        prefetch = hier.prefetch if issue else None
        tlb_pf = self._tlb_pf
        evaluate = self._evaluate
        origin_fdip = ORIGIN_FDIP
        pen_none = PEN_NONE
        # lint: hot-begin
        while ptr <= limit:
            i = ptr
            if issue and i > commit_i:
                b0 = b0_arr[i]
                b1 = b1_arr[i]
                prefetch(b0, now, origin_fdip, issue_index=commit_i)
                if b1 != b0:
                    prefetch(b1, now, origin_fdip, issue_index=commit_i)
                if tlb_pf is not None:
                    tlb_pf(page_arr[i], origin_fdip)
            ptr = i + 1
            # Non-branch blocks (the common case) have no terminator to
            # predict and can never stall the runahead.
            if kind_arr[i] and (outcome := evaluate(i)) != pen_none:
                self.penalties[i] = outcome
                self._blocked_at = i
                break
        # lint: hot-end
        self._ptr = ptr

    # ------------------------------------------------------------------
    # SimComponent protocol
    # ------------------------------------------------------------------
    _STATE_FIELDS = ("btb", "tage", "ittage", "ras", "penalties", "ptr",
                     "blocked_at")

    def reset(self) -> None:
        self.btb.reset()
        self.tage.reset()
        self.ittage.reset()
        self.ras.reset()
        self.penalties.clear()
        self._ptr = 0
        self._blocked_at = -1

    def state_dict(self) -> Dict[str, object]:
        return {
            "btb": self.btb.state_dict(),
            "tage": self.tage.state_dict(),
            "ittage": self.ittage.state_dict(),
            "ras": self.ras.state_dict(),
            "penalties": dict(self.penalties),
            "ptr": self._ptr,
            "blocked_at": self._blocked_at,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, self._STATE_FIELDS)
        self.btb.load_state_dict(state["btb"])
        self.tage.load_state_dict(state["tage"])
        self.ittage.load_state_dict(state["ittage"])
        self.ras.load_state_dict(state["ras"])
        self.penalties = dict(state["penalties"])
        self._ptr = state["ptr"]
        self._blocked_at = state["blocked_at"]

    def stats_snapshot(self) -> Dict[str, float]:
        out = {"runahead": float(self._ptr)}
        for name, unit in (("btb", self.btb), ("tage", self.tage),
                           ("ittage", self.ittage), ("ras", self.ras)):
            for key, value in unit.stats_snapshot().items():
                out[f"{name}.{key}"] = value
        return out

    # ------------------------------------------------------------------
    def _evaluate(self, i: int) -> int:
        """Run the branch-prediction unit over block ``i``'s terminator."""
        kind = self._kind[i]
        if kind == 0:  # BranchKind.NONE
            return PEN_NONE
        stats = self.stats
        term = self._term[i]
        target = self._tgt[i]
        if kind == _COND:
            taken = self._taken[i] != 0
            stats.cond_branches += 1
            correct = self.tage.predict_and_update(term, taken)
            if not correct:
                stats.cond_mispredicts += 1
                return PEN_MISPREDICT
            if taken:
                stats.btb_lookups += 1
                known = self.btb.lookup(term)
                self.btb.update(term, target)
                if known != target:
                    stats.btb_misses += 1
                    return PEN_BTB_MISS
            return PEN_NONE
        if kind == _JUMP or kind == _CALL:
            if kind == _CALL:
                self.ras.push(term + 4)
            stats.btb_lookups += 1
            known = self.btb.lookup(term)
            self.btb.update(term, target)
            if known != target:
                stats.btb_misses += 1
                return PEN_BTB_MISS
            return PEN_NONE
        if kind == _RET:
            stats.returns += 1
            predicted = self.ras.pop()
            if predicted != target:
                stats.ras_mispredicts += 1
                return PEN_MISPREDICT
            return PEN_NONE
        if kind == _ICALL or kind == _IJUMP:
            if kind == _ICALL:
                self.ras.push(term + 4)
            stats.indirect_branches += 1
            correct = self.ittage.predict_and_update(term, target)
            if not correct:
                stats.indirect_mispredicts += 1
                return PEN_MISPREDICT
            return PEN_NONE
        raise ValueError(f"unknown branch kind {kind} at trace index {i}")
