"""Decoupled front-end substrate: BTB, branch predictors, RAS, FDIP.

FDIP (fetch-directed instruction prefetching, §2.1) is the baseline of
every experiment in the paper: the branch-prediction unit runs ahead of
fetch, pushing predicted fetch targets into the FTQ, from which
prefetches are issued.  Its known weaknesses — BTB misses halt the
runahead, mispredictions flush it — are modelled explicitly, because the
gap they leave is exactly what the evaluated prefetchers compete to fill.
"""

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.tage import TagePredictor
from repro.frontend.ittage import ITTagePredictor
from repro.frontend.fdip import FDIPFrontEnd, FrontEndParams

__all__ = [
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "TagePredictor",
    "ITTagePredictor",
    "FDIPFrontEnd",
    "FrontEndParams",
]
