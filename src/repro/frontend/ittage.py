"""ITTAGE-lite indirect-target predictor.

A scaled-down ITTAGE (Seznec): a last-target base table plus tagged
tables storing full targets, indexed by global path history.  The paper
integrates ITTAGE into gem5 from Emissary's open-source implementation;
here the same tagged-geometric structure predicts the targets of
``ICALL``/``IJUMP`` terminators.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cpu.component import SimComponent, check_state_fields

DEFAULT_TABLES: Tuple[Tuple[int, int, int], ...] = (
    (512, 4, 9),
    (512, 12, 9),
    (512, 32, 10),
)


class ITTagePredictor(SimComponent):
    """Fused predict/update indirect target predictor."""

    def __init__(
        self,
        base_entries: int = 4096,
        tables: Sequence[Tuple[int, int, int]] = DEFAULT_TABLES,
    ):
        if base_entries & (base_entries - 1):
            raise ValueError("base_entries must be a power of 2")
        self.base_mask = base_entries - 1
        self.base_target: List[int] = [0] * base_entries
        self.tables = list(tables)
        self.tag: List[List[int]] = [[-1] * size for size, _, _ in self.tables]
        self.target: List[List[int]] = [[0] * size for size, _, _ in self.tables]
        self.conf: List[List[int]] = [[0] * size for size, _, _ in self.tables]
        self.phist = 0  # path history of target bits
        self.predictions = 0
        self.mispredictions = 0

    def _fold(self, value: int, bits: int, out_bits: int) -> int:
        value &= (1 << bits) - 1
        folded = 0
        while value:
            folded ^= value & ((1 << out_bits) - 1)
            value >>= out_bits
        return folded

    def _index_tag(self, pc: int, table: int) -> Tuple[int, int]:
        size, hist_len, tag_bits = self.tables[table]
        log_size = size.bit_length() - 1
        pc_h = pc >> 2
        idx = (pc_h ^ (pc_h >> 3)
               ^ self._fold(self.phist, hist_len * 4, log_size)) & (size - 1)
        tag = (pc_h ^ self._fold(self.phist, hist_len * 4, tag_bits)) & (
            (1 << tag_bits) - 1
        )
        return idx, tag

    def predict_and_update(self, pc: int, actual_target: int) -> bool:
        """Predict the target of indirect branch ``pc``; learn the actual
        target; return True when predicted correctly."""
        self.predictions += 1
        ntables = len(self.tables)
        idxs = [0] * ntables
        tags = [0] * ntables
        provider = -1
        for t in range(ntables - 1, -1, -1):
            idx, tg = self._index_tag(pc, t)
            idxs[t], tags[t] = idx, tg
            if provider < 0 and self.tag[t][idx] == tg:
                provider = t
        base_idx = (pc >> 2) & self.base_mask
        if provider >= 0:
            predicted = self.target[provider][idxs[provider]]
        else:
            predicted = self.base_target[base_idx]
        correct = predicted == actual_target

        # --- update ---
        if provider >= 0:
            i = idxs[provider]
            if correct:
                if self.conf[provider][i] < 3:
                    self.conf[provider][i] += 1
            elif self.conf[provider][i] > 0:
                self.conf[provider][i] -= 1
            else:
                self.target[provider][i] = actual_target
        self.base_target[base_idx] = actual_target
        if not correct:
            self.mispredictions += 1
            for t in range(provider + 1, ntables):
                i = idxs[t]
                if self.conf[t][i] == 0:
                    self.tag[t][i] = tags[t]
                    self.target[t][i] = actual_target
                    self.conf[t][i] = 1
                    break
        # Path history: 4 hashed target bits per step (mixing several
        # bit ranges so aligned targets still contribute entropy).
        step = (
            (actual_target >> 2)
            ^ (actual_target >> 8)
            ^ (actual_target >> 14)
        ) & 0xF
        self.phist = ((self.phist << 4) | step) & ((1 << 128) - 1)
        return correct

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions

    # ------------------------------------------------------------------
    # SimComponent protocol
    # ------------------------------------------------------------------
    _STATE_FIELDS = ("base_target", "tag", "target", "conf", "phist",
                     "predictions", "mispredictions")

    def reset(self) -> None:
        for i in range(len(self.base_target)):
            self.base_target[i] = 0
        for t, (size, _, _) in enumerate(self.tables):
            self.tag[t] = [-1] * size
            self.target[t] = [0] * size
            self.conf[t] = [0] * size
        self.phist = 0
        self.predictions = 0
        self.mispredictions = 0

    def state_dict(self) -> Dict[str, object]:
        return {
            "base_target": list(self.base_target),
            "tag": [list(t) for t in self.tag],
            "target": [list(t) for t in self.target],
            "conf": [list(t) for t in self.conf],
            "phist": self.phist,
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, self._STATE_FIELDS)
        if len(state["base_target"]) != len(self.base_target):
            raise ValueError("ITTAGE snapshot base size mismatch")
        if [len(t) for t in state["tag"]] != [s for s, _, _ in self.tables]:
            raise ValueError("ITTAGE snapshot table geometry mismatch")
        self.base_target = list(state["base_target"])
        self.tag = [list(t) for t in state["tag"]]
        self.target = [list(t) for t in state["target"]]
        self.conf = [list(t) for t in state["conf"]]
        self.phist = state["phist"]
        self.predictions = state["predictions"]
        self.mispredictions = state["mispredictions"]

    def stats_snapshot(self) -> Dict[str, float]:
        return {"accuracy": self.accuracy,
                "predictions": float(self.predictions)}

    def __repr__(self) -> str:
        return (
            f"ITTagePredictor(tables={len(self.tables)}, "
            f"acc={self.accuracy:.4f} over {self.predictions})"
        )
