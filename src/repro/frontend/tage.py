"""TAGE-lite conditional branch predictor.

A scaled-down L-TAGE (Seznec): a bimodal base table plus several
partially tagged tables indexed by geometrically growing global-history
lengths.  Prediction comes from the longest-history matching table;
allocation on mispredictions steals a not-useful entry from a longer
table.  The implementation fuses predict+update into one call — the
simulator evaluates every branch exactly once, in trace order.

Index/tag hashes fold the global history register into table-sized
chunks.  Folding the full history on every prediction is the simulator's
single hottest computation, so each (history length, output width) pair
keeps an incrementally maintained *folded register* — Seznec's circular
shift register: when the GHR shifts in outcome bit ``b`` and drops bit
``L-1``, the folded value is rotated by one with ``b`` XORed in at bit 0
and the dropped bit XORed out at position ``L mod B``.  The registers
are exactly equal to :meth:`TagePredictor._fold` of the current GHR at
all times (pinned by tests/test_frontend_units.py), and are rebuilt from
the GHR on ``load_state_dict`` so the snapshot schema is unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cpu.component import SimComponent, check_state_fields

# (table size, history length, tag bits) per tagged table.
DEFAULT_TABLES: Tuple[Tuple[int, int, int], ...] = (
    (4096, 8, 9),
    (4096, 16, 10),
    (4096, 32, 11),
    (4096, 64, 12),
)


class _Xorshift:
    """Tiny deterministic PRNG for allocation tie-breaking."""

    __slots__ = ("state",)

    def __init__(self, seed: int = 0x2545F491):
        self.state = seed or 1

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x


class TagePredictor(SimComponent):
    """Fused predict/update TAGE with a 2-bit bimodal base."""

    def __init__(
        self,
        bimodal_entries: int = 65536,
        tables: Sequence[Tuple[int, int, int]] = DEFAULT_TABLES,
    ):
        if bimodal_entries & (bimodal_entries - 1):
            raise ValueError("bimodal_entries must be a power of 2")
        self.bimodal_mask = bimodal_entries - 1
        self.bimodal: List[int] = [1] * bimodal_entries  # weakly not-taken
        self.tables = list(tables)
        for size, _, _ in self.tables:
            if size & (size - 1):
                raise ValueError("table sizes must be powers of 2")
        # Per tagged table: ctr (3-bit signed, -4..3), tag, useful (2-bit).
        self.ctr: List[List[int]] = [[0] * size for size, _, _ in self.tables]
        self.tag: List[List[int]] = [[-1] * size for size, _, _ in self.tables]
        self.useful: List[List[int]] = [[0] * size for size, _, _ in self.tables]
        # Per-table hash geometry: (size mask, log2 size, tag mask).
        self._geom: List[Tuple[int, int, int]] = []
        # Per-table folded-register update constants:
        # (L-1, pos/width/mask for the index fold, the tag fold, and the
        # tag-1 fold), where pos = L mod width.
        self._fold_meta: List[Tuple[int, ...]] = []
        for size, hist_len, tag_bits in self.tables:
            log_size = size.bit_length() - 1
            self._geom.append((size - 1, log_size, (1 << tag_bits) - 1))
            meta: List[int] = [hist_len - 1]
            for width in (log_size, tag_bits, tag_bits - 1):
                meta += [hist_len % width, width, (1 << width) - 1]
            self._fold_meta.append(tuple(meta))
        self.ghr = 0
        # Folded-history registers are derived from the GHR; reset() and
        # load_state_dict() recompute them via _rebuild_folds(), so
        # state_dict() deliberately omits them.
        self._f_idx: List[int] = []  # lint: ephemeral
        self._f_tag: List[int] = []  # lint: ephemeral
        self._f_tag2: List[int] = []  # lint: ephemeral
        self._rebuild_folds()
        self._rng = _Xorshift()
        self.predictions = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    def _fold(self, value: int, bits: int, out_bits: int) -> int:
        value &= (1 << bits) - 1
        folded = 0
        while value:
            folded ^= value & ((1 << out_bits) - 1)
            value >>= out_bits
        return folded

    def _rebuild_folds(self) -> None:
        """Recompute every folded register directly from the GHR."""
        ghr = self.ghr
        self._f_idx = [self._fold(ghr, h, s.bit_length() - 1)
                       for s, h, _ in self.tables]
        self._f_tag = [self._fold(ghr, h, tb) for _, h, tb in self.tables]
        self._f_tag2 = [self._fold(ghr, h, tb - 1) for _, h, tb in self.tables]

    def _index_tag(self, pc: int, table: int) -> Tuple[int, int]:
        """Reference index/tag hash (the folded registers reproduce it)."""
        size, hist_len, tag_bits = self.tables[table]
        log_size = size.bit_length() - 1
        pc_h = pc >> 2
        idx = (pc_h ^ (pc_h >> log_size) ^ self._fold(self.ghr, hist_len, log_size)) & (size - 1)
        tag = (pc_h ^ self._fold(self.ghr, hist_len, tag_bits)
               ^ (self._fold(self.ghr, hist_len, tag_bits - 1) << 1)) & ((1 << tag_bits) - 1)
        return idx, tag

    # ------------------------------------------------------------------
    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch ``pc``, learn outcome ``taken``; return
        True when the prediction was correct."""
        self.predictions += 1
        geom = self._geom
        f_idx = self._f_idx
        f_tag = self._f_tag
        f_tag2 = self._f_tag2
        tag_tables = self.tag
        ctr_tables = self.ctr
        ntables = len(geom)
        idxs = [0] * ntables
        tags = [0] * ntables
        provider = -1
        alt = -1
        pc_h = pc >> 2
        for t in range(ntables - 1, -1, -1):
            size_mask, log_size, tag_mask = geom[t]
            idx = (pc_h ^ (pc_h >> log_size) ^ f_idx[t]) & size_mask
            tg = (pc_h ^ f_tag[t] ^ (f_tag2[t] << 1)) & tag_mask
            idxs[t] = idx
            tags[t] = tg
            if tag_tables[t][idx] == tg:
                if provider < 0:
                    provider = t
                elif alt < 0:
                    alt = t
        bim_idx = pc_h & self.bimodal_mask
        bim_pred = self.bimodal[bim_idx] >= 2
        if provider >= 0:
            pred = ctr_tables[provider][idxs[provider]] >= 0
            alt_pred = (
                ctr_tables[alt][idxs[alt]] >= 0 if alt >= 0 else bim_pred
            )
        else:
            pred = alt_pred = bim_pred
        correct = pred == taken

        # --- update ---
        if provider >= 0:
            ctr = ctr_tables[provider]
            i = idxs[provider]
            if taken:
                if ctr[i] < 3:
                    ctr[i] += 1
            elif ctr[i] > -4:
                ctr[i] -= 1
            if pred != alt_pred:
                u = self.useful[provider]
                if pred == taken:
                    if u[i] < 3:
                        u[i] += 1
                elif u[i] > 0:
                    u[i] -= 1
        else:
            bim = self.bimodal
            if taken:
                if bim[bim_idx] < 3:
                    bim[bim_idx] += 1
            elif bim[bim_idx] > 0:
                bim[bim_idx] -= 1
        if not correct:
            self.mispredictions += 1
            self._allocate(provider, idxs, tags, taken)
        # --- GHR shift + incremental folded-register update ---
        b = 1 if taken else 0
        ghr = self.ghr
        for t in range(ntables):
            (lm1, p0, w0, m0, p1, w1, m1, p2, w2, m2) = self._fold_meta[t]
            o = (ghr >> lm1) & 1
            f = (f_idx[t] << 1) | b
            if o:
                f ^= 1 << p0
            f ^= f >> w0
            f_idx[t] = f & m0
            f = (f_tag[t] << 1) | b
            if o:
                f ^= 1 << p1
            f ^= f >> w1
            f_tag[t] = f & m1
            f = (f_tag2[t] << 1) | b
            if o:
                f ^= 1 << p2
            f ^= f >> w2
            f_tag2[t] = f & m2
        self.ghr = ((ghr << 1) | b) & ((1 << 64) - 1)
        return correct

    def _allocate(self, provider: int, idxs: List[int], tags: List[int],
                  taken: bool) -> None:
        start = provider + 1
        ntables = len(self.tables)
        if start >= ntables:
            return
        # Prefer the first longer table with a not-useful entry; decay
        # usefulness along the way if none is free (Seznec's policy,
        # simplified).
        candidates = [
            t for t in range(start, ntables) if self.useful[t][idxs[t]] == 0
        ]
        if not candidates:
            for t in range(start, ntables):
                if self.useful[t][idxs[t]] > 0:
                    self.useful[t][idxs[t]] -= 1
            return
        pick = candidates[0]
        if len(candidates) > 1 and self._rng.next() & 1:
            pick = candidates[1]
        i = idxs[pick]
        self.tag[pick][i] = tags[pick]
        self.ctr[pick][i] = 0 if taken else -1
        self.useful[pick][i] = 0

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions

    # ------------------------------------------------------------------
    # SimComponent protocol
    # ------------------------------------------------------------------
    _STATE_FIELDS = ("bimodal", "ctr", "tag", "useful", "ghr", "rng",
                     "predictions", "mispredictions")

    def reset(self) -> None:
        for i in range(len(self.bimodal)):
            self.bimodal[i] = 1
        for t, (size, _, _) in enumerate(self.tables):
            self.ctr[t] = [0] * size
            self.tag[t] = [-1] * size
            self.useful[t] = [0] * size
        self.ghr = 0
        self._rebuild_folds()
        self._rng = _Xorshift()
        self.predictions = 0
        self.mispredictions = 0

    def state_dict(self) -> Dict[str, object]:
        return {
            "bimodal": list(self.bimodal),
            "ctr": [list(t) for t in self.ctr],
            "tag": [list(t) for t in self.tag],
            "useful": [list(t) for t in self.useful],
            "ghr": self.ghr,
            "rng": self._rng.state,
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, self._STATE_FIELDS)
        if len(state["bimodal"]) != len(self.bimodal):
            raise ValueError("TAGE snapshot bimodal size mismatch")
        if [len(t) for t in state["ctr"]] != [s for s, _, _ in self.tables]:
            raise ValueError("TAGE snapshot table geometry mismatch")
        self.bimodal = list(state["bimodal"])
        self.ctr = [list(t) for t in state["ctr"]]
        self.tag = [list(t) for t in state["tag"]]
        self.useful = [list(t) for t in state["useful"]]
        self.ghr = state["ghr"]
        self._rebuild_folds()
        self._rng.state = state["rng"]
        self.predictions = state["predictions"]
        self.mispredictions = state["mispredictions"]

    def stats_snapshot(self) -> Dict[str, float]:
        return {"accuracy": self.accuracy,
                "predictions": float(self.predictions)}

    def __repr__(self) -> str:
        return (
            f"TagePredictor(tables={len(self.tables)}, "
            f"acc={self.accuracy:.4f} over {self.predictions})"
        )
