"""Replacement-policy × prefetcher cross-product study.

The paper evaluates every prefetcher on a fixed LRU cache/TLB
substrate; Jamet et al. (arXiv 2605.12433) show prefetched-line-aware
replacement and I-TLB prefetching act as multipliers on *any*
instruction prefetcher.  The functions here sweep the cross-product of
:data:`~repro.prefetchers.registry.PREFETCHER_NAMES` ×
:data:`~repro.memory.policies.POLICY_NAMES` and read the split
hit/eviction counters the policy refactor added:

* :func:`fig20_policy_grid` — per (workload × prefetcher × policy):
  IPC, L1-I MPKI, prefetch-hit vs demand-hit rates, unused-prefetch
  evictions, plus ``ipc_vs_lru`` normalized to the same prefetcher on
  the LRU substrate;
* :func:`tab06_policy_summary` — per (prefetcher × policy) across
  workloads: geomean IPC speedup over LRU, mean prefetch-hit rate and
  unused-prefetch evictions per kilo-instruction;
* :func:`fig21_itlb_prefetch` — the I-TLB prefetch path's miss
  reduction per workload (``core.itlb_prefetch`` off vs on).

Everything routes through :func:`repro.experiments.sweep.sweep`, so
grids are parallel, fault-tolerant, disk-cached, and bit-identical
between serial and ``jobs=N`` runs; the policy rides in each point's
``overrides`` and therefore lands in the cache key automatically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import geomean
from repro.experiments.runner import REPRESENTATIVE_WORKLOADS
from repro.experiments.sweep import SweepPoint, SweepResult, sweep
from repro.memory.policies import POLICY_NAMES
from repro.prefetchers.registry import prefetcher_policy_grid

#: The cross-product's default prefetcher axis: the FDIP baseline, a
#: representative table-based prefetcher, and the paper's HP.
POLICY_PREFETCHERS = ("fdip", "eip", "hierarchical")


def policy_overrides(policy: str, itlb_prefetch: bool = False) -> dict:
    """Config overrides applying ``policy`` to the caches *and* the
    I-TLB (one knob per point keeps the cross-product square)."""
    return {
        "hierarchy.policy": policy,
        "core.itlb_policy": policy,
        "core.itlb_prefetch": itlb_prefetch,
    }


def _cell(result: SweepResult) -> Dict[str, float]:
    stats = result.stats
    instr = stats.instructions
    kilo = instr / 1000.0 if instr else 0.0
    return {
        "ipc": stats.ipc,
        "l1i_mpki": stats.l1i_mpki,
        "demand_hits": float(stats.l1i_demand_hits),
        "prefetch_hits": float(stats.l1i_prefetch_hits),
        "prefetch_hit_rate": stats.prefetch_hit_rate,
        "unused_pf_evictions": float(stats.unused_prefetch_evictions),
        "unused_pf_pki": (stats.unused_prefetch_evictions / kilo
                          if kilo else 0.0),
        "itlb_mpki": stats.itlb_mpki,
        "itlb_pf_probes": float(stats.itlb_pf_probes),
        "itlb_pf_installs": float(stats.itlb_pf_installs),
        "itlb_pf_hits": float(stats.itlb_pf_hits),
    }


def policy_sweep(
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    prefetchers: Sequence[str] = POLICY_PREFETCHERS,
    policies: Sequence[str] = POLICY_NAMES,
    scale: str = "bench",
    jobs: int = 1,
    use_cache: bool = True,
    progress=None,
    itlb_prefetch: bool = False,
    **common,
) -> Dict[str, Dict[Tuple[str, str], SweepResult]]:
    """Run the cross-product; returns
    ``{workload: {(prefetcher, policy): SweepResult}}``.

    ``"fdip"`` names the baseline (no evaluated prefetcher) — unlike
    :func:`repro.experiments.sweep.grid` it is an explicit axis value
    here, because the baseline changes per policy too.
    """
    pairs = prefetcher_policy_grid(prefetchers, policies)
    points = []
    for w in workloads:
        for pf, pol in pairs:
            points.append(SweepPoint(
                w, None if pf == "fdip" else pf, scale=scale,
                overrides=policy_overrides(pol, itlb_prefetch), **common,
            ))
    report = sweep(points, jobs=jobs, use_cache=use_cache,
                   progress=progress)
    out: Dict[str, Dict[Tuple[str, str], SweepResult]] = {}
    for result in report:
        point = result.point
        policy = point.overrides["hierarchy.policy"]
        key = (point.prefetcher or "fdip", policy)
        out.setdefault(point.workload, {})[key] = result
    return out


# ----------------------------------------------------------------------
# Figure 20 — the policy × prefetcher grid
# ----------------------------------------------------------------------
def fig20_policy_grid(
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    prefetchers: Sequence[str] = POLICY_PREFETCHERS,
    policies: Sequence[str] = POLICY_NAMES,
    scale: str = "bench",
    jobs: int = 1,
    **common,
) -> Dict[str, Dict[str, Dict[str, Dict[str, float]]]]:
    """``{workload: {prefetcher: {policy: metrics}}}``.

    Per cell: IPC, MPKI, the split hit counters and unused-prefetch
    evictions, plus ``ipc_vs_lru`` — the cell's IPC relative to the
    same (workload, prefetcher) on the LRU substrate (> 1.0 means the
    policy helps that prefetcher).
    """
    raw = policy_sweep(workloads, prefetchers, policies, scale=scale,
                       jobs=jobs, **common)
    out: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = {}
    for workload, row in raw.items():
        grid_row: Dict[str, Dict[str, Dict[str, float]]] = {}
        for (pf, policy), result in row.items():
            grid_row.setdefault(pf, {})[policy] = _cell(result)
        for pf, cells in grid_row.items():
            base = cells.get("lru")
            for cell in cells.values():
                cell["ipc_vs_lru"] = (cell["ipc"] / base["ipc"]
                                      if base and base["ipc"] else 0.0)
        out[workload] = grid_row
    return out


# ----------------------------------------------------------------------
# Table 6 — policy scorecard per prefetcher
# ----------------------------------------------------------------------
def tab06_policy_summary(
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    prefetchers: Sequence[str] = POLICY_PREFETCHERS,
    policies: Sequence[str] = POLICY_NAMES,
    scale: str = "bench",
    jobs: int = 1,
    **common,
) -> List[Tuple[str, str, float, float, float]]:
    """Rows of ``(prefetcher, policy, ipc_speedup_vs_lru,
    mean_prefetch_hit_rate, mean_unused_pf_pki)``.

    The speedup is the geomean of per-workload ``ipc_vs_lru``; the
    other two columns are plain means across the workloads.
    """
    cells = fig20_policy_grid(workloads, prefetchers, policies,
                              scale=scale, jobs=jobs, **common)
    rows: List[Tuple[str, str, float, float, float]] = []
    for pf in prefetchers:
        for policy in policies:
            speedups, hit_rates, unused = [], [], []
            for workload in workloads:
                cell = cells[workload][pf][policy]
                if cell["ipc_vs_lru"]:
                    speedups.append(cell["ipc_vs_lru"])
                hit_rates.append(cell["prefetch_hit_rate"])
                unused.append(cell["unused_pf_pki"])
            rows.append((
                pf,
                policy,
                geomean(speedups) if speedups else 0.0,
                sum(hit_rates) / len(hit_rates) if hit_rates else 0.0,
                sum(unused) / len(unused) if unused else 0.0,
            ))
    return rows


# ----------------------------------------------------------------------
# Figure 21 — I-TLB prefetch-path miss reduction
# ----------------------------------------------------------------------
def fig21_itlb_prefetch(
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    prefetcher: Optional[str] = "hierarchical",
    policy: str = "lru",
    scale: str = "bench",
    jobs: int = 1,
    use_cache: bool = True,
    **common,
) -> Dict[str, Dict[str, float]]:
    """Per workload: I-TLB MPKI with the prefetch path off vs on.

    ``reduction`` is the fractional miss reduction (positive when
    prefetched translations cover demand walks); ``pf_installs`` and
    ``pf_hits`` report the path's traffic and usefulness.
    """
    pf_name = None if prefetcher in (None, "fdip") else prefetcher
    points = []
    for enabled in (False, True):
        for w in workloads:
            points.append(SweepPoint(
                w, pf_name, scale=scale,
                overrides=policy_overrides(policy, enabled), **common,
            ))
    report = sweep(points, jobs=jobs, use_cache=use_cache, progress=None)
    by_key = {(r.point.workload,
               r.point.overrides["core.itlb_prefetch"]): r
              for r in report}
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads:
        off = by_key[(w, False)].stats
        on = by_key[(w, True)].stats
        out[w] = {
            "itlb_mpki_off": off.itlb_mpki,
            "itlb_mpki_on": on.itlb_mpki,
            "reduction": (1.0 - on.itlb_misses / off.itlb_misses
                          if off.itlb_misses else 0.0),
            "pf_probes": float(on.itlb_pf_probes),
            "pf_installs": float(on.itlb_pf_installs),
            "pf_hits": float(on.itlb_pf_hits),
        }
    return out
