"""Performance regression harness: named simulator microbenchmarks.

Each microbenchmark pins one workload point (or synthetic driver) and
times it over several repeats, emitting a ``BENCH_<name>.json`` artifact
with the median/IQR wall-clock, throughput, a per-phase timing
breakdown (warmup vs. measure, plus per-chunk wall times sampled
through the interval probe bus), and a digest of the simulation
statistics so timing work can prove it did not change results.

Benchmarks
----------

``hot_loop``
    The FDIP-only commit loop — the simulator's end-to-end hot path.
``hierarchy``
    The cache/TLB hierarchy driven by a synthetic demand/prefetch
    address stream (no trace, no front end).
``hierarchy_policy``
    The same synthetic stream under the ``pf_aware`` replacement
    policy — the cost of the policy dispatch plus its victim scan.
``hp_replay``
    The full Hierarchical Prefetcher record/replay/metadata path.
``sweep_cache``
    The persistent sweep cache's disk-hit path (deserialize + verify).

Comparison
----------

:func:`compare_dirs` diffs two artifact directories with a noise-aware
threshold: a benchmark regresses when its new median exceeds the base
median by more than ``max_regression`` *plus* the combined IQR fraction
of the two runs.  Every artifact embeds a ``calibration_seconds``
measurement of a fixed pure-Python spin loop taken in the same process;
when both sides carry one, medians are normalized by it first, which
cancels most machine-speed difference between the runner that committed
the baseline and the runner executing CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import statistics
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.errors import ExperimentError, InvalidConfigError

ARTIFACT_PREFIX = "BENCH_"
ARTIFACT_SCHEMA = 1

#: Pinned workload point shared by the trace-driven benchmarks.
BENCH_WORKLOAD = "mysql_sibench"
BENCH_SEED = 1

BENCHMARK_NAMES = ("hot_loop", "hierarchy", "hierarchy_policy",
                   "hp_replay", "sweep_cache")


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
def calibrate(loops: int = 2_000_000) -> float:
    """Time a fixed pure-Python spin loop (seconds).

    Embedded in every artifact as a machine-speed yardstick: comparing
    ``median_seconds / calibration_seconds`` across machines cancels
    most of the raw clock-speed difference.
    """
    t0 = time.perf_counter()
    acc = 0
    for i in range(loops):
        acc += i & 1023
    _ = acc
    return time.perf_counter() - t0


def _digest(state: dict) -> str:
    blob = json.dumps(state, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _median_iqr(xs: Sequence[float]) -> Tuple[float, float]:
    med = statistics.median(xs)
    if len(xs) < 2:
        return med, 0.0
    qs = statistics.quantiles(xs, n=4, method="inclusive")
    return med, qs[2] - qs[0]


def _artifact(name: str, quick: bool, seconds: List[float], work: int,
              work_unit: str, timings: Dict[str, object],
              stats_digest: str, meta: Dict[str, object],
              calibration: float) -> dict:
    median, iqr = _median_iqr(seconds)
    return {
        "schema": ARTIFACT_SCHEMA,
        "name": name,
        "quick": quick,
        "repeats": len(seconds),
        "seconds": seconds,
        "median_seconds": median,
        "iqr_seconds": iqr,
        "work": {"amount": work, "unit": work_unit},
        "throughput": {
            "per_second": work / median if median > 0 else 0.0,
            "unit": f"{work_unit}/s",
        },
        "timings": timings,
        "stats_digest": stats_digest,
        "calibration_seconds": calibration,
        **meta,
    }


# ----------------------------------------------------------------------
# Trace-driven benchmarks
# ----------------------------------------------------------------------
def _timed_sim(prefetcher: Optional[str], scale: str,
               probe_interval: int) -> Tuple[float, float, float,
                                             List[float], object]:
    """One cold simulator run; returns (build, warmup, measure seconds,
    per-chunk wall times from the probe bus, final SimStats)."""
    from repro.cpu.simulator import FrontEndSimulator
    from repro.prefetchers import make_prefetcher
    from repro.workloads.cache import get_trace

    t0 = time.perf_counter()
    trace = get_trace(BENCH_WORKLOAD, scale=scale, seed=BENCH_SEED)
    t_build = time.perf_counter() - t0

    pf = make_prefetcher(prefetcher) if prefetcher else None
    sim = FrontEndSimulator(prefetcher=pf, probe_interval=probe_interval)
    chunks: List[float] = []
    last = [0.0]

    def _chunk_timer(_sim, _sample) -> None:
        now = time.perf_counter()
        chunks.append(now - last[0])
        last[0] = now

    sim.probes.subscribe(_chunk_timer)
    t0 = time.perf_counter()
    sim.warmup(trace)
    t1 = time.perf_counter()
    last[0] = t1
    stats = sim.measure()
    t_meas = time.perf_counter() - t1
    return t_build, t1 - t0, t_meas, chunks, stats


def _run_trace_bench(name: str, prefetcher: Optional[str], quick: bool,
                     repeats: int, calibration: float) -> dict:
    scale = "tiny" if quick else "bench"
    probe_interval = 20_000 if quick else 100_000
    seconds: List[float] = []
    timings: Dict[str, object] = {}
    stats_digest = ""
    work = 0
    for r in range(repeats):
        build, warm, meas, chunks, stats = _timed_sim(
            prefetcher, scale, probe_interval
        )
        seconds.append(warm + meas)
        if r == 0:
            work = int(stats.instructions)
            stats_digest = _digest(stats.state_dict())
            timings = {
                "trace_build": build,
                "warmup": warm,
                "measure": meas,
                "probe_chunks": chunks,
                "probe_interval": probe_interval,
            }
    meta = {
        "workload": BENCH_WORKLOAD,
        "scale": scale,
        "seed": BENCH_SEED,
        "prefetcher": prefetcher or "fdip",
    }
    return _artifact(name, quick, seconds, work, "instructions", timings,
                     stats_digest, meta, calibration)


def bench_hot_loop(quick: bool, repeats: int, calibration: float) -> dict:
    """FDIP-only commit loop: the end-to-end simulator hot path."""
    return _run_trace_bench("hot_loop", None, quick, repeats, calibration)


def bench_hp_replay(quick: bool, repeats: int, calibration: float) -> dict:
    """Hierarchical Prefetcher record/replay/metadata path."""
    return _run_trace_bench("hp_replay", "hierarchical", quick, repeats,
                            calibration)


# ----------------------------------------------------------------------
# Synthetic hierarchy benchmark
# ----------------------------------------------------------------------
def _run_hierarchy_bench(name: str, policy: str, quick: bool,
                         repeats: int, calibration: float) -> dict:
    from repro.cpu.stats import SimStats
    from repro.memory.cache import ORIGIN_PF
    from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy

    accesses = 200_000 if quick else 1_000_000
    seconds: List[float] = []
    stats_digest = ""
    for r in range(repeats):
        stats = SimStats()
        hier = MemoryHierarchy(HierarchyParams(policy=policy), stats)
        state = 0x9E3779B9
        block = 0
        now = 0.0
        t0 = time.perf_counter()
        demand = hier.demand_fetch
        prefetch = hier.prefetch
        for i in range(accesses):
            # xorshift32 every 8th access -> jump to a new region;
            # otherwise walk sequentially (typical fetch behaviour).
            if i & 7 == 0:
                state ^= (state << 13) & 0xFFFFFFFF
                state ^= state >> 17
                state ^= (state << 5) & 0xFFFFFFFF
                block = state & 0x3FFF  # 16K-block (1 MiB) working set
                prefetch(block + 2, now, ORIGIN_PF)
            else:
                block += 1
            now += 1.0 + demand(block, now, i)
        hier.drain(now)
        seconds.append(time.perf_counter() - t0)
        if r == 0:
            stats_digest = _digest(stats.state_dict())
    timings = {"accesses": accesses, "policy": policy}
    meta = {"workload": "synthetic", "scale": "quick" if quick else "bench",
            "seed": 0, "prefetcher": "synthetic"}
    return _artifact(name, quick, seconds, accesses, "accesses",
                     timings, stats_digest, meta, calibration)


def bench_hierarchy(quick: bool, repeats: int, calibration: float) -> dict:
    """Drive the cache/TLB hierarchy with a synthetic address stream.

    A deterministic xorshift stream over a working set larger than the
    L2 mixes sequential runs (L1 hits), region jumps (L2/LLC traffic)
    and interleaved prefetches — exercising lookup/insert/eviction and
    the asynchronous fill heap without any front end.  Runs the default
    ``lru`` policy: its timing fences the policy-refactor dispatch cost
    against the pre-refactor baseline.
    """
    return _run_hierarchy_bench("hierarchy", "lru", quick, repeats,
                                calibration)


def bench_hierarchy_policy(quick: bool, repeats: int,
                           calibration: float) -> dict:
    """The synthetic hierarchy stream under the ``pf_aware`` policy.

    Times the most expensive policy hook — distal insertion plus the
    unused-prefetched-victim scan on every eviction — so a policy
    implementation that allocates or scans pathologically shows up as a
    bench regression, not just a lint warning.
    """
    return _run_hierarchy_bench("hierarchy_policy", "pf_aware", quick,
                                repeats, calibration)


# ----------------------------------------------------------------------
# Sweep-cache hit-path benchmark
# ----------------------------------------------------------------------
def bench_sweep_cache(quick: bool, repeats: int, calibration: float) -> dict:
    """Time the disk-cache hit path of the sweep engine.

    Populates a temporary on-disk cache with one tiny point, then times
    repeated cold (in-process-cache-cleared) loads — deserialization,
    schema/key verification, and promotion into the memory layer.
    """
    from repro.experiments import diskcache, runner

    lookups = 5 if quick else 20
    seconds: List[float] = []
    stats_digest = ""
    env_prev = os.environ.get("REPRO_DISK_CACHE")
    os.environ["REPRO_DISK_CACHE"] = "1"
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        prev_root = diskcache.set_cache_dir(tmp)
        try:
            runner.clear_run_cache()
            stats, _ = runner.run_prefetcher(
                BENCH_WORKLOAD, None, scale="tiny", seed=BENCH_SEED
            )
            stats_digest = _digest(stats.state_dict())
            key = runner.cache_key(BENCH_WORKLOAD, None, scale="tiny",
                                   seed=BENCH_SEED)
            for _ in range(repeats):
                t0 = time.perf_counter()
                for _ in range(lookups):
                    runner.clear_run_cache()  # force the disk layer
                    hit = runner.peek_cached(key)
                    if hit is None or hit[2] != "disk":
                        raise ExperimentError(
                            "sweep_cache bench: expected a disk hit"
                        )
                seconds.append(time.perf_counter() - t0)
        finally:
            runner.clear_run_cache()
            diskcache.set_cache_dir(prev_root)
            if env_prev is None:
                os.environ.pop("REPRO_DISK_CACHE", None)
            else:
                os.environ["REPRO_DISK_CACHE"] = env_prev
    timings = {"lookups_per_repeat": lookups}
    meta = {"workload": BENCH_WORKLOAD, "scale": "tiny", "seed": BENCH_SEED,
            "prefetcher": "fdip"}
    return _artifact("sweep_cache", quick, seconds, lookups, "loads",
                     timings, stats_digest, meta, calibration)


_RUNNERS = {
    "hot_loop": bench_hot_loop,
    "hierarchy": bench_hierarchy,
    "hierarchy_policy": bench_hierarchy_policy,
    "hp_replay": bench_hp_replay,
    "sweep_cache": bench_sweep_cache,
}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_benchmarks(
    names: Optional[Sequence[str]] = None,
    quick: bool = False,
    repeats: Optional[int] = None,
    out_dir: Optional[os.PathLike] = None,
    progress=None,
) -> List[dict]:
    """Run the named benchmarks (default: all); write one
    ``BENCH_<name>.json`` per benchmark into ``out_dir`` when given.
    Returns the artifact dicts."""
    names = list(names) if names else list(BENCHMARK_NAMES)
    unknown = [n for n in names if n not in _RUNNERS]
    if unknown:
        raise InvalidConfigError(f"unknown benchmark(s): {', '.join(unknown)}")
    if repeats is None:
        repeats = 3 if quick else 5
    if repeats < 1:
        raise InvalidConfigError("repeats must be >= 1")
    calibration = calibrate()
    artifacts = []
    for name in names:
        if progress:
            progress(f"bench {name} ({'quick' if quick else 'full'}, "
                     f"{repeats} repeats) ...")
        art = _RUNNERS[name](quick, repeats, calibration)
        artifacts.append(art)
        if progress:
            progress(
                f"  {name}: median {art['median_seconds']:.3f}s "
                f"(IQR {art['iqr_seconds']:.3f}s), "
                f"{art['throughput']['per_second']:,.0f} "
                f"{art['throughput']['unit']}"
            )
        if out_dir is not None:
            write_artifact(art, out_dir)
    return artifacts


def write_artifact(artifact: dict, out_dir: os.PathLike) -> Path:
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{ARTIFACT_PREFIX}{artifact['name']}.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path


def load_artifacts(
    directory: os.PathLike,
    on_error: Optional[Callable[[Path, Exception], None]] = None,
) -> Dict[str, dict]:
    """Load every ``BENCH_*.json`` in ``directory``, keyed by name.

    A truncated or otherwise undecodable artifact is skipped (reported
    through ``on_error`` when given) instead of aborting the whole
    comparison — one torn file must not discard an entire benchmark
    run's worth of good artifacts.
    """
    out: Dict[str, dict] = {}
    for path in sorted(Path(directory).glob(f"{ARTIFACT_PREFIX}*.json")):
        try:
            art = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            if on_error is not None:
                on_error(path, exc)
            continue
        if not isinstance(art, dict) or art.get("schema") != ARTIFACT_SCHEMA:
            continue
        name = art.get("name")
        if not isinstance(name, str):
            if on_error is not None:
                on_error(path, ValueError("artifact has no 'name'"))
            continue
        out[name] = art
    return out


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def parse_regression(text: str) -> float:
    """Parse a ``--max-regression`` value: ``"15%"`` or ``"0.15"``."""
    text = text.strip()
    if text.endswith("%"):
        value = float(text[:-1]) / 100.0
    else:
        value = float(text)
    if value < 0:
        raise InvalidConfigError("max regression must be >= 0")
    return value


def compare_artifacts(base: dict, new: dict,
                      max_regression: float) -> Tuple[float, float, bool]:
    """Compare two artifacts of the same benchmark.

    Returns ``(delta, threshold, regressed)`` where ``delta`` is the
    fractional median change (+0.30 = 30% slower).  The threshold is
    ``max_regression`` widened by half the combined IQR fraction of the
    two runs, so noisy benchmarks need a proportionally larger slowdown
    to fail.  Medians are normalized by each side's calibration loop
    when both artifacts carry one.
    """
    base_med = float(base["median_seconds"])
    new_med = float(new["median_seconds"])
    base_cal = float(base.get("calibration_seconds") or 0.0)
    new_cal = float(new.get("calibration_seconds") or 0.0)
    if base_cal > 0 and new_cal > 0:
        base_med /= base_cal
        new_med /= new_cal
        noise = (float(base["iqr_seconds"]) / base_cal
                 + float(new["iqr_seconds"]) / new_cal)
    else:
        noise = float(base["iqr_seconds"]) + float(new["iqr_seconds"])
    if base_med <= 0:
        return 0.0, max_regression, False
    delta = new_med / base_med - 1.0
    threshold = max_regression + 0.5 * noise / base_med
    return delta, threshold, delta > threshold


def compare_dirs(base_dir: os.PathLike, new_dir: os.PathLike,
                 max_regression: float) -> Tuple[List[List[str]], List[str]]:
    """Compare two artifact directories.

    Returns ``(rows, problems)``: a display row per benchmark present in
    the base set, and a list of human-readable regression/missing/
    corrupt-artifact messages (empty = pass).
    """
    problems: List[str] = []

    def _note_bad(path: Path, exc: Exception) -> None:
        problems.append(f"{path.name}: unreadable artifact ({exc})")

    base_set = load_artifacts(base_dir, on_error=_note_bad)
    new_set = load_artifacts(new_dir, on_error=_note_bad)
    if not base_set:
        raise InvalidConfigError(f"no {ARTIFACT_PREFIX}*.json artifacts "
                         f"in {base_dir}")
    rows: List[List[str]] = []
    for name, base in sorted(base_set.items()):
        new = new_set.get(name)
        if new is None:
            rows.append([name, f"{base['median_seconds']:.3f}", "-", "-",
                         "-", "MISSING"])
            problems.append(f"{name}: missing from new artifact set")
            continue
        if (base.get("quick"), base.get("workload"), base.get("scale")) != \
                (new.get("quick"), new.get("workload"), new.get("scale")):
            rows.append([name, "-", "-", "-", "-", "MISMATCH"])
            problems.append(
                f"{name}: artifacts are not comparable "
                f"(quick/workload/scale differ)"
            )
            continue
        delta, threshold, regressed = compare_artifacts(
            base, new, max_regression
        )
        status = "REGRESSED" if regressed else "ok"
        rows.append([
            name,
            f"{base['median_seconds']:.3f}",
            f"{new['median_seconds']:.3f}",
            f"{delta:+.1%}",
            f"{threshold:.1%}",
            status,
        ])
        if regressed:
            problems.append(
                f"{name}: {delta:+.1%} vs threshold {threshold:.1%}"
            )
    return rows, problems
