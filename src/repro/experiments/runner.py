"""Shared simulation runner with layered result caching.

The paper's evaluation methodology (§6.1): warm up, then measure, with
every prefetcher running on top of FDIP and compared to the plain FDIP
baseline on the same workload.  ``run_prefetcher`` handles trace
memoization, config overrides, and caching so that multi-figure
benchmarks re-use each simulation.

Caching is two-level:

* an in-process dict (``_CACHE``) keyed by the full run key, so code
  holding a result keeps getting the *same object* back;
* a content-addressed on-disk store (:mod:`repro.experiments.diskcache`)
  keyed by SHA-256 of the same key, so fresh processes — a second
  benchmark invocation, or the workers of a parallel
  :func:`repro.experiments.sweep.sweep` — skip finished simulations.

The key includes every input that can change the result: workload,
scale, prefetcher and its kwargs, config overrides, miss tracking,
warmup fraction, trace seed, and a fingerprint of the default
:class:`~repro.cpu.config.MachineConfig` plus the payload schema
version (so cached results are invalidated when the model or the
serialization format changes).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.metrics import PrefetchReport, compare_run
from repro.cpu import MachineConfig
from repro.cpu.config import DEFAULT_WARMUP
from repro.cpu.stats import SimStats
from repro.experiments import diskcache
from repro.prefetchers import make_prefetcher
from repro.workloads.cache import get_trace

__all__ = [
    "DEFAULT_WARMUP",  # re-exported from repro.cpu.config (the source)
    "REPRESENTATIVE_WORKLOADS", "RunCacheStats", "cache_key",
    "run_prefetcher", "run_baseline", "compare_all",
    "perfect_l1i_speedup", "run_cache_stats", "reset_run_cache_stats",
    "record_source", "seed_cache", "peek_cached", "clear_run_cache",
]

#: Subset used by parameter sweeps where running all 11 workloads per
#: point would be prohibitive: two web stacks and two databases.
REPRESENTATIVE_WORKLOADS = (
    "beego",
    "caddy",
    "mysql_sysbench",
    "tidb_tpcc",
)

_CACHE: Dict[str, Tuple[SimStats, Optional[dict]]] = {}

_FINGERPRINT: Optional[str] = None


def _config_fingerprint() -> str:
    """Digest of the default machine configuration + cache schema.

    Baked into every cache key: when Table-1 defaults or the payload
    layout change between revisions, old on-disk entries silently stop
    matching instead of serving stale timing results.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        def unwrap(obj):
            if dataclasses.is_dataclass(obj):
                return {
                    f.name: unwrap(getattr(obj, f.name))
                    for f in dataclasses.fields(obj)
                }
            return obj
        blob = json.dumps(
            {"config": unwrap(MachineConfig()),
             "schema": diskcache.SCHEMA_VERSION},
            sort_keys=True, default=str,
        )
        _FINGERPRINT = hashlib.sha256(blob.encode()).hexdigest()[:12]
    return _FINGERPRINT


def _key(workload: str, scale: str, prefetcher: Optional[str],
         pf_kwargs: Optional[dict], overrides: Optional[dict],
         track: bool, warmup: float, seed: int) -> str:
    def encode(obj):
        return json.dumps(obj, sort_keys=True, default=str) if obj else ""
    return "|".join([
        workload, scale, prefetcher or "fdip", encode(pf_kwargs),
        encode(overrides), "t" if track else "", f"{warmup}",
        f"s{seed}", _config_fingerprint(),
    ])


def _warmup_key(workload: str, scale: str, prefetcher: Optional[str],
                pf_kwargs: Optional[dict], overrides: Optional[dict],
                warmup: float, seed: int) -> str:
    """Checkpoint key for the post-warmup machine snapshot.

    Deliberately excludes ``track_block_misses``: the L2 miss map is
    observability bookkeeping that is cleared at measurement start, so
    runs that differ only in tracking share one warmup checkpoint —
    which is exactly what lets a tracked re-run of an untracked point
    skip its warmup.
    """
    def encode(obj):
        return json.dumps(obj, sort_keys=True, default=str) if obj else ""
    return "|".join([
        "warmup", workload, scale, prefetcher or "fdip", encode(pf_kwargs),
        encode(overrides), f"{warmup}", f"s{seed}", _config_fingerprint(),
    ])


def cache_key(
    workload: str,
    prefetcher: Optional[str],
    scale: str = "bench",
    pf_kwargs: Optional[dict] = None,
    overrides: Optional[dict] = None,
    track_block_misses: bool = False,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 1,
) -> str:
    """Public form of the run key (same signature as run_prefetcher)."""
    return _key(workload, scale, prefetcher, pf_kwargs, overrides,
                track_block_misses, warmup, seed)


# ----------------------------------------------------------------------
# Cache observability
# ----------------------------------------------------------------------
@dataclasses.dataclass
class RunCacheStats:
    """Where results came from since the last reset (observability for
    the sweep engine and the zero-resimulation acceptance tests)."""

    memory_hits: int = 0
    disk_hits: int = 0
    simulations: int = 0
    disk_writes: int = 0
    #: Simulations that restored a warmup checkpoint instead of
    #: re-running the warmup window.
    warmup_hits: int = 0
    warmup_writes: int = 0
    #: On-disk entries (results or warmup checkpoints) that failed
    #: checksum/decode validation and were quarantined (see
    #: docs/RESILIENCE.md); each one degrades to a miss, never a crash.
    cache_corrupt: int = 0
    #: Cache writes refused by the disk-space guard (the volume was
    #: nearly full); the result still flows, it just is not persisted.
    write_refusals: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.simulations


_STATS = RunCacheStats()


def _count_corruption(error: diskcache.CorruptArtifactError) -> None:
    from repro.experiments.errors import DiskFullError

    if isinstance(error, DiskFullError):
        _STATS.write_refusals += 1
    else:
        _STATS.cache_corrupt += 1


diskcache.add_corruption_listener(_count_corruption)


def run_cache_stats() -> RunCacheStats:
    """Snapshot of the hit/miss counters."""
    return dataclasses.replace(_STATS)


def reset_run_cache_stats() -> None:
    global _STATS
    _STATS = RunCacheStats()


def record_source(source: str) -> None:
    """Count a result resolved outside ``run_prefetcher`` (the sweep
    engine's parent-side cache probes and pool workers) so
    :func:`run_cache_stats` reflects work done on this process's
    behalf."""
    if source == "sim":
        _STATS.simulations += 1
    elif source == "disk":
        _STATS.disk_hits += 1
    else:
        _STATS.memory_hits += 1


# ----------------------------------------------------------------------
# Disk layer
# ----------------------------------------------------------------------
def _disk_load(key: str) -> Optional[Tuple[SimStats, Optional[dict]]]:
    if not diskcache.disk_cache_enabled():
        return None
    payload = diskcache.get_cache().get(key)
    if payload is None:
        return None
    try:
        if payload.get("schema") != diskcache.SCHEMA_VERSION:
            return None
        if payload.get("key") != key:  # digest collision / moved file
            return None
        stats = SimStats.from_state(payload["stats"])
        miss_map = payload.get("miss_map")
        if miss_map is not None:
            miss_map = dict(miss_map)
    except Exception:
        return None  # stale or malformed payload: re-simulate
    return stats, miss_map


def _disk_store(key: str, stats: SimStats,
                miss_map: Optional[dict]) -> None:
    if not diskcache.disk_cache_enabled():
        return
    payload = {
        "schema": diskcache.SCHEMA_VERSION,
        "key": key,
        "stats": stats.state_dict(),
        "miss_map": dict(miss_map) if miss_map is not None else None,
    }
    diskcache.get_cache().put(key, payload)
    _STATS.disk_writes += 1


def seed_cache(key: str, stats: SimStats,
               miss_map: Optional[dict]) -> None:
    """Install an externally computed result (parallel sweep workers)
    into the in-process cache."""
    _CACHE[key] = (stats, miss_map)


def peek_cached(key: str) -> Optional[Tuple[SimStats, Optional[dict], str]]:
    """Probe both cache layers for ``key`` without ever simulating.

    Returns ``(stats, miss_map, source)`` with source ``"memory"`` or
    ``"disk"`` (disk hits are promoted into the in-process layer), or
    None on a miss.  This is the supported cross-module probe — the
    sweep engine uses it to resolve warm points in the parent process
    without reaching into the runner's private cache dict.
    """
    cached = _CACHE.get(key)
    if cached is not None:
        return cached[0], cached[1], "memory"
    loaded = _disk_load(key)
    if loaded is not None:
        _CACHE[key] = loaded
        return loaded[0], loaded[1], "disk"
    return None


# ----------------------------------------------------------------------
# Warmup checkpoints
# ----------------------------------------------------------------------
def _warmup_load(wkey: str) -> Optional[dict]:
    """Load a post-warmup machine snapshot, or None."""
    if not diskcache.disk_cache_enabled():
        return None
    payload = diskcache.get_warmup_cache().get(wkey)
    if payload is None:
        return None
    if payload.get("schema") != diskcache.SCHEMA_VERSION:
        return None
    if payload.get("key") != wkey:
        return None
    state = payload.get("state")
    return state if isinstance(state, dict) else None


def _warmup_store(wkey: str, state: dict) -> None:
    if not diskcache.disk_cache_enabled():
        return
    payload = {
        "schema": diskcache.SCHEMA_VERSION,
        "key": wkey,
        "state": state,
    }
    diskcache.get_warmup_cache().put(wkey, payload)
    _STATS.warmup_writes += 1


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def run_prefetcher(
    workload: str,
    prefetcher: Optional[str],
    scale: str = "bench",
    pf_kwargs: Optional[dict] = None,
    overrides: Optional[dict] = None,
    track_block_misses: bool = False,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 1,
    use_cache: bool = True,
) -> Tuple[SimStats, Optional[dict]]:
    """Simulate ``workload`` under ``prefetcher``; returns
    ``(stats, l2_miss_map)`` — the map is None unless
    ``track_block_misses``.  Results are cached in-process and (unless
    disabled) on disk; ``use_cache=False`` neither reads nor writes
    either layer.
    """
    key = _key(workload, scale, prefetcher, pf_kwargs, overrides,
               track_block_misses, warmup, seed)
    if use_cache:
        cached = _CACHE.get(key)
        if cached is not None:
            _STATS.memory_hits += 1
            return cached
        loaded = _disk_load(key)
        if loaded is not None:
            _STATS.disk_hits += 1
            _CACHE[key] = loaded
            return loaded
    trace = get_trace(workload, scale=scale, seed=seed)
    config = MachineConfig()
    if overrides:
        config = config.replace(**overrides)
    from repro.cpu.simulator import FrontEndSimulator

    def build_sim() -> FrontEndSimulator:
        pf = (
            make_prefetcher(prefetcher, **(pf_kwargs or {}))
            if prefetcher else None
        )
        return FrontEndSimulator(
            config=config, prefetcher=pf,
            track_block_misses=track_block_misses,
        )

    sim = build_sim()
    resumed = False
    wkey = None
    if use_cache:
        wkey = _warmup_key(workload, scale, prefetcher, pf_kwargs,
                           overrides, warmup, seed)
        state = _warmup_load(wkey)
        if state is not None:
            try:
                sim.resume(trace, state)
                resumed = True
                _STATS.warmup_hits += 1
            except Exception:
                # Stale, mismatched, or corrupted checkpoint — whatever
                # the load_state_dict path raised, a partial load may
                # have corrupted the machine, so fall back to a cold
                # warmup on a fresh simulator.  A checkpoint is an
                # accelerator; it must never change (or abort) results.
                sim = build_sim()
    if not resumed:
        sim.warmup(trace, warmup_fraction=warmup)
        if use_cache:
            _warmup_store(wkey, sim.state_dict())
    stats = sim.measure()
    miss_map = (
        dict(sim.hierarchy.l2_miss_map) if track_block_misses else None
    )
    _STATS.simulations += 1
    result = (stats, miss_map)
    if use_cache:
        _CACHE[key] = result
        _disk_store(key, stats, miss_map)
    return result


def run_baseline(
    workload: str,
    scale: str = "bench",
    overrides: Optional[dict] = None,
    track_block_misses: bool = False,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 1,
    use_cache: bool = True,
) -> Tuple[SimStats, Optional[dict]]:
    """FDIP-only run (the baseline of every comparison)."""
    return run_prefetcher(
        workload, None, scale=scale, overrides=overrides,
        track_block_misses=track_block_misses, warmup=warmup,
        seed=seed, use_cache=use_cache,
    )


def compare_all(
    workload: str,
    prefetchers: Sequence[str] = ("efetch", "mana", "eip", "hierarchical"),
    scale: str = "bench",
    overrides: Optional[dict] = None,
    jobs: int = 1,
) -> Dict[str, PrefetchReport]:
    """Run the named prefetchers against the FDIP baseline.

    With ``jobs > 1`` the points fan out over a process pool via the
    sweep engine (uncached points simulate concurrently).
    """
    if jobs > 1:
        from repro.experiments.sweep import SweepPoint, sweep

        points = [SweepPoint(workload, None, scale=scale,
                             overrides=overrides)]
        points += [
            SweepPoint(workload, name, scale=scale, overrides=overrides)
            for name in prefetchers
        ]
        sweep(points, jobs=jobs, progress=None)
    baseline, _ = run_baseline(workload, scale=scale, overrides=overrides)
    out: Dict[str, PrefetchReport] = {}
    for name in prefetchers:
        stats, _ = run_prefetcher(
            workload, name, scale=scale, overrides=overrides
        )
        out[name] = compare_run(name, stats, baseline)
    return out


def perfect_l1i_speedup(workload: str, scale: str = "bench") -> float:
    """IPC gain of a perfect L1-I over FDIP (§7.1's headroom study)."""
    baseline, _ = run_baseline(workload, scale=scale)
    perfect, _ = run_baseline(
        workload, scale=scale, overrides={"hierarchy.perfect_l1i": True}
    )
    return perfect.ipc / baseline.ipc - 1.0


def clear_run_cache(disk: bool = False) -> None:
    """Drop all cached simulation results (in-process; plus the on-disk
    result and warmup-checkpoint stores when ``disk=True``)."""
    _CACHE.clear()
    if disk and diskcache.disk_cache_enabled():
        diskcache.get_cache().clear()
        diskcache.get_warmup_cache().clear()
