"""Shared simulation runner with per-process result caching.

The paper's evaluation methodology (§6.1): warm up, then measure, with
every prefetcher running on top of FDIP and compared to the plain FDIP
baseline on the same workload.  ``run_prefetcher`` handles trace
memoization, config overrides, and caching so that multi-figure
benchmarks re-use each simulation.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.analysis.metrics import PrefetchReport, compare_run
from repro.cpu import MachineConfig, simulate
from repro.cpu.stats import SimStats
from repro.prefetchers import make_prefetcher
from repro.workloads.cache import get_trace

#: Warmup fraction used by every experiment (the paper warms 100M of
#: 200M instructions; our preheated traces need a little less than
#: half).
DEFAULT_WARMUP = 0.45

#: Subset used by parameter sweeps where running all 11 workloads per
#: point would be prohibitive: two web stacks and two databases.
REPRESENTATIVE_WORKLOADS = (
    "beego",
    "caddy",
    "mysql_sysbench",
    "tidb_tpcc",
)

_CACHE: Dict[str, Tuple[SimStats, Optional[dict]]] = {}


def _key(workload: str, scale: str, prefetcher: Optional[str],
         pf_kwargs: Optional[dict], overrides: Optional[dict],
         track: bool, warmup: float) -> str:
    def encode(obj):
        return json.dumps(obj, sort_keys=True, default=str) if obj else ""
    return "|".join([
        workload, scale, prefetcher or "fdip", encode(pf_kwargs),
        encode(overrides), "t" if track else "", f"{warmup}",
    ])


def run_prefetcher(
    workload: str,
    prefetcher: Optional[str],
    scale: str = "bench",
    pf_kwargs: Optional[dict] = None,
    overrides: Optional[dict] = None,
    track_block_misses: bool = False,
    warmup: float = DEFAULT_WARMUP,
    seed: int = 1,
) -> Tuple[SimStats, Optional[dict]]:
    """Simulate ``workload`` under ``prefetcher``; returns
    ``(stats, l2_miss_map)`` — the map is None unless
    ``track_block_misses``.  Results are cached per process.
    """
    key = _key(workload, scale, prefetcher, pf_kwargs, overrides,
               track_block_misses, warmup)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    trace = get_trace(workload, scale=scale, seed=seed)
    config = MachineConfig()
    if overrides:
        config = config.replace(**overrides)
    pf = make_prefetcher(prefetcher, **(pf_kwargs or {})) if prefetcher else None
    from repro.cpu.simulator import FrontEndSimulator

    sim = FrontEndSimulator(
        config=config, prefetcher=pf, track_block_misses=track_block_misses
    )
    stats = sim.run(trace, warmup_fraction=warmup)
    miss_map = (
        dict(sim.hierarchy.l2_miss_map) if track_block_misses else None
    )
    result = (stats, miss_map)
    _CACHE[key] = result
    return result


def run_baseline(
    workload: str,
    scale: str = "bench",
    overrides: Optional[dict] = None,
    track_block_misses: bool = False,
    warmup: float = DEFAULT_WARMUP,
) -> Tuple[SimStats, Optional[dict]]:
    """FDIP-only run (the baseline of every comparison)."""
    return run_prefetcher(
        workload, None, scale=scale, overrides=overrides,
        track_block_misses=track_block_misses, warmup=warmup,
    )


def compare_all(
    workload: str,
    prefetchers: Sequence[str] = ("efetch", "mana", "eip", "hierarchical"),
    scale: str = "bench",
    overrides: Optional[dict] = None,
) -> Dict[str, PrefetchReport]:
    """Run the named prefetchers against the FDIP baseline."""
    baseline, _ = run_baseline(workload, scale=scale, overrides=overrides)
    out: Dict[str, PrefetchReport] = {}
    for name in prefetchers:
        stats, _ = run_prefetcher(
            workload, name, scale=scale, overrides=overrides
        )
        out[name] = compare_run(name, stats, baseline)
    return out


def perfect_l1i_speedup(workload: str, scale: str = "bench") -> float:
    """IPC gain of a perfect L1-I over FDIP (§7.1's headroom study)."""
    baseline, _ = run_baseline(workload, scale=scale)
    perfect, _ = run_baseline(
        workload, scale=scale, overrides={"hierarchy.perfect_l1i": True}
    )
    return perfect.ipc / baseline.ipc - 1.0


def clear_run_cache() -> None:
    """Drop all cached simulation results."""
    _CACHE.clear()
