"""Structured error taxonomy for the experiment stack.

The sweep engine, runner, and on-disk caches all need to agree on what
can go wrong with a long multi-process run and how each failure should
be handled.  The hierarchy encodes the policy:

``ExperimentError``
    Root of everything the resilience layer knows how to handle.
``TransientError``
    Plausibly succeeds on a retry (a crashed or hung worker, an
    injected flaky fault).  The sweep engine retries these with
    exponential backoff up to ``max_retries``.
``WorkerCrashError`` / ``PointTimeoutError``
    The two concrete transient cases: a worker process that died
    (nonzero exit code / signal) and one that exceeded
    ``point_timeout`` and was terminated.
``CorruptArtifactError``
    A persisted artifact (disk-cache entry, warmup checkpoint) failed
    checksum or decode validation.  Never raised across the cache API —
    the entry is quarantined, the failure is reported through
    :func:`repro.experiments.diskcache.add_corruption_listener`, and
    the caller sees a plain cache miss.
``DiskFullError``
    The cache *refused* a write because the volume is nearly full —
    better no entry than a torn one fighting ENOSPC.  Reported through
    the same listener channel, never raised to the caller.
``ShardDiedError``
    A whole shard pool (not one point) died or stalled; the service's
    watchdog requeues its in-flight units and restarts or retires the
    pool — see :mod:`repro.experiments.service`.
``SweepInterrupted``
    A graceful shutdown (SIGINT/SIGTERM or an explicit stop request)
    drained the scheduler mid-run.  Carries the partial
    ``SweepReport`` and, when a run journal is active, the run id to
    resume from.
``InvalidConfigError`` / ``EventStreamError`` / ``FaultPlanError``
    Validation failures that historically raised plain ``ValueError``.
    Each mixes ``ExperimentError`` with ``ValueError`` so existing
    ``except ValueError`` call sites (and tests) keep working while
    the error-taxonomy lint rule can prove every raise under
    ``repro.experiments`` resolves to the structured hierarchy.
``PointFailure``
    The terminal record for one sweep point that could not be
    completed after retries.  Collected into
    :class:`repro.experiments.sweep.SweepReport` under
    ``keep_going=True``, raised under the default fail-fast policy.

Retry pacing is deterministic: :func:`backoff_delay` derives its jitter
from a SHA-256 of ``(token, attempt)`` rather than a global RNG, so a
re-run of the same sweep sleeps the same schedule and tests are
reproducible.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "ExperimentError",
    "TransientError",
    "WorkerCrashError",
    "PointTimeoutError",
    "CorruptArtifactError",
    "DiskFullError",
    "ShardDiedError",
    "SweepInterrupted",
    "PointFailure",
    "InvalidConfigError",
    "EventStreamError",
    "FaultPlanError",
    "backoff_delay",
]


class ExperimentError(Exception):
    """Base class for structured experiment-stack failures."""


class TransientError(ExperimentError):
    """A failure that may succeed on retry (the sweep engine's cue to
    re-enqueue the point with backoff instead of recording a
    :class:`PointFailure`)."""


class WorkerCrashError(TransientError):
    """A sweep worker process died without delivering a result."""

    def __init__(self, message: str, exitcode: Optional[int] = None):
        super().__init__(message)
        #: Exit code of the dead worker (negative = killed by signal),
        #: or None when the crash was injected/simulated in-process.
        self.exitcode = exitcode


class PointTimeoutError(TransientError):
    """A point exceeded ``point_timeout`` and its worker was
    terminated."""

    def __init__(self, message: str, timeout: Optional[float] = None):
        super().__init__(message)
        self.timeout = timeout


class CorruptArtifactError(ExperimentError):
    """A persisted artifact failed validation (checksum mismatch,
    truncation, undecodable pickle/JSON).

    Instances are *descriptive*: :class:`~repro.experiments.diskcache.
    DiskCache` builds one per quarantined file and hands it to the
    registered corruption listeners; it is never raised through the
    cache ``get``/``put`` API.
    """

    def __init__(self, path: Union[str, Path], reason: str,
                 quarantined_to: Optional[Path] = None):
        super().__init__(f"{path}: {reason}")
        self.path = Path(path)
        self.reason = reason
        #: Where the bad file was moved (``<name>.corrupt``), or None
        #: when the move itself failed and the file was deleted/left.
        self.quarantined_to = quarantined_to


class DiskFullError(CorruptArtifactError):
    """A cache write was *refused* because the volume is nearly full.

    Subclasses :class:`CorruptArtifactError` so it reaches the same
    corruption listeners (the refusal is an artifact-integrity event:
    the alternative is a torn write racing ENOSPC), but nothing was
    quarantined — the entry simply was not written.
    """

    def __init__(self, path: Union[str, Path], reason: str,
                 free_bytes: int = 0, needed_bytes: int = 0):
        super().__init__(path, reason)
        self.free_bytes = free_bytes
        self.needed_bytes = needed_bytes


class ShardDiedError(ExperimentError):
    """A shard pool (a whole supervision loop, not one point) died or
    stalled past the watchdog timeout.  The service requeues the
    shard's in-flight units and restarts or retires the pool; only when
    no pool can be kept alive does this escape to the caller."""

    def __init__(self, message: str, shard: Optional[int] = None):
        super().__init__(message)
        self.shard = shard


class SweepInterrupted(ExperimentError):
    """A sweep was shut down gracefully before completing.

    Raised by :func:`repro.experiments.service.serve_sweep` after a
    SIGINT/SIGTERM (or an explicit shutdown request) drained the
    scheduler: in-flight workers are reaped, completed points are kept
    on ``report``, and — when a run journal is active — ``run_id``
    names the run to pass to ``repro sweep --resume``.
    """

    def __init__(self, message: str, report=None,
                 signum: Optional[int] = None,
                 run_id: Optional[str] = None):
        super().__init__(message)
        #: Partial :class:`~repro.experiments.sweep.SweepReport`.
        self.report = report
        #: The signal that triggered the shutdown, when one did.
        self.signum = signum
        #: Journal run id to resume from, when journaling was active.
        self.run_id = run_id

    @property
    def exit_code(self) -> int:
        """Conventional shell exit status (128 + signal, default
        SIGINT's 130)."""
        return 128 + (self.signum if self.signum else 2)


class InvalidConfigError(ExperimentError, ValueError):
    """A configuration object (``ServiceConfig``, benchmark/SLO specs)
    failed validation.  Subclasses ``ValueError`` so callers that
    predate the taxonomy — and tests written against them — still
    catch it."""


class EventStreamError(ExperimentError, ValueError):
    """A journal/service event stream failed strict decoding
    (``read_events(strict=True)`` hit an undecodable line)."""


class FaultPlanError(ExperimentError, ValueError):
    """A fault-injection plan (``--fault`` specs, fault fields) failed
    validation."""


#: Failure kinds recorded on :class:`PointFailure`.
FAILURE_KINDS = ("crash", "timeout", "transient", "error")


class PointFailure(ExperimentError):
    """Terminal failure record for one sweep point.

    Doubles as the exception raised under the fail-fast policy and as
    the per-point record stored on ``SweepReport.failures`` under
    ``keep_going=True``.
    """

    def __init__(self, label: str, index: int, kind: str, message: str,
                 attempts: int):
        noun = "attempt" if attempts == 1 else "attempts"
        super().__init__(
            f"{label}: {kind} after {attempts} {noun}: {message}"
        )
        self.label = label
        #: Position of the point in the sweep's input sequence.
        self.index = index
        #: One of :data:`FAILURE_KINDS`.
        self.kind = kind
        self.message = message
        self.attempts = attempts

    @classmethod
    def from_error(cls, label: str, index: int, error: BaseException,
                   attempts: int) -> "PointFailure":
        if isinstance(error, WorkerCrashError):
            kind = "crash"
        elif isinstance(error, PointTimeoutError):
            kind = "timeout"
        elif isinstance(error, TransientError):
            kind = "transient"
        else:
            kind = "error"
        return cls(label, index, kind, str(error), attempts)


def backoff_delay(attempt: int, base: float, token: str,
                  cap: float = 30.0) -> float:
    """Delay before retry number ``attempt`` (1-based) of ``token``.

    Exponential (``base * 2**(attempt-1)``) scaled by a jitter factor
    in ``[0.5, 1.5)`` derived from SHA-256 of ``(token, attempt)`` —
    deterministic for a given point and attempt, yet de-synchronized
    across points so retried workers do not stampede the disk cache
    together.  Capped at ``cap`` seconds; ``base <= 0`` disables
    sleeping entirely (used by tests).
    """
    if base <= 0.0:
        return 0.0
    digest = hashlib.sha256(f"{token}|{attempt}".encode("utf-8")).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2.0**64
    return min(cap, base * (2.0 ** (attempt - 1)) * jitter)
