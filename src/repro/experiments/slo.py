"""SLO / tail-latency evaluation on the microservice request-graph grid.

The paper's figures rank prefetchers by IPC speedup; for cloud
microservices the ranking that matters is *per-request tail latency
under an SLO* (SLOFetch, arXiv 2511.04774): a prefetcher that trims
mean fetch stalls but leaves the occasional deep-chain request slow
loses exactly where operators look.  The functions here sweep the
microservice workload family (docs/MICROSERVICES.md) and read the
``request.*`` metrics the simulator's per-request latency tracker
publishes:

* :func:`fig18_slo_grid` — the headline grid: per (workload ×
  prefetcher), p50/p95/p99 latency, SLO attainment, and p99 normalized
  to the FDIP baseline;
* :func:`tab05_slo_summary` — per prefetcher across workloads: geomean
  p99/p50 latency reduction vs. FDIP and mean SLO-attainment delta —
  the compressed-metadata HP variant's scorecard against baseline HP;
* :func:`fig19_slo_timeline` — the windowed p99/attainment timeline of
  one run, for burst-response plots.

Everything routes through :func:`repro.experiments.sweep.sweep`, so
grids are parallel, fault-tolerant, disk-cached, and bit-identical
between serial and ``jobs=N`` runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import geomean
from repro.experiments.errors import InvalidConfigError
from repro.experiments.sweep import SweepResult, grid, sweep
from repro.workloads.microservices import MICROSERVICE_NAMES

#: The SLO comparison set: FDIP baseline (implicit), the paper's HP,
#: and the compressed-metadata variant (smaller Metadata Buffer shared
#: across services).
SLO_PREFETCHERS = ("hierarchical", "hp_compressed")

#: Metrics copied out of ``SimStats`` per grid cell.
_CELL_METRICS = ("p50", "p95", "p99", "mean", "max",
                 "slo_attainment", "count")


def _cell(result: SweepResult) -> Dict[str, float]:
    stats = result.stats
    extra = stats.extra
    cell = {m: extra.get(f"request.{m}", 0.0) for m in _CELL_METRICS}
    cell["slo_attainment"] = stats.slo_attainment
    cell["ipc"] = stats.ipc
    cell["l1i_mpki"] = stats.l1i_mpki
    return cell


def slo_sweep(
    workloads: Sequence[str] = MICROSERVICE_NAMES,
    prefetchers: Sequence[str] = SLO_PREFETCHERS,
    scale: str = "bench",
    jobs: int = 1,
    use_cache: bool = True,
    progress=None,
    **common,
) -> Dict[str, Dict[str, SweepResult]]:
    """Run the microservice grid (FDIP baseline included) and return
    ``{workload: {prefetcher_or_'fdip': SweepResult}}``."""
    points = grid(workloads, prefetchers, include_baseline=True,
                  scale=scale, **common)
    report = sweep(points, jobs=jobs, use_cache=use_cache,
                   progress=progress)
    out: Dict[str, Dict[str, SweepResult]] = {}
    for result in report:
        name = result.point.prefetcher or "fdip"
        out.setdefault(result.point.workload, {})[name] = result
    return out


# ----------------------------------------------------------------------
# Figure 18 — per-request tail latency across the microservice grid
# ----------------------------------------------------------------------
def fig18_slo_grid(
    workloads: Sequence[str] = MICROSERVICE_NAMES,
    prefetchers: Sequence[str] = SLO_PREFETCHERS,
    scale: str = "bench",
    jobs: int = 1,
    **common,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """``{workload: {prefetcher: metrics}}`` over the SLO grid.

    Per cell: request-latency percentiles (cycles), SLO attainment,
    IPC/MPKI, plus ``p99_vs_fdip`` — the cell's p99 relative to the
    workload's FDIP baseline (< 1.0 is an improvement).
    """
    raw = slo_sweep(workloads, prefetchers, scale=scale, jobs=jobs,
                    **common)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for workload, row in raw.items():
        base = _cell(row["fdip"])
        cells: Dict[str, Dict[str, float]] = {}
        for name, result in row.items():
            cell = _cell(result)
            cell["p99_vs_fdip"] = (cell["p99"] / base["p99"]
                                   if base["p99"] else 0.0)
            cells[name] = cell
        out[workload] = cells
    return out


# ----------------------------------------------------------------------
# Table 5 — prefetcher scorecard on the SLO metrics
# ----------------------------------------------------------------------
def tab05_slo_summary(
    workloads: Sequence[str] = MICROSERVICE_NAMES,
    prefetchers: Sequence[str] = SLO_PREFETCHERS,
    scale: str = "bench",
    jobs: int = 1,
    **common,
) -> List[Tuple[str, float, float, float]]:
    """Rows of ``(prefetcher, p99_reduction, p50_reduction,
    slo_attainment_delta)`` aggregated across the workloads.

    Reductions are geomean ``1 - pXX/pXX_fdip`` (positive is better);
    the attainment delta is the mean absolute gain in SLO attainment
    over the FDIP baseline.
    """
    cells = fig18_slo_grid(workloads, prefetchers, scale=scale,
                           jobs=jobs, **common)
    rows: List[Tuple[str, float, float, float]] = []
    for name in prefetchers:
        r99, r50, dslo = [], [], []
        for workload in workloads:
            base = cells[workload]["fdip"]
            cell = cells[workload][name]
            if base["p99"]:
                r99.append(cell["p99"] / base["p99"])
            if base["p50"]:
                r50.append(cell["p50"] / base["p50"])
            dslo.append(cell["slo_attainment"] - base["slo_attainment"])
        rows.append((
            name,
            1.0 - geomean(r99) if r99 else 0.0,
            1.0 - geomean(r50) if r50 else 0.0,
            sum(dslo) / len(dslo) if dslo else 0.0,
        ))
    return rows


# ----------------------------------------------------------------------
# Figure 19 — windowed SLO timeline of one run
# ----------------------------------------------------------------------
def fig19_slo_timeline(
    workload: str,
    prefetcher: Optional[str] = "hierarchical",
    scale: str = "bench",
    **common,
) -> Dict[str, Tuple[float, ...]]:
    """The run's tumbling-window latency timeline.

    Returns the ``probe.request_p50/p95/p99/slo`` series (one value per
    window of ``request.window`` requests) — how tail latency and SLO
    attainment track the arrival bursts over the measurement window.
    """
    from repro.experiments.runner import run_prefetcher

    stats, _ = run_prefetcher(workload, prefetcher, scale=scale, **common)
    extra = stats.extra
    if "probe.request_p99" not in extra:
        raise InvalidConfigError(
            f"{workload} carries no request-latency timelines; only "
            f"microservice workloads ({MICROSERVICE_NAMES}) have an "
            "open-loop arrival process"
        )
    return {
        "window": extra["request.window"],
        "p50": extra["probe.request_p50"],
        "p95": extra["probe.request_p95"],
        "p99": extra["probe.request_p99"],
        "slo": extra["probe.request_slo"],
        "slo_threshold": extra["request.slo_threshold"],
    }
