"""Content-addressed on-disk store for simulation results.

The per-process memoization in :mod:`repro.experiments.runner` dies
with the process, so every fresh benchmark invocation used to pay for
the whole §6 grid again.  This module persists each
(workload × prefetcher × config) result under a SHA-256 of its cache
key so that repeated invocations — and parallel sweep workers — reuse
finished simulations.

Layout (see docs/SWEEP_CACHE.md)::

    <root>/<digest[:2]>/<digest>.pkl

Each file is a pickled payload dict::

    {"schema": SCHEMA_VERSION, "key": <full key string>,
     "stats": SimStats.state_dict(), "miss_map": dict | None}

Robustness contract: a corrupted, truncated, stale-schema or
key-colliding file is *ignored* (treated as a miss and overwritten on
the next store), never an exception to the caller.

Environment knobs:

``REPRO_CACHE_DIR``
    Cache root (default ``~/.cache/repro-hp/sim``).
``REPRO_DISK_CACHE``
    Set to ``0``/``off``/``false`` to disable persistence entirely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterator, Optional

#: Bump whenever the payload layout or the meaning of cached counters
#: changes; old entries are then ignored (and lazily overwritten).
SCHEMA_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLE = "REPRO_DISK_CACHE"


def default_cache_dir() -> Path:
    """Resolve the cache root from the environment."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-hp" / "sim"


def disk_cache_enabled() -> bool:
    """Whether on-disk persistence is active for this process."""
    value = os.environ.get(_ENV_ENABLE, "1").strip().lower()
    return value not in ("0", "off", "false", "no")


def key_digest(key: str) -> str:
    """Content address for a cache key string."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


class DiskCache:
    """A tiny content-addressed pickle store.

    Values are opaque payload dicts; schema/key validation lives in the
    caller (:mod:`repro.experiments.runner`) so this class stays a dumb,
    crash-tolerant byte store.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        digest = key_digest(key)
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, key: str) -> Optional[dict]:
        """Load the payload for ``key``, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, MemoryError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key``.

        Write failures (read-only FS, disk full) are swallowed — the
        cache is an accelerator, never a correctness dependency.
        """
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    def entries(self) -> Iterator[Path]:
        """All entry files currently in the store."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.pkl"))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"DiskCache({str(self.root)!r})"


_DEFAULT: Optional[DiskCache] = None


def get_cache() -> DiskCache:
    """The process-wide cache at the configured root (lazily built)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = DiskCache(default_cache_dir())
    return _DEFAULT


def get_warmup_cache() -> DiskCache:
    """Nested store for warmup machine checkpoints.

    Rooted at ``<root>/warmup`` — its entry files sit two directory
    levels below the main root, where the main store's ``entries()``
    glob (``<root>/<shard>/*.pkl``) cannot see them, so result-cache
    size accounting is unaffected.  Sharing the root means test
    fixtures and ``REPRO_CACHE_DIR`` redirect both stores together, and
    ``REPRO_DISK_CACHE=0`` disables both.
    """
    return DiskCache(get_cache().root / "warmup")


def set_cache_dir(root: Optional[os.PathLike]) -> Optional[Path]:
    """Point the process-wide cache at ``root`` (None = re-resolve from
    the environment on next use).  Returns the previous root so tests
    can restore it."""
    global _DEFAULT
    previous = _DEFAULT.root if _DEFAULT is not None else None
    _DEFAULT = DiskCache(root) if root is not None else None
    return previous
