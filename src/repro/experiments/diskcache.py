"""Content-addressed on-disk store for simulation results.

The per-process memoization in :mod:`repro.experiments.runner` dies
with the process, so every fresh benchmark invocation used to pay for
the whole §6 grid again.  This module persists each
(workload × prefetcher × config) result under a SHA-256 of its cache
key so that repeated invocations — and parallel sweep workers — reuse
finished simulations.

Layout (see docs/SWEEP_CACHE.md)::

    <root>/<digest[:2]>/<digest>.pkl

Entries are sharded into 256 two-hex-character subdirectories so a
10^5-entry store never puts more than a few hundred files in one
directory.  Stores written before sharding kept every entry flat at
``<root>/<digest>.pkl``; those **legacy flat entries** are still found
on read and transparently migrated into their shard directory (and
:meth:`DiskCache.compact` migrates the stragglers in bulk).

Each file is a pickled *envelope* wrapping the pickled payload bytes
with their SHA-256::

    {"sha256": "<hex digest of payload bytes>", "payload": b"..."}

where the inner payload is the caller's dict::

    {"schema": SCHEMA_VERSION, "key": <full key string>,
     "stats": SimStats.state_dict(), "miss_map": dict | None}

Robustness contract (docs/RESILIENCE.md): writes are atomic
(temp file + fsync + ``os.replace``), so a killed process can never
leave a half-written entry under a live name; reads verify the
checksum, and an unreadable, truncated, or bit-flipped file is
**quarantined** — moved aside to ``<name>.pkl.corrupt`` and reported
to the registered corruption listeners — then treated as a plain
miss.  Corruption is never an exception to the caller.  Pre-envelope
entries (written before the checksum was introduced) are still served:
they unpickle to the payload dict directly and the caller's schema/key
validation covers them.

Environment knobs:

``REPRO_CACHE_DIR``
    Cache root (default ``~/.cache/repro-hp/sim``).
``REPRO_DISK_CACHE``
    Set to ``0``/``off``/``false`` to disable persistence entirely.
``REPRO_CACHE_MIN_FREE``
    Free-space floor in bytes (default 32 MiB): writes that would land
    on a volume with less headroom than this (or than twice the entry
    size, whichever is larger) are *refused* — reported to the
    corruption listeners as a
    :class:`~repro.experiments.errors.DiskFullError` — rather than
    risk torn writes racing ENOSPC.  ``0`` disables the guard.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import re
import shutil
import tempfile
from pathlib import Path
from typing import Callable, Iterator, List, Optional

from repro.experiments.errors import CorruptArtifactError, DiskFullError

#: Bump whenever the payload layout or the meaning of cached counters
#: changes; old entries are then ignored (and lazily overwritten).
SCHEMA_VERSION = 1

#: Suffix appended to quarantined entry files.
QUARANTINE_SUFFIX = ".corrupt"

#: Shard directories are exactly two lowercase hex characters; nothing
#: else under the root (``warmup``, stray files) is ever touched by
#: compaction.
_SHARD_DIR = re.compile(r"^[0-9a-f]{2}$")

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLE = "REPRO_DISK_CACHE"
_ENV_MIN_FREE = "REPRO_CACHE_MIN_FREE"

#: Default free-space floor for cache writes (bytes).
DEFAULT_MIN_FREE_BYTES = 32 * 1024 * 1024


def min_free_bytes() -> int:
    """The configured free-space floor (``REPRO_CACHE_MIN_FREE``),
    falling back to :data:`DEFAULT_MIN_FREE_BYTES` when unset or
    unparsable.  ``0`` disables the disk-space guard."""
    raw = os.environ.get(_ENV_MIN_FREE, "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_MIN_FREE_BYTES

#: Callables invoked with a :class:`CorruptArtifactError` each time any
#: DiskCache instance quarantines a file (runner uses this to surface a
#: ``cache_corrupt`` counter without a dependency cycle).
_CORRUPTION_LISTENERS: List[Callable[[CorruptArtifactError], None]] = []


def add_corruption_listener(
        listener: Callable[[CorruptArtifactError], None]) -> None:
    """Register ``listener`` for quarantine events (idempotent)."""
    if listener not in _CORRUPTION_LISTENERS:
        _CORRUPTION_LISTENERS.append(listener)


def default_cache_dir() -> Path:
    """Resolve the cache root from the environment."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-hp" / "sim"


def disk_cache_enabled() -> bool:
    """Whether on-disk persistence is active for this process."""
    value = os.environ.get(_ENV_ENABLE, "1").strip().lower()
    return value not in ("0", "off", "false", "no")


def key_digest(key: str) -> str:
    """Content address for a cache key string."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


class DiskCache:
    """A tiny content-addressed, checksummed pickle store.

    Values are opaque payload dicts; schema/key validation lives in the
    caller (:mod:`repro.experiments.runner`) so this class stays a dumb,
    crash-tolerant byte store.  What it *does* own is byte integrity:
    every entry carries a SHA-256 of its payload bytes, verified on
    read, with corrupt files quarantined instead of served or raised.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        #: Files this instance has quarantined since construction.
        self.corrupt_count = 0
        #: Writes this instance refused for lack of disk headroom.
        self.refused_writes = 0

    def path_for(self, key: str) -> Path:
        digest = key_digest(key)
        return self.root / digest[:2] / f"{digest}.pkl"

    def legacy_path_for(self, key: str) -> Path:
        """Where ``key`` lived before shard directories: flat under the
        root.  Only consulted as a read fallback and by :meth:`compact`."""
        return self.root / f"{key_digest(key)}.pkl"

    # -- read ----------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Load the payload for ``key``; None on miss or (after
        quarantining the file) on corruption.

        A miss at the sharded path falls back to the pre-sharding flat
        location; a valid flat entry is served *and* migrated into its
        shard directory so the next read is direct.  A corrupt flat
        entry is quarantined into the shard directory like any other.
        """
        path = self.path_for(key)
        found, payload = self._read(path, quarantine_at=path)
        if found:
            return payload
        legacy = self.legacy_path_for(key)
        found, payload = self._read(legacy, quarantine_at=path)
        if found and payload is not None:
            self._migrate(legacy, path)
        return payload

    def _read(self, path: Path,
              quarantine_at: Path) -> "tuple[bool, Optional[dict]]":
        """Load + verify one entry file.

        Returns ``(found, payload)``: ``(False, None)`` for a plain
        miss, ``(True, None)`` when the file existed but was corrupt
        (it has been quarantined beside ``quarantine_at``), and
        ``(True, payload)`` on success.
        """
        try:
            with open(path, "rb") as fh:
                envelope = pickle.load(fh)
        except FileNotFoundError:
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, MemoryError, ValueError) as exc:
            return True, self._quarantine(
                path, f"undecodable entry: {exc!r}", quarantine_at)
        if not isinstance(envelope, dict):
            return True, self._quarantine(
                path, "entry is not a dict", quarantine_at)
        if "sha256" in envelope and "payload" in envelope:
            blob = envelope["payload"]
            if not isinstance(blob, bytes) or \
                    hashlib.sha256(blob).hexdigest() != envelope["sha256"]:
                return True, self._quarantine(
                    path, "checksum mismatch", quarantine_at)
            try:
                payload = pickle.loads(blob)
            except Exception as exc:
                return True, self._quarantine(
                    path, f"undecodable payload: {exc!r}", quarantine_at)
        else:
            # Pre-checksum entry: the pickle *is* the payload.  The
            # caller's schema/key validation decides whether to trust
            # it, exactly as before the envelope existed.
            payload = envelope
        if not isinstance(payload, dict):
            return True, self._quarantine(
                path, "payload is not a dict", quarantine_at)
        return True, payload

    def _migrate(self, legacy: Path, path: Path) -> bool:
        """Move a validated flat entry into its shard directory.  Best
        effort: on any OS error the flat file keeps serving reads."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, path)
            return True
        except OSError:
            return False

    def _quarantine(self, path: Path, reason: str,
                    quarantine_at: Optional[Path] = None) -> None:
        """Move a bad entry aside and notify listeners; returns None so
        callers can ``return self._quarantine(...)`` as a miss.

        The sidecar lands beside ``quarantine_at`` (default: beside the
        bad file itself) — corrupt legacy flat entries are quarantined
        into their shard directory so sidecars surface in one place.
        """
        sidecar = quarantine_at if quarantine_at is not None else path
        target: Optional[Path] = sidecar.with_name(
            sidecar.name + QUARANTINE_SUFFIX)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            target = None
            try:
                path.unlink()
            except OSError:
                pass
        self.corrupt_count += 1
        error = CorruptArtifactError(path, reason, quarantined_to=target)
        for listener in list(_CORRUPTION_LISTENERS):
            try:
                listener(error)
            except Exception:
                pass  # observability must never break the cache
        return None

    # -- write ---------------------------------------------------------
    def put(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key``.

        The payload is pickled, wrapped in a checksum envelope, written
        to a temp file in the same directory, fsynced, then renamed
        into place — a killed process can never leave a half-written
        entry under a live name.  Write failures (read-only FS, disk
        full) are swallowed: the cache is an accelerator, never a
        correctness dependency.

        When the volume's free space is below the configured floor
        (:func:`min_free_bytes`, or twice the entry size if larger)
        the write is **refused** before any bytes land: corruption
        listeners get a :class:`~repro.experiments.errors.
        DiskFullError` and the caller sees nothing — better no entry
        than a torn one fighting ENOSPC.
        """
        path = self.path_for(key)
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "sha256": hashlib.sha256(blob).hexdigest(),
            "payload": blob,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if self._refuse_if_full(path, len(blob)):
                return
            # lint: ordered[atomic-replace]
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(envelope, fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
                # lint: ordered-end
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    def _refuse_if_full(self, path: Path, blob_size: int) -> bool:
        """True when the write at ``path`` must be refused for lack of
        disk headroom (listeners have been notified)."""
        floor = min_free_bytes()
        if floor <= 0:
            return False
        needed = max(floor, 2 * blob_size)
        try:
            free = shutil.disk_usage(path.parent).free
        except OSError:
            return False  # cannot measure: fall through to the write
        if free >= needed:
            return False
        self.refused_writes += 1
        error = DiskFullError(
            path,
            f"write refused: {free} bytes free < {needed} required",
            free_bytes=free, needed_bytes=needed)
        for listener in list(_CORRUPTION_LISTENERS):
            try:
                listener(error)
            except Exception:
                pass  # observability must never break the cache
        return True

    # -- maintenance ---------------------------------------------------
    def entries(self) -> Iterator[Path]:
        """All live entry files currently in the store — sharded and
        legacy flat alike (quarantined ``*.corrupt`` sidecars
        excluded)."""
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*.pkl"))
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.pkl"))

    def legacy_entries(self) -> Iterator[Path]:
        """Flat pre-sharding entry files still sitting at the root."""
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*.pkl"))

    def quarantined(self) -> Iterator[Path]:
        """All quarantined sidecar files in the store."""
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob(f"*{QUARANTINE_SUFFIX}"))
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob(f"*{QUARANTINE_SUFFIX}"))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def clear(self) -> int:
        """Delete every entry (quarantined sidecars included); returns
        the number of live entries removed."""
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in list(self.quarantined()):
            try:
                path.unlink()
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        """Summary counters for ``repro cache info``."""
        entries = list(self.entries())
        legacy = list(self.legacy_entries())
        shards = [d for d in self.root.iterdir()
                  if d.is_dir() and _SHARD_DIR.match(d.name)] \
            if self.root.is_dir() else []
        try:
            free = shutil.disk_usage(
                self.root if self.root.is_dir()
                else self.root.parent).free
        except OSError:
            free = None
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries
                         if p.is_file()),
            "legacy": len(legacy),
            "quarantined": sum(1 for _ in self.quarantined()),
            "shard_dirs": len(shards),
            "free_bytes": free,
            "min_free_bytes": min_free_bytes(),
        }

    def compact(self, purge_quarantined: bool = True) -> "CompactReport":
        """One maintenance pass over the whole store:

        * migrate every legacy flat entry into its shard directory,
          validating bytes on the way (corrupt ones are quarantined);
        * re-verify every sharded entry and drop payloads whose
          ``schema`` no longer matches :data:`SCHEMA_VERSION` — the
          runner would ignore and lazily overwrite them anyway, this
          reclaims the bytes eagerly;
        * optionally delete quarantined ``*.corrupt`` sidecars
          (``purge_quarantined``, default on);
        * remove shard directories left empty.

        ``warmup`` (the nested checkpoint store) and anything else that
        is not a two-hex-char shard directory is never touched; run
        ``compact()`` on :func:`get_warmup_cache` separately to GC
        checkpoints.
        """
        report = CompactReport()
        # Legacy flat entries: validate, then migrate or quarantine.
        for legacy in list(self.legacy_entries()):
            digest = legacy.stem
            target = self.root / digest[:2] / legacy.name
            found, payload = self._read(legacy, quarantine_at=target)
            if not found:
                continue  # raced away
            if payload is None:
                report.quarantined += 1
            elif self._migrate(legacy, target):
                report.migrated += 1
        # Sharded entries: re-verify bytes, drop stale schemas.
        for path in list(self.entries()):
            if path.parent == self.root:
                continue  # an unmigratable flat entry; leave it
            found, payload = self._read(path, quarantine_at=path)
            if not found or payload is None:
                report.quarantined += found
                continue
            if payload.get("schema") != SCHEMA_VERSION:
                try:
                    path.unlink()
                    report.stale_dropped += 1
                except OSError:
                    pass
        if purge_quarantined:
            for sidecar in list(self.quarantined()):
                try:
                    sidecar.unlink()
                    report.purged_sidecars += 1
                except OSError:
                    pass
        # Sweep away shard dirs emptied by the drops above.
        if self.root.is_dir():
            for shard in sorted(self.root.iterdir()):
                if shard.is_dir() and _SHARD_DIR.match(shard.name):
                    try:
                        shard.rmdir()  # fails unless empty
                        report.empty_dirs_removed += 1
                    except OSError:
                        pass
        report.entries = len(self)
        report.bytes = self.size_bytes()
        return report

    def __repr__(self) -> str:
        return f"DiskCache({str(self.root)!r})"


@dataclasses.dataclass
class CompactReport:
    """What one :meth:`DiskCache.compact` pass did."""

    migrated: int = 0            #: flat entries moved into shard dirs
    quarantined: int = 0         #: corrupt entries moved aside
    stale_dropped: int = 0       #: entries with an outdated schema
    purged_sidecars: int = 0     #: ``*.corrupt`` sidecars deleted
    empty_dirs_removed: int = 0  #: emptied shard dirs removed
    entries: int = 0             #: live entries after the pass
    bytes: int = 0               #: store size after the pass

    def describe(self) -> str:
        return (f"migrated {self.migrated} legacy, quarantined "
                f"{self.quarantined}, dropped {self.stale_dropped} "
                f"stale, purged {self.purged_sidecars} sidecar(s), "
                f"removed {self.empty_dirs_removed} empty dir(s); "
                f"{self.entries} entries, {self.bytes} bytes")


_DEFAULT: Optional[DiskCache] = None


def get_cache() -> DiskCache:
    """The process-wide cache at the configured root (lazily built)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = DiskCache(default_cache_dir())
    return _DEFAULT


def get_warmup_cache() -> DiskCache:
    """Nested store for warmup machine checkpoints.

    Rooted at ``<root>/warmup`` — its entry files sit two directory
    levels below the main root, where the main store's ``entries()``
    glob (``<root>/<shard>/*.pkl``) cannot see them, so result-cache
    size accounting is unaffected.  Sharing the root means test
    fixtures and ``REPRO_CACHE_DIR`` redirect both stores together, and
    ``REPRO_DISK_CACHE=0`` disables both.
    """
    return DiskCache(get_cache().root / "warmup")


def set_cache_dir(root: Optional[os.PathLike]) -> Optional[Path]:
    """Point the process-wide cache at ``root`` (None = re-resolve from
    the environment on next use).  Returns the previous root so tests
    can restore it."""
    global _DEFAULT
    previous = _DEFAULT.root if _DEFAULT is not None else None
    _DEFAULT = DiskCache(root) if root is not None else None
    return previous
