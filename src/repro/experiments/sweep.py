"""Fault-tolerant parallel sweep engine over (workload × prefetcher ×
config) points.

``runner.run_prefetcher`` evaluates one point; the full §6 grid is
hundreds of points that are completely independent, so this module
fans them out over worker processes.  Workers share the on-disk result
cache (:mod:`repro.experiments.diskcache`), so a sweep only pays for
points nobody has simulated yet, and its results are visible to every
later process.

Guarantees:

* **Determinism** — results are identical to the serial path; a point
  is fully described by its :class:`SweepPoint` and the simulator is
  deterministic, so worker scheduling — and retries after injected or
  real failures — cannot change any counter (asserted by
  tests/test_determinism.py and tests/test_faults.py).
* **Order** — results come back in input order regardless of which
  worker finishes first.
* **Isolation** — every pending point runs in its own worker process,
  supervised by the parent: a crashed worker
  (:class:`~repro.experiments.errors.WorkerCrashError`) or one
  exceeding ``point_timeout``
  (:class:`~repro.experiments.errors.PointTimeoutError`) costs that
  point one attempt, never the grid.  Transient failures are retried
  up to ``max_retries`` times with exponential backoff and
  deterministic jitter (:func:`repro.experiments.errors.backoff_delay`).
* **Partial results** — :func:`sweep` returns a :class:`SweepReport`.
  Under ``keep_going=True`` every completed point survives alongside a
  :class:`~repro.experiments.errors.PointFailure` record per dead one;
  under the default fail-fast policy the first terminal failure is
  raised (after all attempts) and in-flight workers are reaped.
* **Observability** — one progress line per completed point
  (``[ 3/12] beego/mana  sim  1.82s``) so multi-minute grids are
  watchable; pass ``progress=None`` to silence.

Fault injection: a :class:`~repro.experiments.faults.FaultPlan`
(explicit ``fault_plan=`` or the ``REPRO_FAULT_PLAN`` environment
variable) deterministically injects worker crashes, hangs, transient
errors, and cache corruption at chosen points — see
docs/RESILIENCE.md.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cpu.stats import SimStats
from repro.experiments import faults as faults_mod
from repro.experiments import runner
from repro.experiments.errors import (
    PointFailure,
    PointTimeoutError,
    TransientError,
    WorkerCrashError,
    backoff_delay,
)
from repro.experiments.faults import FaultPlan
from repro.experiments.runner import DEFAULT_WARMUP

#: The paper's comparison set (Figures 9-11, Table 2).
DEFAULT_PREFETCHERS = ("efetch", "mana", "eip", "hierarchical")

#: Retries per point after the first attempt (crash/hang/transient
#: failures only; deterministic simulation errors are never retried).
DEFAULT_MAX_RETRIES = 2

#: First-retry backoff in seconds (doubles per retry, jittered).
DEFAULT_BACKOFF = 0.25

#: Parent-side poll period while supervising workers.
_POLL_SECONDS = 0.01


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One simulation point: the full argument set of
    ``runner.run_prefetcher`` (``prefetcher=None`` = FDIP baseline)."""

    workload: str
    prefetcher: Optional[str] = None
    scale: str = "bench"
    pf_kwargs: Optional[dict] = None
    overrides: Optional[dict] = None
    track_block_misses: bool = False
    warmup: float = DEFAULT_WARMUP
    seed: int = 1

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.prefetcher or 'fdip'}"

    def key(self) -> str:
        return runner.cache_key(
            self.workload, self.prefetcher, scale=self.scale,
            pf_kwargs=self.pf_kwargs, overrides=self.overrides,
            track_block_misses=self.track_block_misses,
            warmup=self.warmup, seed=self.seed,
        )

    def run(self, use_cache: bool = True) -> Tuple[SimStats, Optional[dict]]:
        return runner.run_prefetcher(
            self.workload, self.prefetcher, scale=self.scale,
            pf_kwargs=self.pf_kwargs, overrides=self.overrides,
            track_block_misses=self.track_block_misses,
            warmup=self.warmup, seed=self.seed, use_cache=use_cache,
        )


@dataclasses.dataclass
class SweepResult:
    """A completed point with provenance and timing."""

    point: SweepPoint
    stats: SimStats
    miss_map: Optional[dict]
    seconds: float
    source: str  # "memory" | "disk" | "sim"


@dataclasses.dataclass
class SweepReport:
    """Everything a sweep produced: completed results plus a failure
    record per point that exhausted its retries.

    Iterates (and ``len()``s) over the *results*, so fault-free callers
    can keep treating the return value as the old result list.
    """

    results: List[SweepResult]
    failures: List[PointFailure]

    @property
    def ok(self) -> bool:
        return not self.failures

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def raise_if_failed(self) -> "SweepReport":
        """Raise the first :class:`PointFailure` when any point died;
        returns self otherwise (chainable)."""
        if self.failures:
            raise self.failures[0]
        return self


ProgressFn = Callable[[str], None]


def _default_progress(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


def grid(
    workloads: Sequence[str],
    prefetchers: Sequence[Optional[str]] = DEFAULT_PREFETCHERS,
    include_baseline: bool = True,
    **common,
) -> List[SweepPoint]:
    """Cross ``workloads × prefetchers`` into sweep points.

    ``common`` forwards to every :class:`SweepPoint` (scale, seed,
    warmup, overrides...).  ``include_baseline`` prepends the FDIP
    point per workload so comparisons never re-simulate it serially.
    """
    points: List[SweepPoint] = []
    for w in workloads:
        if include_baseline:
            points.append(SweepPoint(w, None, **common))
        for name in prefetchers:
            if name in (None, "fdip"):
                continue
            points.append(SweepPoint(w, name, **common))
    return points


def _classify(before: runner.RunCacheStats,
              after: runner.RunCacheStats) -> str:
    if after.simulations > before.simulations:
        return "sim"
    if after.disk_hits > before.disk_hits:
        return "disk"
    return "memory"


def _run_serial(point: SweepPoint,
                use_cache: bool) -> Tuple[SimStats, Optional[dict], str, float]:
    before = runner.run_cache_stats()
    start = time.perf_counter()
    stats, miss_map = point.run(use_cache=use_cache)
    elapsed = time.perf_counter() - start
    source = _classify(before, runner.run_cache_stats()) if use_cache else "sim"
    return stats, miss_map, source, elapsed


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _point_process(conn, index: int, attempt: int, point: SweepPoint,
                   use_cache: bool, plan_json: Optional[str]) -> None:
    """Entry point of a per-point worker process.

    Sends exactly one message tuple back through ``conn``:
    ``("ok", state_dict, miss_map, source, elapsed)``,
    ``("transient", message)`` for injected flaky faults, or
    ``("error", message)`` for a real (deterministic, non-retryable)
    exception from the simulation.  Injected crashes exit hard without
    sending; injected hangs sleep first, relying on the parent's
    ``point_timeout`` supervision.
    """
    plan = FaultPlan.from_json(plan_json) if plan_json else None
    if plan:
        fault = plan.exec_fault(index, point.label, attempt)
        if fault is not None:
            if fault.kind == faults_mod.CRASH:
                conn.close()
                os._exit(faults_mod.CRASH_EXIT_CODE)
            elif fault.kind == faults_mod.HANG:
                time.sleep(fault.seconds)
            elif fault.kind == faults_mod.ERROR:
                conn.send(("transient",
                           f"injected transient fault at {point.label}"))
                conn.close()
                return
    try:
        stats, miss_map, source, elapsed = _run_serial(point, use_cache)
    except Exception as exc:
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    if plan and use_cache:
        plan.corrupt_cache_entries(index, point.label, attempt, point.key())
    conn.send(("ok", stats.state_dict(), miss_map, source, elapsed))
    conn.close()


@dataclasses.dataclass
class _Live:
    """A worker currently executing one attempt of one point."""

    proc: multiprocessing.Process
    conn: object
    index: int
    attempt: int
    started: float


def _spawn(ctx, point: SweepPoint, index: int, attempt: int,
           use_cache: bool, plan_json: Optional[str]) -> _Live:
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_point_process,
        args=(send_conn, index, attempt, point, use_cache, plan_json),
        daemon=True,
    )
    proc.start()
    send_conn.close()
    return _Live(proc, recv_conn, index, attempt, time.monotonic())


def _reap(live: _Live,
          point_timeout: Optional[float]) -> Optional[Tuple]:
    """Poll one worker; returns its outcome tuple or None if still
    running.

    Outcomes: the worker's own message, or parent-detected
    ``("crash", exitcode)`` / ``("timeout", seconds)``.
    """
    # Liveness *before* the pipe check closes the exit race: once the
    # process is observably dead, anything it sent is already buffered.
    alive = live.proc.is_alive()
    if live.conn.poll():
        try:
            message = live.conn.recv()
        except (EOFError, OSError):
            message = None
        live.proc.join()
        live.conn.close()
        if message is None:
            return ("crash", live.proc.exitcode)
        return message
    if not alive:
        live.proc.join()
        live.conn.close()
        return ("crash", live.proc.exitcode)
    if point_timeout is not None and \
            time.monotonic() - live.started > point_timeout:
        live.proc.terminate()
        live.proc.join(5.0)
        if live.proc.is_alive():  # pragma: no cover - stuck in a syscall
            live.proc.kill()
            live.proc.join()
        live.conn.close()
        return ("timeout", point_timeout)
    return None


def _outcome_error(outcome: Tuple, label: str) -> TransientError:
    """Map a non-ok worker outcome to its taxonomy error."""
    kind = outcome[0]
    if kind == "crash":
        return WorkerCrashError(
            f"worker for {label} died (exit code {outcome[1]})",
            exitcode=outcome[1],
        )
    if kind == "timeout":
        return PointTimeoutError(
            f"{label} exceeded point timeout ({outcome[1]:.1f}s)",
            timeout=outcome[1],
        )
    return TransientError(outcome[1])


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class _SweepState:
    """Mutable bookkeeping shared by the serial and parallel paths."""

    def __init__(self, points: List[SweepPoint],
                 progress: Optional[ProgressFn], keep_going: bool):
        self.points = points
        self.total = len(points)
        self.results: List[Optional[SweepResult]] = [None] * self.total
        self.failures: Dict[int, PointFailure] = {}
        self.progress = progress
        self.keep_going = keep_going
        self.done = 0

    def _emit(self, label: str, tail: str) -> None:
        self.done += 1
        if self.progress is not None:
            width = len(str(self.total))
            self.progress(
                f"[{self.done:>{width}}/{self.total}] {label:<28s} {tail}"
            )

    def complete(self, index: int, result: SweepResult) -> None:
        self.results[index] = result
        self._emit(result.point.label,
                   f"{result.source:<6s} {result.seconds:6.2f}s")

    def fail(self, index: int, error: BaseException, attempts: int) -> None:
        """Record a terminal failure; raises under fail-fast."""
        failure = PointFailure.from_error(
            self.points[index].label, index, error, attempts)
        self.failures[index] = failure
        self._emit(failure.label,
                   f"FAIL   ({failure.kind} after {attempts} attempts)")
        if not self.keep_going:
            raise failure

    def fail_preformed(self, index: int, failure: PointFailure) -> None:
        """Record an already-constructed terminal failure (a poison
        point replayed from the run journal); raises under fail-fast
        like :meth:`fail`."""
        self.failures[index] = failure
        self._emit(failure.label,
                   f"FAIL   ({failure.kind}, poisoned — quarantined "
                   "by run journal)")
        if not self.keep_going:
            raise failure

    def report(self) -> SweepReport:
        return SweepReport(
            results=[r for r in self.results if r is not None],
            failures=[self.failures[i] for i in sorted(self.failures)],
        )


def _sweep_serial(state: _SweepState, pending: Sequence[int],
                  use_cache: bool, plan: Optional[FaultPlan],
                  max_retries: int, point_timeout: Optional[float],
                  backoff_base: float) -> None:
    """In-process evaluation with the same retry/failure policy as the
    parallel path.

    No supervisor can terminate an in-process point, so ``hang`` faults
    are mapped straight to :class:`PointTimeoutError`; everything else
    behaves identically.
    """
    for index in pending:
        point = state.points[index]
        attempt = 1
        while True:
            try:
                if plan:
                    fault = plan.exec_fault(index, point.label, attempt)
                    if fault is not None:
                        if fault.kind == faults_mod.CRASH:
                            raise WorkerCrashError(
                                f"injected crash at {point.label}")
                        if fault.kind == faults_mod.HANG:
                            raise PointTimeoutError(
                                f"injected hang at {point.label}",
                                timeout=point_timeout)
                        raise TransientError(
                            f"injected transient fault at {point.label}")
                stats, miss_map, source, elapsed = _run_serial(
                    point, use_cache)
                if plan and use_cache:
                    plan.corrupt_cache_entries(
                        index, point.label, attempt, point.key())
                state.complete(index, SweepResult(
                    point, stats, miss_map, elapsed, source))
                break
            except TransientError as exc:
                if attempt > max_retries:
                    state.fail(index, exc, attempt)
                    break
                time.sleep(backoff_delay(attempt, backoff_base,
                                         point.key()))
                attempt += 1
            except Exception as exc:
                state.fail(index, exc, attempt)
                break


def _sweep_parallel(state: _SweepState, pending: Sequence[int],
                    use_cache: bool, plan: Optional[FaultPlan],
                    jobs: int, max_retries: int,
                    point_timeout: Optional[float],
                    backoff_base: float) -> None:
    """Supervise per-point worker processes.

    Each attempt of each point gets a fresh process, so a crash or a
    terminated hang can never poison a shared pool; the parent is the
    only scheduler, so retries (delayed by deterministic backoff) and
    fresh points interleave freely up to ``jobs`` live workers.
    """
    ctx = multiprocessing.get_context()
    plan_json = plan.to_json() if plan else None
    # (ready_at, index, attempt): ready_at is a monotonic timestamp;
    # retries re-enter the queue with their backoff deadline.
    waiting: List[Tuple[float, int, int]] = [
        (0.0, index, 1) for index in pending
    ]
    live: List[_Live] = []
    try:
        while waiting or live:
            now = time.monotonic()
            waiting.sort()
            while waiting and len(live) < jobs and waiting[0][0] <= now:
                _, index, attempt = waiting.pop(0)
                live.append(_spawn(ctx, state.points[index], index,
                                   attempt, use_cache, plan_json))
            progressed = False
            for worker in list(live):
                outcome = _reap(worker, point_timeout)
                if outcome is None:
                    continue
                live.remove(worker)
                progressed = True
                index, attempt = worker.index, worker.attempt
                point = state.points[index]
                if outcome[0] == "ok":
                    _, stat_state, miss_map, source, elapsed = outcome
                    stats = SimStats.from_state(stat_state)
                    runner.record_source(source)
                    if use_cache:
                        # Workers persisted to disk; mirror into this
                        # process's memory cache too.
                        runner.seed_cache(point.key(), stats, miss_map)
                    state.complete(index, SweepResult(
                        point, stats, miss_map, elapsed, source))
                elif outcome[0] == "error":
                    state.fail(index, RuntimeError(outcome[1]), attempt)
                else:
                    error = _outcome_error(outcome, point.label)
                    if attempt > max_retries:
                        state.fail(index, error, attempt)
                    else:
                        delay = backoff_delay(attempt, backoff_base,
                                              point.key())
                        waiting.append((time.monotonic() + delay,
                                        index, attempt + 1))
            if not progressed:
                time.sleep(_POLL_SECONDS)
    finally:
        # Fail-fast (or an unexpected parent error): reap in-flight
        # workers so no orphan keeps simulating a doomed grid.
        for worker in live:
            worker.proc.terminate()
        for worker in live:
            worker.proc.join(5.0)
            if worker.proc.is_alive():  # pragma: no cover
                worker.proc.kill()
                worker.proc.join()
            try:
                worker.conn.close()
            except OSError:
                pass


def sweep(
    points: Sequence[SweepPoint],
    jobs: int = 1,
    use_cache: bool = True,
    progress: Optional[ProgressFn] = _default_progress,
    max_retries: int = DEFAULT_MAX_RETRIES,
    point_timeout: Optional[float] = None,
    keep_going: bool = False,
    backoff_base: float = DEFAULT_BACKOFF,
    fault_plan: Optional[FaultPlan] = None,
) -> SweepReport:
    """Evaluate every point, fanning out over up to ``jobs`` worker
    processes, and return a :class:`SweepReport`.

    Cached points (memory or disk) are resolved in the parent first;
    only genuinely missing simulations get worker processes, so a warm
    sweep never forks at all.

    Resilience policy:

    * transient failures (worker crash, ``point_timeout`` exceeded,
      injected flaky faults) are retried up to ``max_retries`` times
      with exponential backoff from ``backoff_base`` seconds and
      deterministic per-point jitter;
    * deterministic simulation exceptions are recorded (or raised)
      immediately — retrying a pure function is wasted work;
    * ``keep_going=False`` (default) raises the first terminal
      :class:`PointFailure`; ``keep_going=True`` records it and keeps
      sweeping, returning completed results alongside the failures;
    * ``point_timeout`` is enforced by worker termination and therefore
      needs ``jobs >= 2``; serial sweeps map injected hangs straight to
      timeout failures.

    ``fault_plan`` (or ``REPRO_FAULT_PLAN``) deterministically injects
    failures for testing — see :mod:`repro.experiments.faults`.
    """
    points = list(points)
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    state = _SweepState(points, progress, keep_going)

    pending: List[int] = []
    if use_cache:
        # Resolve warm points in the parent without forking.
        for index, point in enumerate(points):
            start = time.perf_counter()
            hit = runner.peek_cached(point.key())
            if hit is None:
                pending.append(index)
                continue
            stats, miss_map, source = hit
            runner.record_source(source)
            state.complete(index, SweepResult(
                point, stats, miss_map,
                time.perf_counter() - start, source))
    else:
        pending = list(range(len(points)))

    if pending:
        if jobs <= 1:
            _sweep_serial(state, pending, use_cache, fault_plan,
                          max_retries, point_timeout, backoff_base)
        else:
            _sweep_parallel(state, pending, use_cache, fault_plan,
                            min(jobs, len(pending)), max_retries,
                            point_timeout, backoff_base)
    return state.report()


def sweep_grid(
    workloads: Sequence[str],
    prefetchers: Sequence[str] = DEFAULT_PREFETCHERS,
    jobs: int = 1,
    use_cache: bool = True,
    progress: Optional[ProgressFn] = _default_progress,
    include_baseline: bool = True,
    **kwargs,
) -> Dict[str, Dict[str, SweepResult]]:
    """Convenience wrapper: sweep a workload × prefetcher grid and
    return ``{workload: {prefetcher_or_'fdip': SweepResult}}``.

    Point fields (scale, seed, warmup, overrides...) and resilience
    knobs (max_retries, point_timeout, keep_going...) both pass through
    ``kwargs``; failed points are simply absent from the mapping when
    ``keep_going=True``.
    """
    point_fields = {f.name for f in dataclasses.fields(SweepPoint)}
    common = {k: v for k, v in kwargs.items() if k in point_fields}
    policy = {k: v for k, v in kwargs.items() if k not in point_fields}
    points = grid(workloads, prefetchers,
                  include_baseline=include_baseline, **common)
    out: Dict[str, Dict[str, SweepResult]] = {}
    for result in sweep(points, jobs=jobs, use_cache=use_cache,
                        progress=progress, **policy):
        name = result.point.prefetcher or "fdip"
        out.setdefault(result.point.workload, {})[name] = result
    return out


__all__ = [
    "DEFAULT_PREFETCHERS", "DEFAULT_MAX_RETRIES", "DEFAULT_BACKOFF",
    "SweepPoint", "SweepResult", "SweepReport", "PointFailure",
    "grid", "sweep", "sweep_grid",
]
