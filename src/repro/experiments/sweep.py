"""Parallel sweep engine over (workload × prefetcher × config) points.

``runner.run_prefetcher`` evaluates one point; the full §6 grid is
hundreds of points that are completely independent, so this module
fans them out over a ``multiprocessing`` pool.  Workers share the
on-disk result cache (:mod:`repro.experiments.diskcache`), so a sweep
only pays for points nobody has simulated yet, and its results are
visible to every later process.

Guarantees:

* **Determinism** — results are identical to the serial path; a point
  is fully described by its :class:`SweepPoint` and the simulator is
  deterministic, so worker scheduling cannot change any counter
  (asserted by tests/test_determinism.py).
* **Order** — results come back in input order regardless of which
  worker finishes first.
* **Observability** — one progress line per completed point
  (``[ 3/12] beego/mana  sim  1.82s``) so multi-minute grids are
  watchable; pass ``progress=None`` to silence.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cpu.stats import SimStats
from repro.experiments import runner
from repro.experiments.runner import DEFAULT_WARMUP

#: The paper's comparison set (Figures 9-11, Table 2).
DEFAULT_PREFETCHERS = ("efetch", "mana", "eip", "hierarchical")


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One simulation point: the full argument set of
    ``runner.run_prefetcher`` (``prefetcher=None`` = FDIP baseline)."""

    workload: str
    prefetcher: Optional[str] = None
    scale: str = "bench"
    pf_kwargs: Optional[dict] = None
    overrides: Optional[dict] = None
    track_block_misses: bool = False
    warmup: float = DEFAULT_WARMUP
    seed: int = 1

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.prefetcher or 'fdip'}"

    def key(self) -> str:
        return runner.cache_key(
            self.workload, self.prefetcher, scale=self.scale,
            pf_kwargs=self.pf_kwargs, overrides=self.overrides,
            track_block_misses=self.track_block_misses,
            warmup=self.warmup, seed=self.seed,
        )

    def run(self, use_cache: bool = True) -> Tuple[SimStats, Optional[dict]]:
        return runner.run_prefetcher(
            self.workload, self.prefetcher, scale=self.scale,
            pf_kwargs=self.pf_kwargs, overrides=self.overrides,
            track_block_misses=self.track_block_misses,
            warmup=self.warmup, seed=self.seed, use_cache=use_cache,
        )


@dataclasses.dataclass
class SweepResult:
    """A completed point with provenance and timing."""

    point: SweepPoint
    stats: SimStats
    miss_map: Optional[dict]
    seconds: float
    source: str  # "memory" | "disk" | "sim"


ProgressFn = Callable[[str], None]


def _default_progress(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


def grid(
    workloads: Sequence[str],
    prefetchers: Sequence[Optional[str]] = DEFAULT_PREFETCHERS,
    include_baseline: bool = True,
    **common,
) -> List[SweepPoint]:
    """Cross ``workloads × prefetchers`` into sweep points.

    ``common`` forwards to every :class:`SweepPoint` (scale, seed,
    warmup, overrides...).  ``include_baseline`` prepends the FDIP
    point per workload so comparisons never re-simulate it serially.
    """
    points: List[SweepPoint] = []
    for w in workloads:
        if include_baseline:
            points.append(SweepPoint(w, None, **common))
        for name in prefetchers:
            if name in (None, "fdip"):
                continue
            points.append(SweepPoint(w, name, **common))
    return points


def _classify(before: runner.RunCacheStats,
              after: runner.RunCacheStats) -> str:
    if after.simulations > before.simulations:
        return "sim"
    if after.disk_hits > before.disk_hits:
        return "disk"
    return "memory"


def _run_serial(point: SweepPoint,
                use_cache: bool) -> Tuple[SimStats, Optional[dict], str, float]:
    before = runner.run_cache_stats()
    start = time.perf_counter()
    stats, miss_map = point.run(use_cache=use_cache)
    elapsed = time.perf_counter() - start
    source = _classify(before, runner.run_cache_stats()) if use_cache else "sim"
    return stats, miss_map, source, elapsed


def _worker(job: Tuple[int, SweepPoint, bool]):
    """Pool entry point: evaluate one point in a worker process.

    Returns picklable raw state; the parent reassembles ``SimStats``
    and seeds its in-process cache so later same-process calls hit.
    """
    index, point, use_cache = job
    stats, miss_map, source, elapsed = _run_serial(point, use_cache)
    return index, stats.state_dict(), miss_map, source, elapsed


def sweep(
    points: Sequence[SweepPoint],
    jobs: int = 1,
    use_cache: bool = True,
    progress: Optional[ProgressFn] = _default_progress,
) -> List[SweepResult]:
    """Evaluate every point, fanning out over ``jobs`` processes.

    Cached points (memory or disk) are resolved in the parent first;
    only genuinely missing simulations are shipped to the pool, so a
    warm sweep never forks at all.
    """
    points = list(points)
    total = len(points)
    results: List[Optional[SweepResult]] = [None] * total
    done = 0

    def emit(result: SweepResult, index: int) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(
                f"[{done:>{len(str(total))}}/{total}] "
                f"{result.point.label:<28s} {result.source:<6s} "
                f"{result.seconds:6.2f}s"
            )

    if jobs <= 1:
        for i, point in enumerate(points):
            stats, miss_map, source, elapsed = _run_serial(point, use_cache)
            results[i] = SweepResult(point, stats, miss_map, elapsed, source)
            emit(results[i], i)
        return [r for r in results if r is not None]

    pending: List[Tuple[int, SweepPoint]] = []
    if use_cache:
        # Resolve warm points in the parent without forking.
        for i, point in enumerate(points):
            key = point.key()
            start = time.perf_counter()
            hit = runner.peek_cached(key)
            if hit is None:
                pending.append((i, point))
                continue
            stats, miss_map, source = hit
            runner.record_source(source)
            results[i] = SweepResult(point, stats, miss_map,
                                     time.perf_counter() - start, source)
            emit(results[i], i)
    else:
        pending = list(enumerate(points))

    if pending:
        n_workers = min(jobs, len(pending))
        with multiprocessing.Pool(n_workers) as pool:
            jobs_iter = ((i, p, use_cache) for i, p in pending)
            for index, state, miss_map, source, elapsed in (
                    pool.imap_unordered(_worker, jobs_iter)):
                point = points[index]
                stats = SimStats.from_state(state)
                runner.record_source(source)
                if use_cache:
                    # Workers persisted to disk; mirror into this
                    # process's memory cache too.
                    runner.seed_cache(point.key(), stats, miss_map)
                results[index] = SweepResult(point, stats, miss_map,
                                             elapsed, source)
                emit(results[index], index)

    return [r for r in results if r is not None]


def sweep_grid(
    workloads: Sequence[str],
    prefetchers: Sequence[str] = DEFAULT_PREFETCHERS,
    jobs: int = 1,
    use_cache: bool = True,
    progress: Optional[ProgressFn] = _default_progress,
    include_baseline: bool = True,
    **common,
) -> Dict[str, Dict[str, SweepResult]]:
    """Convenience wrapper: sweep a workload × prefetcher grid and
    return ``{workload: {prefetcher_or_'fdip': SweepResult}}``."""
    points = grid(workloads, prefetchers,
                  include_baseline=include_baseline, **common)
    out: Dict[str, Dict[str, SweepResult]] = {}
    for result in sweep(points, jobs=jobs, use_cache=use_cache,
                        progress=progress):
        name = result.point.prefetcher or "fdip"
        out.setdefault(result.point.workload, {})[name] = result
    return out
