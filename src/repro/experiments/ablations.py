"""Ablation studies on HP's design choices (DESIGN.md §6).

These isolate decisions the paper motivates but does not ablate:
record-supersede semantics, num-insts pacing, the replay trigger
point (via initial-segment aggressiveness), and the Bundle divergence
threshold.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import geomean
from repro.experiments.runner import (
    REPRESENTATIVE_WORKLOADS,
    run_baseline,
    run_prefetcher,
)
from repro.workloads.suite import requests_for, workload_params


def _hp_speedup(workloads: Sequence[str], scale: str,
                config: dict) -> float:
    ratios = []
    for w in workloads:
        base, _ = run_baseline(w, scale=scale)
        stats, _ = run_prefetcher(w, "hierarchical", scale=scale,
                                  pf_kwargs={"config": config})
        ratios.append(stats.ipc / base.ipc)
    return geomean(ratios) - 1.0


def ablation_record_policy(
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
) -> Dict[str, float]:
    """Supersede (keep most recent footprint) vs. keep-first-recording."""
    return {
        "supersede": _hp_speedup(workloads, scale, {"supersede": True}),
        "keep_first": _hp_speedup(workloads, scale, {"supersede": False}),
    }


def ablation_pacing(
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
) -> Dict[str, float]:
    """num-insts segment pacing vs. issuing the whole footprint at once."""
    return {
        "paced": _hp_speedup(workloads, scale, {"paced": True}),
        "all_at_once": _hp_speedup(workloads, scale, {"paced": False}),
    }


def ablation_initial_segments(
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
    values: Sequence[int] = (1, 2, 4),
) -> List[Tuple[int, float]]:
    """How many segments to launch unpaced at Bundle start (paper: 2)."""
    return [
        (n, _hp_speedup(workloads, scale, {"initial_segments": n}))
        for n in values
    ]


def ablation_threshold(
    workload: str = "tidb_tpcc",
    scale: str = "bench",
    factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
) -> List[Tuple[int, float, int]]:
    """Sweep the Bundle divergence threshold on one workload.

    Returns (threshold bytes, HP speedup, static bundle count).  Each
    point relinks the binary, so workload caches are cleared — this is
    the most expensive ablation.
    """
    from repro.analysis.metrics import speedup
    from repro.cpu import simulate
    from repro.prefetchers import make_prefetcher

    base_params = workload_params(workload)
    base_threshold = base_params.bundle_threshold
    out: List[Tuple[int, float, int]] = []
    for factor in factors:
        threshold = max(4096, int(base_threshold * factor))
        import copy

        params = copy.deepcopy(base_params)
        params.bundle_threshold = threshold
        from repro.workloads.generator import build_app

        app = build_app(params)
        trace = app.trace(requests_for(workload, scale), seed=1)
        base = simulate(trace)
        hp = simulate(trace, prefetcher=make_prefetcher("hierarchical"))
        out.append((threshold, speedup(hp, base), app.program.n_bundles))
    return out
