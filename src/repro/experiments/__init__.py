"""Experiment harness: one entry point per paper table/figure.

Every artifact in the paper's evaluation has a function here returning
structured results; the scripts under ``benchmarks/`` call these and
print the corresponding rows/series.  Results are cached per
(workload, scale, config, prefetcher, seed) in-process *and* in a
content-addressed on-disk store (see docs/SWEEP_CACHE.md), so figures
sharing runs pay for each simulation once — across processes, not just
within one.  ``repro.experiments.sweep`` fans independent points out
over a process pool.
"""

from repro.experiments.runner import (
    DEFAULT_WARMUP,
    REPRESENTATIVE_WORKLOADS,
    cache_key,
    clear_run_cache,
    compare_all,
    reset_run_cache_stats,
    run_baseline,
    run_cache_stats,
    run_prefetcher,
)
from repro.experiments.errors import (
    CorruptArtifactError,
    DiskFullError,
    ExperimentError,
    PointFailure,
    PointTimeoutError,
    ShardDiedError,
    SweepInterrupted,
    TransientError,
    WorkerCrashError,
)
from repro.experiments.faults import Fault, FaultPlan
from repro.experiments.manifest import (
    GridSample,
    ManifestError,
    SweepManifest,
    load_manifest,
    parse_manifest,
)
from repro.experiments.policies import (
    POLICY_PREFETCHERS,
    fig20_policy_grid,
    fig21_itlb_prefetch,
    policy_overrides,
    policy_sweep,
    tab06_policy_summary,
)
from repro.experiments.slo import (
    SLO_PREFETCHERS,
    fig18_slo_grid,
    fig19_slo_timeline,
    slo_sweep,
    tab05_slo_summary,
)
from repro.experiments.journal import (
    JournalError,
    RunJournal,
    grid_fingerprint,
    list_runs,
    read_run_events,
    run_sweep,
)
from repro.experiments.service import (
    JsonlEventLog,
    ServiceConfig,
    ShutdownRequest,
    follow_events,
    read_events,
    serve_sweep,
    summarize_events,
)
from repro.experiments.sweep import (
    SweepPoint,
    SweepReport,
    SweepResult,
    grid,
    sweep,
    sweep_grid,
)

__all__ = [
    "DEFAULT_WARMUP",
    "REPRESENTATIVE_WORKLOADS",
    "cache_key",
    "run_baseline",
    "run_prefetcher",
    "run_cache_stats",
    "reset_run_cache_stats",
    "compare_all",
    "clear_run_cache",
    "ExperimentError",
    "TransientError",
    "WorkerCrashError",
    "PointTimeoutError",
    "CorruptArtifactError",
    "DiskFullError",
    "ShardDiedError",
    "SweepInterrupted",
    "PointFailure",
    "Fault",
    "FaultPlan",
    "SweepPoint",
    "SweepResult",
    "SweepReport",
    "grid",
    "sweep",
    "sweep_grid",
    "GridSample",
    "ManifestError",
    "SweepManifest",
    "load_manifest",
    "parse_manifest",
    "ServiceConfig",
    "JsonlEventLog",
    "ShutdownRequest",
    "serve_sweep",
    "read_events",
    "follow_events",
    "summarize_events",
    "JournalError",
    "RunJournal",
    "grid_fingerprint",
    "list_runs",
    "read_run_events",
    "run_sweep",
    "SLO_PREFETCHERS",
    "slo_sweep",
    "fig18_slo_grid",
    "tab05_slo_summary",
    "fig19_slo_timeline",
    "POLICY_PREFETCHERS",
    "policy_overrides",
    "policy_sweep",
    "fig20_policy_grid",
    "tab06_policy_summary",
    "fig21_itlb_prefetch",
]
