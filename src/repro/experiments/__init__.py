"""Experiment harness: one entry point per paper table/figure.

Every artifact in the paper's evaluation has a function here returning
structured results; the scripts under ``benchmarks/`` call these and
print the corresponding rows/series.  Results are cached per
(workload, scale, config, prefetcher) within the process so figures
sharing runs (9, 10, 11, T2…) pay for each simulation once.
"""

from repro.experiments.runner import (
    DEFAULT_WARMUP,
    REPRESENTATIVE_WORKLOADS,
    run_baseline,
    run_prefetcher,
    compare_all,
    clear_run_cache,
)

__all__ = [
    "DEFAULT_WARMUP",
    "REPRESENTATIVE_WORKLOADS",
    "run_baseline",
    "run_prefetcher",
    "compare_all",
    "clear_run_cache",
]
