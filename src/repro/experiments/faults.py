"""Deterministic fault injection for the experiment stack.

The resilience layer (worker isolation, retry/backoff, corruption
quarantine) is only trustworthy if it is *tested* against the failures
it claims to survive.  This module describes those failures as data —
a :class:`FaultPlan` of per-point :class:`Fault` records — so the same
plan drives unit tests, the CI chaos job, and ad-hoc what-if runs,
and every injection is reproducible.

Fault kinds
-----------

``crash``
    Worker process exits hard (``os._exit``) before producing a
    result; in serial sweeps, raises
    :class:`~repro.experiments.errors.WorkerCrashError` instead.
``hang``
    Worker sleeps ``seconds`` before running the point, tripping the
    sweep's ``point_timeout``; in serial sweeps (where no supervisor
    can terminate the point) it is mapped directly to
    :class:`~repro.experiments.errors.PointTimeoutError`.
``error``
    Raises a plain :class:`~repro.experiments.errors.TransientError`
    (the generic flaky-then-succeeds case).
``truncate`` / ``bitflip``
    After the point completes and persists its result, its on-disk
    cache entry is truncated / has one byte flipped — exercising the
    checksum-and-quarantine path on the next read.
``shard_kill``
    Scheduler-layer: the shard pool whose index is ``point`` raises
    :class:`~repro.experiments.errors.ShardDiedError` when it claims
    its ``after``-th work unit, exercising the service watchdog
    (requeue + pool restart / width shrink).  ``times`` bounds how
    many pool *incarnations* die (``times=1`` = the restarted pool
    survives).
``parent_signal``
    Scheduler-layer: when the service has resolved ``point`` terminal
    outcomes in this process, ``signum`` (default SIGTERM) is sent to
    the parent itself — deterministic mid-run interruption for the
    graceful-shutdown and resume paths.
``torn_journal``
    Journal-layer: when run-journal segment number ``point`` closes,
    its tail is truncated — a fsync'd-but-killed writer, exercising
    torn-tail recovery on replay.

Targeting: for point-level kinds ``point`` matches either the point's
input index or its ``workload/prefetcher`` label; for the scheduler/
journal kinds above it is a shard index, a resolved-outcome count, or
a segment number.  ``times`` bounds how many *attempts* (or pool
incarnations) are affected (``times=1`` = fail once, succeed on
retry; omitted = every attempt, a persistent fault).

Activation: pass ``sweep(..., fault_plan=FaultPlan(...))``, or set
``REPRO_FAULT_PLAN`` to inline JSON (``{"faults": [...]}``) or to the
path of a JSON file — which is how the CI chaos job injects failures
under an otherwise unmodified test suite.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from repro.experiments.errors import FaultPlanError

__all__ = [
    "CRASH", "HANG", "ERROR", "TRUNCATE", "BITFLIP",
    "SHARD_KILL", "PARENT_SIGNAL", "TORN_JOURNAL",
    "EXEC_KINDS", "CACHE_KINDS", "SCHED_KINDS", "JOURNAL_KINDS",
    "CRASH_EXIT_CODE", "ENV_PLAN",
    "Fault", "FaultPlan", "corrupt_file", "corrupt_cache_entry",
]

CRASH = "crash"
HANG = "hang"
ERROR = "error"
TRUNCATE = "truncate"
BITFLIP = "bitflip"
SHARD_KILL = "shard_kill"
PARENT_SIGNAL = "parent_signal"
TORN_JOURNAL = "torn_journal"

#: Faults applied before the point executes (worker-side).
EXEC_KINDS = frozenset((CRASH, HANG, ERROR))
#: Faults applied to the point's persisted cache entry afterwards.
CACHE_KINDS = frozenset((TRUNCATE, BITFLIP))
#: Scheduler-layer faults (shard pools / the parent process itself).
SCHED_KINDS = frozenset((SHARD_KILL, PARENT_SIGNAL))
#: Run-journal faults (torn segment tails).
JOURNAL_KINDS = frozenset((TORN_JOURNAL,))

#: Exit code used by injected worker crashes — distinctive enough that
#: a test can tell an injected crash from a genuine interpreter death.
CRASH_EXIT_CODE = 73

ENV_PLAN = "REPRO_FAULT_PLAN"


@dataclasses.dataclass(frozen=True)
class Fault:
    """One injected failure, targeted at a sweep point."""

    kind: str
    #: Input index (int) or ``workload/prefetcher`` label (str).
    point: Union[int, str]
    #: Attempts affected: ``None`` = all (persistent), ``N`` = the
    #: first N attempts only (flaky-then-succeeds when N < retries+1).
    times: Optional[int] = None
    #: ``hang`` only: how long the worker sleeps before proceeding.
    seconds: float = 30.0
    #: ``bitflip`` only: byte offset (modulo file size) to flip.
    offset: int = 0
    #: ``shard_kill`` only: the pool dies when it claims its
    #: ``after``-th work unit of one incarnation.
    after: int = 1
    #: ``parent_signal`` only: the signal number to send (SIGTERM).
    signum: int = 15

    def __post_init__(self) -> None:
        if self.kind not in (EXEC_KINDS | CACHE_KINDS | SCHED_KINDS
                             | JOURNAL_KINDS):
            raise FaultPlanError(f"unknown fault kind: {self.kind!r}")
        if self.times is not None and self.times < 1:
            raise FaultPlanError("times must be >= 1 (or omitted)")
        if self.kind in (SCHED_KINDS | JOURNAL_KINDS) \
                and not isinstance(self.point, int):
            raise FaultPlanError(
                f"{self.kind} faults target an integer "
                f"(shard index / outcome count / segment number), "
                f"got {self.point!r}")
        if self.after < 1:
            raise FaultPlanError("after must be >= 1")

    def matches(self, index: int, label: str, attempt: int) -> bool:
        if self.point != index and self.point != label:
            return False
        return self.times is None or attempt <= self.times

    def to_spec(self) -> dict:
        spec = {"kind": self.kind, "point": self.point}
        if self.times is not None:
            spec["times"] = self.times
        if self.kind == HANG:
            spec["seconds"] = self.seconds
        if self.kind == BITFLIP:
            spec["offset"] = self.offset
        if self.kind == SHARD_KILL:
            spec["after"] = self.after
        if self.kind == PARENT_SIGNAL:
            spec["signum"] = self.signum
        return spec


_SPEC_KEYS = {"kind", "point", "times", "seconds", "offset", "after",
              "signum"}


class FaultPlan:
    """An immutable set of :class:`Fault` injections.

    Falsy when empty, so ``if plan:`` reads naturally at the injection
    sites.
    """

    def __init__(self, faults: Sequence[Fault] = ()):
        self.faults: Tuple[Fault, ...] = tuple(faults)

    # -- construction --------------------------------------------------
    @classmethod
    def from_spec(cls, spec: dict) -> "FaultPlan":
        """Build from the JSON-friendly form::

            {"faults": [{"kind": "crash", "point": "beego/eip",
                         "times": 1}, ...]}
        """
        if not isinstance(spec, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        entries = spec.get("faults", [])
        if not isinstance(entries, list):
            raise FaultPlanError("fault plan 'faults' must be a list")
        faults = []
        for entry in entries:
            if not isinstance(entry, dict) or "kind" not in entry \
                    or "point" not in entry:
                raise FaultPlanError(
                    f"fault entry needs 'kind' and 'point': {entry!r}"
                )
            unknown = set(entry) - _SPEC_KEYS
            if unknown:
                raise FaultPlanError(
                    f"unknown fault field(s) {sorted(unknown)} "
                    f"in {entry!r}"
                )
            faults.append(Fault(**entry))
        return cls(faults)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"bad fault plan JSON: {exc}") from exc
        return cls.from_spec(spec)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """Plan from ``REPRO_FAULT_PLAN`` (inline JSON object or a path
        to a JSON file), or None when unset/empty."""
        value = os.environ.get(ENV_PLAN, "").strip()
        if not value:
            return None
        if value.startswith("{"):
            return cls.from_json(value)
        return cls.from_json(Path(value).read_text())

    def to_json(self) -> str:
        """Round-trippable JSON form (also how plans cross the process
        boundary into sweep workers)."""
        return json.dumps({"faults": [f.to_spec() for f in self.faults]},
                          sort_keys=True)

    # -- queries -------------------------------------------------------
    def exec_fault(self, index: int, label: str,
                   attempt: int) -> Optional[Fault]:
        """The first matching pre-execution fault, if any."""
        for fault in self.faults:
            if fault.kind in EXEC_KINDS and \
                    fault.matches(index, label, attempt):
                return fault
        return None

    def shard_fault(self, shard: int, claimed: int,
                    incarnation: int) -> Optional[Fault]:
        """The matching ``shard_kill`` fault when pool ``shard``
        (running its ``incarnation``-th life, 1-based) claims its
        ``claimed``-th unit, else None."""
        for fault in self.faults:
            if fault.kind == SHARD_KILL and fault.point == shard \
                    and claimed == fault.after \
                    and (fault.times is None
                         or incarnation <= fault.times):
                return fault
        return None

    def parent_signal_fault(self, resolved: int) -> Optional[Fault]:
        """The matching ``parent_signal`` fault once ``resolved``
        terminal outcomes have been recorded in this process."""
        for fault in self.faults:
            if fault.kind == PARENT_SIGNAL and fault.point == resolved:
                return fault
        return None

    def journal_faults(self, segment: int) -> Tuple[Fault, ...]:
        """All ``torn_journal`` faults targeting segment ``segment``."""
        return tuple(fault for fault in self.faults
                     if fault.kind == TORN_JOURNAL
                     and fault.point == segment)

    def cache_faults(self, index: int, label: str,
                     attempt: int) -> Tuple[Fault, ...]:
        """All matching post-store cache-corruption faults."""
        return tuple(
            fault for fault in self.faults
            if fault.kind in CACHE_KINDS
            and fault.matches(index, label, attempt)
        )

    def corrupt_cache_entries(self, index: int, label: str, attempt: int,
                              key: str) -> int:
        """Apply matching cache faults to ``key``'s on-disk entry.

        Returns how many corruptions landed (0 when the entry does not
        exist, e.g. the disk cache is disabled).
        """
        return sum(
            1 for fault in self.cache_faults(index, label, attempt)
            if corrupt_cache_entry(key, fault)
        )

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.faults)!r})"


# ----------------------------------------------------------------------
# Artifact corruption primitives
# ----------------------------------------------------------------------
def corrupt_file(path: Union[str, os.PathLike], kind: str = TRUNCATE,
                 offset: int = 0) -> bool:
    """Deterministically damage ``path`` in place.

    ``truncate`` keeps the first third of the file (a torn write);
    ``bitflip`` XORs one byte at ``offset`` (mod size) with 0xFF (media
    rot).  Returns False when the file is missing/empty/unwritable.
    """
    if kind not in CACHE_KINDS:
        raise FaultPlanError(f"not a corruption kind: {kind!r}")
    target = Path(path)
    try:
        data = target.read_bytes()
    except OSError:
        return False
    if not data:
        return False
    try:
        if kind == TRUNCATE:
            target.write_bytes(data[: max(1, len(data) // 3)])
        else:
            i = offset % len(data)
            target.write_bytes(
                data[:i] + bytes([data[i] ^ 0xFF]) + data[i + 1:]
            )
    except OSError:
        return False
    return True


def corrupt_cache_entry(key: str, fault: Fault) -> bool:
    """Damage the disk-cache entry for ``key`` per ``fault``."""
    from repro.experiments import diskcache

    path = diskcache.get_cache().path_for(key)
    return corrupt_file(path, fault.kind, fault.offset)
