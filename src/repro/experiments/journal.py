"""Crash-consistent run journal: durable identity + resume for sweeps.

PR 4 made individual *points* fault-tolerant and the service made
scheduling sharded, but a SIGKILL, OOM, or Ctrl-C anywhere in the
parent used to lose the whole run.  This module gives a sweep a
durable identity on disk — a **run directory** of fsync'd,
seq-numbered JSONL event segments plus a ``meta.json`` — and a resume
path that replays journal + disk cache to skip completed points,
quarantine poison points, and re-enter in-flight points, bit-identical
to an uninterrupted run.

Layout::

    <run root>/<fingerprint[:12]>-<nnnn>/     one run
        meta.json                             fingerprint, total, config
        events-0001.jsonl                     segment per run attempt
        events-0002.jsonl                     (appended by --resume)

The run root defaults to ``<cache root>/runs`` (so ``REPRO_CACHE_DIR``
redirects journal and cache together — resume *requires* the cache,
which holds the actual results) and can be pointed elsewhere with
``REPRO_RUN_DIR``.  The directory name's fingerprint is a SHA-256 over
the grid's point *keys* only — service shape (shards, jobs) may change
between segments, the grid may not.

Crash-consistency contract (docs/RESILIENCE.md): a worker's cache
entry is fsync'd *before* the parent appends the fsync'd ``completed``
record, so a journal-completed point is always cache-recoverable; a
kill between the two just re-enters the point, which resolves warm in
the parent.  Each segment's torn final line (a writer killed
mid-append) is dropped on replay, and records whose ``seq`` does not
advance within a segment (a replayed append) are skipped — so replay
is total for any prefix the journal survived.

Resume semantics (exactly-once across joined segments):

* journal-``completed`` points re-enter **silently** via the disk
  cache (their terminal event lives in the earlier segment);
* journal-``failed`` points are **poisoned** — skipped-with-failure
  (an informational ``poisoned`` event) instead of re-burning their
  retry budget;
* everything else (unscheduled, in-flight, mid-retry) re-enters the
  scheduler and gets exactly one terminal event in the new segment.

The one exception: a journal-completed point whose cache entry was
since lost or quarantined re-enters and earns a second terminal event
— re-simulating is the only correct option, and ``summarize_events``
surfaces the duplicate so the accounting is honest.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments import diskcache, runner
from repro.experiments.errors import ExperimentError, PointFailure
from repro.experiments.faults import FaultPlan, corrupt_file
from repro.experiments.service import (
    JsonlEventLog,
    ServiceConfig,
    ShutdownRequest,
    read_events,
    serve_sweep,
)
from repro.experiments.sweep import (
    ProgressFn,
    SweepPoint,
    SweepReport,
    SweepResult,
    _default_progress,
)

__all__ = [
    "ENV_RUN_DIR", "JournalError", "RunJournal", "grid_fingerprint",
    "runs_root", "list_runs", "read_run_events", "run_sweep",
]

ENV_RUN_DIR = "REPRO_RUN_DIR"

#: ``meta.json`` layout version.
META_VERSION = 1

_META_NAME = "meta.json"
_SEGMENT_FMT = "events-{:04d}.jsonl"
_SEGMENT_GLOB = "events-*.jsonl"
#: Hex digits of the grid fingerprint used in run directory names.
_FP_CHARS = 12


class JournalError(ExperimentError):
    """A run journal could not be created, found, or replayed."""


def runs_root() -> Path:
    """The directory run journals live under: ``REPRO_RUN_DIR`` when
    set, else ``<cache root>/runs`` (which 2-hex shard globbing and
    compaction never touch)."""
    env = os.environ.get(ENV_RUN_DIR, "").strip()
    if env:
        return Path(env)
    return diskcache.get_cache().root / "runs"


def grid_fingerprint(points: Sequence[SweepPoint]) -> str:
    """SHA-256 over the ordered point keys — the run's grid identity.

    Deliberately excludes service shape (shards, jobs, timeouts): a
    resume may reschedule the same grid differently; the results are
    keyed by the points alone.
    """
    blob = json.dumps([point.key() for point in points])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def list_runs(root: Optional[Path] = None,
              fingerprint: Optional[str] = None) -> List[Path]:
    """Existing run directories (oldest first), optionally filtered to
    one grid fingerprint."""
    root = Path(root) if root is not None else runs_root()
    if not root.is_dir():
        return []
    prefix = fingerprint[:_FP_CHARS] + "-" if fingerprint else ""
    return sorted(
        path for path in root.iterdir()
        if path.is_dir() and (path / _META_NAME).is_file()
        and (not prefix or path.name.startswith(prefix))
    )


def _write_meta(run_dir: Path, meta: dict) -> None:
    """Atomic ``meta.json`` write (temp + fsync + rename)."""
    # lint: ordered[atomic-replace]
    tmp = run_dir / (_META_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(meta, fh, sort_keys=True, indent=2)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, run_dir / _META_NAME)
    # lint: ordered-end


def _dedup_segment(events: List[dict]) -> List[dict]:
    """Drop records whose ``seq`` does not advance within one segment
    (a writer that re-appended after a partial failure)."""
    out: List[dict] = []
    last = 0
    for event in events:
        seq = event.get("seq")
        if isinstance(seq, int):
            if seq <= last:
                continue
            last = seq
        out.append(event)
    return out


def read_run_events(run_dir: Union[str, Path]) -> List[dict]:
    """The joined, seq-deduplicated event stream of every segment in
    ``run_dir``, in segment order — what ``repro manifest events`` and
    resume replay consume."""
    run_dir = Path(run_dir)
    events: List[dict] = []
    for segment in sorted(run_dir.glob(_SEGMENT_GLOB)):
        events.extend(_dedup_segment(read_events(segment)))
    return events


@dataclasses.dataclass
class ReplayState:
    """What a journal replay recovered about a previous run attempt."""

    #: index → the ``completed`` event from an earlier segment.
    completed: Dict[int, dict]
    #: index → the ``failed`` event (terminal, retries exhausted).
    failed: Dict[int, dict]
    #: Segments already on disk (= prior run attempts).
    segments: int


class RunJournal:
    """One run directory: identity, durable event sink, replay.

    Build with :meth:`create` (fresh run) or :meth:`resume` (attach to
    an interrupted one); pass :attr:`sink` to
    :func:`~repro.experiments.service.serve_sweep` as an event sink
    and ``close()`` when the segment is finished.
    """

    def __init__(self, run_dir: Path, meta: dict, segment: int):
        self.run_dir = Path(run_dir)
        self.meta = meta
        #: 1-based number of the segment this journal writes.
        self.segment = segment
        #: Set by :func:`run_sweep` on resume: how many completed
        #: points replayed from journal + cache, and how many poison
        #: points were quarantined.
        self.replay_preresolved = 0
        self.replay_poisoned = 0
        self._sink: Optional[JsonlEventLog] = None

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, points: Sequence[SweepPoint],
               config: ServiceConfig,
               root: Optional[Path] = None,
               extra_meta: Optional[dict] = None) -> "RunJournal":
        """Allocate the next free run directory for this grid.

        Creation is atomic (``mkdir`` with ``exist_ok=False``), so two
        racing sweeps of the same grid get distinct run ids.
        """
        root = Path(root) if root is not None else runs_root()
        root.mkdir(parents=True, exist_ok=True)
        fingerprint = grid_fingerprint(points)
        for attempt in range(1, 10000):
            run_dir = root / f"{fingerprint[:_FP_CHARS]}-{attempt:04d}"
            try:
                run_dir.mkdir(exist_ok=False)
            except FileExistsError:
                continue
            break
        else:  # pragma: no cover - 10^4 runs of one grid
            raise JournalError(
                f"no free run directory under {root} for grid "
                f"{fingerprint[:_FP_CHARS]}")
        meta = {
            "version": META_VERSION,
            "run_id": run_dir.name,
            "fingerprint": fingerprint,
            "total": len(points),
            "created": time.time(),
            "config": dataclasses.asdict(config),
        }
        meta.update(extra_meta or {})
        _write_meta(run_dir, meta)
        return cls(run_dir, meta, segment=1)

    @classmethod
    def resume(cls, points: Sequence[SweepPoint],
               run_id: Optional[str] = None,
               root: Optional[Path] = None) -> "RunJournal":
        """Attach to an existing run of this grid, opening the next
        segment.  Without ``run_id`` the most recent matching run is
        picked; with one, the directory must exist and its recorded
        grid must match the points being resumed.
        """
        root = Path(root) if root is not None else runs_root()
        fingerprint = grid_fingerprint(points)
        if run_id is None:
            candidates = list_runs(root, fingerprint)
            if not candidates:
                raise JournalError(
                    f"no resumable run for this grid under {root} "
                    f"(fingerprint {fingerprint[:_FP_CHARS]})")
            run_dir = candidates[-1]
        else:
            run_dir = root / run_id
            if not (run_dir / _META_NAME).is_file():
                raise JournalError(f"no such run: {run_dir}")
        try:
            meta = json.loads(
                (run_dir / _META_NAME).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise JournalError(
                f"{run_dir}: unreadable meta.json: {exc}") from exc
        if meta.get("fingerprint") != fingerprint:
            raise JournalError(
                f"{run_dir.name} was journaled for a different grid "
                f"(fingerprint {str(meta.get('fingerprint'))[:_FP_CHARS]}"
                f" != {fingerprint[:_FP_CHARS]}) — same manifest and "
                "overrides required to resume")
        if meta.get("total") != len(points):
            raise JournalError(
                f"{run_dir.name} journaled {meta.get('total')} points, "
                f"resume grid has {len(points)}")
        existing = sorted(run_dir.glob(_SEGMENT_GLOB))
        if existing:
            last = existing[-1].name
            segment = int(last[len("events-"):-len(".jsonl")]) + 1
        else:
            segment = 1
        return cls(run_dir, meta, segment=segment)

    # -- identity ------------------------------------------------------
    @property
    def run_id(self) -> str:
        return self.run_dir.name

    def segment_path(self, segment: Optional[int] = None) -> Path:
        return self.run_dir / _SEGMENT_FMT.format(
            segment if segment is not None else self.segment)

    # -- replay --------------------------------------------------------
    def replay(self) -> ReplayState:
        """Recover terminal outcomes from every segment *before* the
        one this journal writes."""
        completed: Dict[int, dict] = {}
        failed: Dict[int, dict] = {}
        segments = 0
        for segment in sorted(self.run_dir.glob(_SEGMENT_GLOB)):
            segments += 1
            for event in _dedup_segment(read_events(segment)):
                kind = event.get("event")
                if kind == "completed":
                    completed[event["index"]] = event
                    failed.pop(event["index"], None)
                elif kind == "failed":
                    failed[event["index"]] = event
        return ReplayState(completed=completed, failed=failed,
                           segments=segments)

    # -- the event sink ------------------------------------------------
    @property
    def sink(self) -> JsonlEventLog:
        """The durable (fsync-per-line) sink for this segment."""
        if self._sink is None:
            self._sink = JsonlEventLog(self.segment_path(), fsync=True)
        return self._sink

    def close(self, plan: Optional[FaultPlan] = None) -> None:
        """Close the current segment; with a fault plan, apply any
        injected ``torn_journal`` faults targeting it (simulating a
        writer that died with an unsynced tail)."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None
        if plan:
            for fault in plan.journal_faults(self.segment):
                corrupt_file(self.segment_path(), kind="truncate")

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _failure_from_event(points: Sequence[SweepPoint],
                        event: dict) -> PointFailure:
    """Reconstruct the terminal :class:`PointFailure` a ``failed``
    journal record described."""
    index = event["index"]
    return PointFailure(
        label=event.get("label") or points[index].label,
        index=index,
        kind=event.get("kind", "error"),
        message=event.get("message", "recorded in run journal"),
        attempts=event.get("attempts", 1),
    )


def run_sweep(
    points: Sequence[SweepPoint],
    config: Optional[ServiceConfig] = None,
    events: Union[None, object, Sequence[object]] = None,
    progress: Optional[ProgressFn] = _default_progress,
    fault_plan: Optional[FaultPlan] = None,
    resume: bool = False,
    run_id: Optional[str] = None,
    run_root: Optional[Path] = None,
    handle_signals: bool = False,
    shutdown: Optional[ShutdownRequest] = None,
    extra_meta: Optional[dict] = None,
) -> Tuple[SweepReport, RunJournal]:
    """A journaled (and therefore resumable) :func:`serve_sweep`.

    Fresh runs allocate a run directory and journal every event with
    per-line fsync.  With ``resume=True`` the latest (or ``run_id``'s)
    journal for this grid is replayed first: completed points are
    pre-resolved from the disk cache, failed points are poisoned, and
    only the remainder is scheduled.  Returns the report together with
    the :class:`RunJournal` (whose ``run_id`` is the resume handle).

    Raises :class:`~repro.experiments.errors.SweepInterrupted` — with
    ``run_id`` filled in — when a signal or shutdown request drains
    the run; :class:`JournalError` on identity mismatches, including
    resuming with the cache disabled (the journal records *that* a
    point completed; only the cache holds the result).
    """
    points = list(points)
    if config is None:
        config = ServiceConfig()
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()

    preresolved: Dict[int, SweepResult] = {}
    poisoned: Dict[int, PointFailure] = {}
    if resume:
        if not config.use_cache:
            raise JournalError(
                "cannot resume with the disk cache disabled: the "
                "journal records which points completed, the cache "
                "holds their results")
        journal = RunJournal.resume(points, run_id=run_id,
                                    root=run_root)
        replayed = journal.replay()
        for index, event in sorted(replayed.completed.items()):
            hit = runner.peek_cached(points[index].key())
            if hit is None:
                # Entry lost/quarantined since the journal recorded it:
                # the point re-enters and earns a (duplicate) terminal.
                continue
            stats, miss_map, source = hit
            runner.record_source(source)
            preresolved[index] = SweepResult(
                points[index], stats, miss_map, 0.0, source)
        for index, event in sorted(replayed.failed.items()):
            poisoned[index] = _failure_from_event(points, event)
        journal.replay_preresolved = len(preresolved)
        journal.replay_poisoned = len(poisoned)
    else:
        journal = RunJournal.create(points, config, root=run_root,
                                    extra_meta=extra_meta)

    sinks: List[object] = [journal.sink]
    if events is not None:
        if callable(events):
            sinks.append(events)
        else:
            sinks.extend(events)

    run_info = {"run_id": journal.run_id, "segment": journal.segment}
    try:
        report = serve_sweep(
            points, config, events=sinks, progress=progress,
            fault_plan=fault_plan, preresolved=preresolved,
            poisoned=poisoned, shutdown=shutdown,
            handle_signals=handle_signals, run_info=run_info)
    finally:
        journal.close(plan=fault_plan)
    return report, journal
