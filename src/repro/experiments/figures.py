"""One function per paper figure (motivation §3 and evaluation §7).

Each returns plain data structures; the scripts under ``benchmarks/``
print them as the paper's rows/series.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.footprints import stage_footprints
from repro.analysis.jaccard import trigger_footprint_similarity
from repro.analysis.longrange import (
    long_range_blocks,
    long_range_miss_elimination,
)
from repro.analysis.metrics import compare_run, latency_reduction, speedup
from repro.analysis.reporting import geomean
from repro.experiments.runner import (
    DEFAULT_WARMUP,
    REPRESENTATIVE_WORKLOADS,
    perfect_l1i_speedup,
    run_baseline,
    run_prefetcher,
)
from repro.workloads.cache import get_trace
from repro.workloads.suite import WORKLOAD_NAMES

PREFETCHERS = ("efetch", "mana", "eip", "hierarchical")


def _mean_speedup(prefetcher: str, workloads: Sequence[str], scale: str,
                  pf_kwargs: Optional[dict] = None,
                  overrides: Optional[dict] = None) -> float:
    ratios = []
    for w in workloads:
        base, _ = run_baseline(w, scale=scale, overrides=overrides)
        stats, _ = run_prefetcher(w, prefetcher, scale=scale,
                                  pf_kwargs=pf_kwargs, overrides=overrides)
        ratios.append(stats.ipc / base.ipc)
    return geomean(ratios) - 1.0


# ----------------------------------------------------------------------
# Figure 1 — stage footprints of a TiDB-like workload
# ----------------------------------------------------------------------
def fig01_stage_footprints(workload: str = "tidb_tpcc",
                           scale: str = "bench") -> Dict[str, float]:
    """Average per-stage instruction footprint in KB."""
    trace = get_trace(workload, scale=scale)
    return stage_footprints(trace)


# ----------------------------------------------------------------------
# Figure 2 — look-ahead sensitivity of the fine-grained prefetchers
# ----------------------------------------------------------------------
def fig02_mana_lookahead(
    lookaheads: Sequence[int] = (1, 2, 3, 4, 6, 8),
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
) -> List[Tuple[int, float, float]]:
    """(lookahead, mean accuracy, mean coverage) per point (Fig. 2a)."""
    out = []
    for la in lookaheads:
        accs, covs = [], []
        for w in workloads:
            base, _ = run_baseline(w, scale=scale)
            stats, _ = run_prefetcher(w, "mana", scale=scale,
                                      pf_kwargs={"lookahead": la})
            report = compare_run("mana", stats, base)
            accs.append(report.accuracy)
            covs.append(report.coverage_l1)
        out.append((la, sum(accs) / len(accs), sum(covs) / len(covs)))
    return out


def fig02_efetch_lookahead(
    lookaheads: Sequence[int] = (1, 2, 3, 5, 7, 10),
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
) -> List[Tuple[int, float, float]]:
    """(lookahead, mean accuracy, mean coverage) per point (Fig. 2b)."""
    out = []
    for la in lookaheads:
        accs, covs = [], []
        for w in workloads:
            base, _ = run_baseline(w, scale=scale)
            stats, _ = run_prefetcher(w, "efetch", scale=scale,
                                      pf_kwargs={"lookahead": la})
            report = compare_run("efetch", stats, base)
            accs.append(report.accuracy)
            covs.append(report.coverage_l1)
        out.append((la, sum(accs) / len(accs), sum(covs) / len(covs)))
    return out


def fig02_eip_distance_accuracy(
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
    buckets: Sequence[int] = (4, 8, 16, 32, 64, 128),
) -> List[Tuple[int, float]]:
    """EIP accuracy bucketed by prefetch distance (Fig. 2c).

    EIP has no look-ahead knob; its issued prefetches are grouped by
    trigger-to-use distance.  We approximate the bucketed accuracy by
    sweeping the latency slack (larger slack = earlier trigger = larger
    distance) and reporting (avg distance, accuracy) pairs.
    """
    out = []
    for slack in (5, 15, 30, 60, 120, 240):
        accs, dists = [], []
        for w in workloads:
            stats, _ = run_prefetcher(w, "eip", scale=scale,
                                      pf_kwargs={"latency_slack": slack})
            accs.append(stats.accuracy(2))
            dists.append(stats.avg_distance(2))
        out.append((sum(dists) / len(dists), sum(accs) / len(accs)))
    return out


# ----------------------------------------------------------------------
# Figure 3 — accuracy/coverage vs. average prefetch distance
# ----------------------------------------------------------------------
def fig03_distance_tradeoff(
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
) -> Dict[str, Tuple[float, float, float]]:
    """prefetcher -> (avg distance, accuracy, coverage)."""
    out: Dict[str, Tuple[float, float, float]] = {}
    for name in ("efetch", "mana", "eip"):
        dists, accs, covs = [], [], []
        for w in workloads:
            base, _ = run_baseline(w, scale=scale)
            stats, _ = run_prefetcher(w, name, scale=scale)
            report = compare_run(name, stats, base)
            dists.append(report.avg_distance)
            accs.append(report.accuracy)
            covs.append(report.coverage_l1)
        n = len(workloads)
        out[name] = (sum(dists) / n, sum(accs) / n, sum(covs) / n)
    return out


# ----------------------------------------------------------------------
# Figure 4 — trigger-footprint Jaccard similarity
# ----------------------------------------------------------------------
def fig04_trigger_jaccard(
    footprint_sizes: Sequence[int] = (16, 32, 64, 128, 256, 512),
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
) -> Dict[str, List[float]]:
    """model -> similarity per footprint size."""
    out: Dict[str, List[float]] = {}
    for model in ("efetch", "mana", "eip"):
        series = []
        for size in footprint_sizes:
            values = [
                trigger_footprint_similarity(
                    get_trace(w, scale=scale), model, size
                )
                for w in workloads
            ]
            series.append(sum(values) / len(values))
        out[model] = series
    return out


# ----------------------------------------------------------------------
# Figure 9 — IPC speedups over FDIP (plus §7.1's Perfect L1-I)
# ----------------------------------------------------------------------
def fig09_speedups(
    workloads: Sequence[str] = WORKLOAD_NAMES,
    scale: str = "bench",
) -> Dict[str, Dict[str, float]]:
    """workload -> {prefetcher: speedup, 'perfect_l1i': headroom}."""
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads:
        base, _ = run_baseline(w, scale=scale)
        row: Dict[str, float] = {}
        for name in PREFETCHERS:
            stats, _ = run_prefetcher(w, name, scale=scale)
            row[name] = speedup(stats, base)
        row["perfect_l1i"] = perfect_l1i_speedup(w, scale=scale)
        out[w] = row
    return out


# ----------------------------------------------------------------------
# Figure 10 — late prefetches
# ----------------------------------------------------------------------
def fig10_late_prefetches(
    workloads: Sequence[str] = WORKLOAD_NAMES,
    scale: str = "bench",
) -> Dict[str, Dict[str, float]]:
    """workload -> {prefetcher: late fraction of useful prefetches}."""
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads:
        row = {}
        for name in PREFETCHERS:
            stats, _ = run_prefetcher(w, name, scale=scale)
            row[name] = stats.late_fraction(2)
        out[w] = row
    return out


# ----------------------------------------------------------------------
# Figure 11 — instruction miss latency by serving level
# ----------------------------------------------------------------------
def fig11_miss_latency(
    workloads: Sequence[str] = WORKLOAD_NAMES,
    scale: str = "bench",
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """workload -> prefetcher -> exposed latency by level, normalized to
    the workload's FDIP baseline total."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for w in workloads:
        base, _ = run_baseline(w, scale=scale)
        base_total = base.total_exposed_latency() or 1.0
        rows: Dict[str, Dict[str, float]] = {
            "fdip": {
                k: v / base_total for k, v in base.exposed_latency.items()
            }
        }
        for name in PREFETCHERS:
            stats, _ = run_prefetcher(w, name, scale=scale)
            rows[name] = {
                k: v / base_total for k, v in stats.exposed_latency.items()
            }
        out[w] = rows
    return out


# ----------------------------------------------------------------------
# Figure 12 — long-range L2 miss elimination
# ----------------------------------------------------------------------
def fig12_long_range(
    workloads: Sequence[str] = WORKLOAD_NAMES,
    scale: str = "bench",
    fraction: float = 0.10,
) -> Dict[str, Dict[str, float]]:
    """workload -> {prefetcher: fraction of long-range L2 misses
    eliminated over FDIP}."""
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads:
        trace = get_trace(w, scale=scale)
        start = int(len(trace) * DEFAULT_WARMUP)
        blocks = long_range_blocks(trace, fraction=fraction, start=start)
        _, base_map = run_baseline(w, scale=scale, track_block_misses=True)
        row = {}
        for name in PREFETCHERS:
            _, pf_map = run_prefetcher(
                w, name, scale=scale, track_block_misses=True
            )
            row[name] = long_range_miss_elimination(
                base_map or {}, pf_map or {}, blocks
            )
        out[w] = row
    return out


# ----------------------------------------------------------------------
# Figure 13 — Metadata Address Table / Metadata Buffer sensitivity
# ----------------------------------------------------------------------
def fig13_metadata_sensitivity(
    mat_sizes: Sequence[int] = (64, 128, 256, 512, 1024),
    buffer_kb: Sequence[int] = (64, 128, 256, 512, 1024),
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
) -> Dict[str, List[Tuple[int, float]]]:
    """{'mat': [(entries, mean speedup)...], 'buffer': [(KB, ...)]}."""
    mat_series = [
        (n, _mean_speedup("hierarchical", workloads, scale,
                          pf_kwargs={"config": {"mat_entries": n}}))
        for n in mat_sizes
    ]
    buf_series = [
        (kb, _mean_speedup(
            "hierarchical", workloads, scale,
            pf_kwargs={"config": {"metadata_buffer_bytes": kb * 1024}}))
        for kb in buffer_kb
    ]
    return {"mat": mat_series, "buffer": buf_series}


# ----------------------------------------------------------------------
# Figure 14 — infinite BTB
# ----------------------------------------------------------------------
def fig14_infinite_btb(
    workloads: Sequence[str] = WORKLOAD_NAMES,
    scale: str = "bench",
) -> Dict[str, Dict[str, float]]:
    """workload -> {prefetcher: speedup over FDIP-with-infinite-BTB}."""
    overrides = {"frontend.btb_entries": None}
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads:
        base, _ = run_baseline(w, scale=scale, overrides=overrides)
        row = {}
        for name in PREFETCHERS:
            stats, _ = run_prefetcher(w, name, scale=scale,
                                      overrides=overrides)
            row[name] = speedup(stats, base)
        out[w] = row
    return out


# ----------------------------------------------------------------------
# Figure 15 — FTQ size and I-TLB size
# ----------------------------------------------------------------------
def fig15_ftq(
    sizes: Sequence[int] = (8, 16, 24, 32, 48, 64),
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
) -> List[Tuple[int, float]]:
    """(FTQ entries, mean FDIP IPC normalized to the 24-entry config)."""
    ref = None
    out = []
    for size in sizes:
        ipcs = []
        for w in workloads:
            stats, _ = run_baseline(
                w, scale=scale, overrides={"frontend.ftq_entries": size}
            )
            ipcs.append(stats.ipc)
        mean_ipc = sum(ipcs) / len(ipcs)
        out.append((size, mean_ipc))
    ref = dict(out).get(24) or out[0][1]
    return [(size, ipc / ref) for size, ipc in out]


def fig15_itlb(
    sizes: Sequence[int] = (32, 64, 128, 256),
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
) -> List[Tuple[int, float, float]]:
    """(ITLB entries, mean FDIP IPC, mean HP IPC)."""
    out = []
    for size in sizes:
        base_ipcs, hp_ipcs = [], []
        overrides = {"core.itlb_entries": size}
        for w in workloads:
            base, _ = run_baseline(w, scale=scale, overrides=overrides)
            hp, _ = run_prefetcher(w, "hierarchical", scale=scale,
                                   overrides=overrides)
            base_ipcs.append(base.ipc)
            hp_ipcs.append(hp.ipc)
        out.append((size, sum(base_ipcs) / len(base_ipcs),
                    sum(hp_ipcs) / len(hp_ipcs)))
    return out


# ----------------------------------------------------------------------
# Figure 16 — memory bandwidth overhead
# ----------------------------------------------------------------------
def fig16_bandwidth(
    workloads: Sequence[str] = WORKLOAD_NAMES,
    scale: str = "bench",
) -> Dict[str, Dict[str, float]]:
    """workload -> {'overhead': HP memory traffic normalized to the
    baseline, 'metadata_fraction': share of the extra traffic due to
    metadata reads/writes}.

    Memory traffic counts all memory-side accesses (fills crossing the
    L2<->uncore boundary plus metadata), matching Figure 16's "all
    memory accesses" definition — our data side is not modelled, so
    DRAM-only traffic would be degenerate at this scale.
    """
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads:
        base, _ = run_baseline(w, scale=scale)
        hp, _ = run_prefetcher(w, "hierarchical", scale=scale)
        base_bytes = base.memory_traffic_bytes or 1
        extra = hp.memory_traffic_bytes - base.memory_traffic_bytes
        metadata = hp.metadata_bytes
        out[w] = {
            "overhead": hp.memory_traffic_bytes / base_bytes - 1.0,
            "metadata_fraction": (
                min(1.0, metadata / extra) if extra > 0 else 0.0
            ),
        }
    return out


# ----------------------------------------------------------------------
# Figure 17 — prefetching into the L2
# ----------------------------------------------------------------------
def fig17_l2_prefetch(
    workloads: Sequence[str] = WORKLOAD_NAMES,
    scale: str = "bench",
) -> Dict[str, Dict[str, float]]:
    """workload -> {'l1': HP-to-L1 speedup, 'l2': HP-to-L2 speedup}."""
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads:
        base, _ = run_baseline(w, scale=scale)
        l1, _ = run_prefetcher(w, "hierarchical", scale=scale)
        l2, _ = run_prefetcher(
            w, "hierarchical", scale=scale,
            pf_kwargs={"config": {"target_level": "l2"}},
        )
        out[w] = {"l1": speedup(l1, base), "l2": speedup(l2, base)}
    return out


def fig11_latency_reduction(
    workloads: Sequence[str] = WORKLOAD_NAMES, scale: str = "bench"
) -> Dict[str, Dict[str, float]]:
    """workload -> {prefetcher: fraction of FDIP miss latency removed}."""
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads:
        base, _ = run_baseline(w, scale=scale)
        row = {}
        for name in PREFETCHERS:
            stats, _ = run_prefetcher(w, name, scale=scale)
            row[name] = latency_reduction(stats, base)
        out[w] = row
    return out
