"""Sharded sweep service: manifest-scale grids over multiple local
worker pools, with a streaming JSONL progress protocol.

:func:`repro.experiments.sweep.sweep` supervises one pool of per-point
worker processes.  That is the right shape for a few hundred points on
one box; the 10^3–10^5-point grids a
:mod:`repro.experiments.manifest` can describe want a *service*: an
async scheduler that shards points across several pools, survives
mid-flight failures, and streams progress that a CLI, a dashboard, or
a CI step can tail.

Architecture::

    serve_sweep(points)
      └─ _Scheduler           one queue of WorkUnits + retry deadlines
           ├─ shard 0 ──┐     each shard: an asyncio task supervising
           ├─ shard 1 ──┤     up to ``jobs`` live workers, pulling
           └─ shard N ──┘     WorkUnits and pushing WorkOutcomes

Every attempt of every point crosses the shard boundary as a
:class:`WorkUnit` and comes back as a :class:`WorkOutcome` — both are
flat, JSON-serializable records (``to_spec``/``from_spec``), so a
*remote* worker pool is a transport change (serialize the same two
messages over a socket/queue), not a scheduler change.  Local shards
execute units through the exact per-point worker processes of the
sweep engine (``sweep._spawn`` / ``sweep._reap``), so the PR-4 fault
taxonomy, retry/backoff policy, point timeouts, and crash supervision
apply unchanged, and results are bit-identical to a serial
:func:`~repro.experiments.sweep.sweep` of the same points (asserted by
tests/test_service.py).

Progress events: every scheduling decision is emitted as one JSON
object (``begin``, ``scheduled``, ``completed``, ``retried``,
``failed``, ``end``) with a monotonic ``seq``.  :class:`JsonlEventLog`
appends them to a file as JSON Lines; :func:`read_events` /
:func:`summarize_events` consume the stream and check that every point
is accounted for — the contract the CI ``manifest`` job enforces.
Event emission can never fail a sweep: sink exceptions are swallowed.

``inline=True`` executes units on in-process worker threads instead of
processes (no isolation, ``point_timeout`` unenforced — injected hangs
map straight to timeout failures, like serial sweeps).  It exists for
huge synthetic grids and tests, where forking 10^3 interpreters would
dominate the run; the scheduler, retry policy, and event stream are
identical.
"""

from __future__ import annotations

import asyncio
import dataclasses
import importlib
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cpu.stats import SimStats
from repro.experiments import faults as faults_mod
from repro.experiments import runner
from repro.experiments.errors import (
    PointTimeoutError,
    TransientError,
    WorkerCrashError,
    backoff_delay,
)
from repro.experiments.faults import FaultPlan
from repro.experiments.sweep import (
    DEFAULT_BACKOFF,
    DEFAULT_MAX_RETRIES,
    ProgressFn,
    SweepPoint,
    SweepReport,
    SweepResult,
    _default_progress,
)

# ``repro.experiments`` re-exports the ``sweep()`` *function* under the
# same name as the submodule, so attribute access cannot reach the
# module; resolve it through the import system instead.
sweep_mod = importlib.import_module("repro.experiments.sweep")

__all__ = [
    "EVENT_SCHEMA_VERSION", "ServiceConfig", "WorkUnit", "WorkOutcome",
    "JsonlEventLog", "serve_sweep", "read_events", "summarize_events",
    "format_events_summary",
]

#: Bump when the progress-event layout changes; consumers should check.
EVENT_SCHEMA_VERSION = 1

#: Scheduler poll period while shards supervise live workers.
_POLL_SECONDS = 0.01


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service sweep (shape × resilience policy)."""

    #: Local worker pools ("shards"); each runs an independent
    #: supervision loop over the shared queue.
    shards: int = 2
    #: Live worker processes (or inline threads) per shard.
    jobs: int = 2
    max_retries: int = DEFAULT_MAX_RETRIES
    point_timeout: Optional[float] = None
    keep_going: bool = False
    backoff_base: float = DEFAULT_BACKOFF
    use_cache: bool = True
    #: Execute units on in-process threads instead of worker processes
    #: (tests / synthetic grids; no crash isolation or hang killing).
    inline: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")


# ----------------------------------------------------------------------
# The queue/result protocol
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One attempt of one point, as it crosses a worker-pool boundary."""

    index: int
    attempt: int
    point: SweepPoint

    def to_spec(self) -> dict:
        return {"index": self.index, "attempt": self.attempt,
                "point": dataclasses.asdict(self.point)}

    @classmethod
    def from_spec(cls, spec: dict) -> "WorkUnit":
        return cls(index=spec["index"], attempt=spec["attempt"],
                   point=SweepPoint(**spec["point"]))


#: Terminal ``WorkOutcome.status`` value.
OK = "ok"
#: Retryable statuses, mapped onto the PR-4 error taxonomy.
_TRANSIENT_STATUSES = ("crash", "timeout", "transient")


@dataclasses.dataclass(frozen=True)
class WorkOutcome:
    """What a worker pool reports back for one :class:`WorkUnit`."""

    index: int
    attempt: int
    #: ``ok`` | ``crash`` | ``timeout`` | ``transient`` | ``error``.
    status: str
    stats_state: Optional[dict] = None
    miss_map: Optional[dict] = None
    source: str = "sim"
    seconds: float = 0.0
    message: str = ""
    exitcode: Optional[int] = None
    timeout: Optional[float] = None

    def to_spec(self) -> dict:
        spec = dataclasses.asdict(self)
        return {k: v for k, v in spec.items() if v not in (None, "")}

    @classmethod
    def from_spec(cls, spec: dict) -> "WorkOutcome":
        return cls(**spec)

    def to_error(self, label: str) -> Exception:
        """The taxonomy error for a non-``ok`` outcome (mirrors
        ``sweep._outcome_error`` so retry policy cannot diverge)."""
        if self.status == "crash":
            return WorkerCrashError(
                self.message or f"worker for {label} died "
                                f"(exit code {self.exitcode})",
                exitcode=self.exitcode)
        if self.status == "timeout":
            return PointTimeoutError(
                self.message or f"{label} exceeded point timeout",
                timeout=self.timeout)
        if self.status == "transient":
            return TransientError(self.message)
        return RuntimeError(self.message)


def _outcome_from_reap(unit: WorkUnit, message: Tuple,
                       label: str) -> WorkOutcome:
    """Convert a ``sweep._reap`` outcome tuple into the protocol form."""
    kind = message[0]
    if kind == "ok":
        _, stats_state, miss_map, source, elapsed = message
        return WorkOutcome(unit.index, unit.attempt, OK,
                           stats_state=stats_state, miss_map=miss_map,
                           source=source, seconds=elapsed)
    if kind == "crash":
        return WorkOutcome(
            unit.index, unit.attempt, "crash", exitcode=message[1],
            message=f"worker for {label} died (exit code {message[1]})")
    if kind == "timeout":
        return WorkOutcome(
            unit.index, unit.attempt, "timeout", timeout=message[1],
            message=f"{label} exceeded point timeout "
                    f"({message[1]:.1f}s)")
    if kind == "transient":
        return WorkOutcome(unit.index, unit.attempt, "transient",
                           message=message[1])
    return WorkOutcome(unit.index, unit.attempt, "error",
                       message=message[1])


def _execute_inline(unit: WorkUnit, use_cache: bool,
                    plan: Optional[FaultPlan]) -> WorkOutcome:
    """Run one unit on the calling thread (the ``inline=True`` path).

    Fault mapping matches the serial sweep: ``crash`` → a crash
    outcome, ``hang`` → a timeout outcome (no supervisor can terminate
    an in-process point), ``error`` → a transient outcome.
    """
    point, index, attempt = unit.point, unit.index, unit.attempt
    if plan:
        fault = plan.exec_fault(index, point.label, attempt)
        if fault is not None:
            if fault.kind == faults_mod.CRASH:
                return WorkOutcome(
                    index, attempt, "crash",
                    message=f"injected crash at {point.label}")
            if fault.kind == faults_mod.HANG:
                return WorkOutcome(
                    index, attempt, "timeout",
                    message=f"injected hang at {point.label}")
            return WorkOutcome(
                index, attempt, "transient",
                message=f"injected transient fault at {point.label}")
    try:
        stats, miss_map, source, elapsed = sweep_mod._run_serial(
            point, use_cache)
    except Exception as exc:
        return WorkOutcome(index, attempt, "error",
                           message=f"{type(exc).__name__}: {exc}")
    if plan and use_cache:
        plan.corrupt_cache_entries(index, point.label, attempt,
                                   point.key())
    return WorkOutcome(index, attempt, OK,
                       stats_state=stats.state_dict(),
                       miss_map=miss_map, source=source, seconds=elapsed)


# ----------------------------------------------------------------------
# Progress events
# ----------------------------------------------------------------------
EventSink = Callable[[dict], None]


class _Emitter:
    """Sequence-numbered event fan-out that can never fail the sweep."""

    def __init__(self, sink: Optional[EventSink]):
        self.sink = sink
        self.seq = 0

    def __call__(self, event_type: str, **fields) -> None:
        if self.sink is None:
            return
        self.seq += 1
        event = {"v": EVENT_SCHEMA_VERSION, "seq": self.seq,
                 "event": event_type}
        event.update(fields)
        try:
            self.sink(event)
        except Exception:
            pass  # observability must never break the sweep


class JsonlEventLog:
    """Event sink appending one JSON object per line to ``path``.

    Lines are flushed as written so a tailing consumer (dashboard, the
    CLI progress display, ``tail -f``) sees events live.  Usable as a
    context manager; ``close()`` is idempotent.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")

    def __call__(self, event: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[dict]:
    """Parse a JSONL event stream.

    A torn *final* line (a writer killed mid-append) is dropped; a torn
    line anywhere else is corruption and raises ``ValueError``.
    """
    events: List[dict] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn tail from an interrupted writer
            raise ValueError(
                f"{path}:{lineno}: undecodable event line: {exc}"
            ) from exc
    return events


def summarize_events(events: Sequence[dict]) -> dict:
    """Aggregate a stream into point accounting + retry/failure counts.

    ``missing`` lists point indices with no terminal event — non-empty
    means the stream does not account for the whole grid (a crashed
    service or a truncated artifact).
    """
    total = None
    completed: Dict[int, dict] = {}
    failed: Dict[int, dict] = {}
    retried = 0
    retry_kinds: Dict[str, int] = {}
    sources: Dict[str, int] = {}
    scheduled = 0
    elapsed = None
    for event in events:
        kind = event.get("event")
        if kind == "begin":
            total = event.get("total")
        elif kind == "scheduled":
            scheduled += 1
        elif kind == "completed":
            completed[event["index"]] = event
            source = event.get("source", "sim")
            sources[source] = sources.get(source, 0) + 1
        elif kind == "failed":
            failed[event["index"]] = event
        elif kind == "retried":
            retried += 1
            fk = event.get("kind", "transient")
            retry_kinds[fk] = retry_kinds.get(fk, 0) + 1
        elif kind == "end":
            elapsed = event.get("seconds")
    known = total if total is not None else (
        max(list(completed) + list(failed), default=-1) + 1)
    missing = sorted(set(range(known)) - set(completed) - set(failed))
    return {
        "total": known,
        "completed": len(completed),
        "failed": len(failed),
        "missing": missing,
        "scheduled": scheduled,
        "retried": retried,
        "retry_kinds": retry_kinds,
        "sources": sources,
        "failures": [
            {"index": i, "label": f.get("label"),
             "kind": f.get("kind"), "message": f.get("message")}
            for i, f in sorted(failed.items())
        ],
        "seconds": elapsed,
    }


def format_events_summary(summary: dict) -> str:
    """Human-readable form of :func:`summarize_events` (the CI step
    summary / ``repro manifest events`` output)."""
    lines = [
        f"points:    {summary['total']}",
        f"completed: {summary['completed']}"
        + (f"  ({', '.join(f'{v} {k}' for k, v in sorted(summary['sources'].items()))})"
           if summary["sources"] else ""),
        f"failed:    {summary['failed']}",
        f"retries:   {summary['retried']}"
        + (f"  ({', '.join(f'{v} {k}' for k, v in sorted(summary['retry_kinds'].items()))})"
           if summary["retry_kinds"] else ""),
    ]
    if summary["seconds"] is not None:
        lines.append(f"wall:      {summary['seconds']:.1f}s")
    for failure in summary["failures"]:
        lines.append(f"  FAIL [{failure['index']}] {failure['label']}: "
                     f"{failure['kind']}: {failure['message']}")
    if summary["missing"]:
        lines.append(f"  MISSING terminal events for point(s) "
                     f"{summary['missing']} — stream does not account "
                     "for the grid")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class _Scheduler:
    """Single-threaded (event-loop-confined) queue + result bookkeeping
    shared by every shard."""

    def __init__(self, state: "sweep_mod._SweepState",
                 pending: Sequence[int], config: ServiceConfig,
                 emit: _Emitter):
        self.state = state
        self.config = config
        self.emit = emit
        #: (ready_at, index, attempt) — retries re-enter with deadlines.
        self.waiting: List[Tuple[float, int, int]] = [
            (0.0, index, 1) for index in pending
        ]
        #: Points with no terminal outcome yet (waiting or in flight).
        self.outstanding = set(pending)

    @property
    def finished(self) -> bool:
        return not self.outstanding

    def next_ready(self, now: float,
                   shard: int) -> Optional[WorkUnit]:
        """Pop the next unit whose retry deadline has passed."""
        if not self.waiting:
            return None
        self.waiting.sort()
        if self.waiting[0][0] > now:
            return None
        _, index, attempt = self.waiting.pop(0)
        unit = WorkUnit(index, attempt, self.state.points[index])
        self.emit("scheduled", index=index, label=unit.point.label,
                  attempt=attempt, shard=shard)
        return unit

    def resolve(self, shard: int, unit: WorkUnit,
                outcome: WorkOutcome) -> None:
        """Apply one WorkOutcome: complete, retry, or fail the point.

        Raises the terminal :class:`PointFailure` under fail-fast
        (``keep_going=False``), exactly like the sweep engine.
        """
        index, attempt = unit.index, unit.attempt
        point = self.state.points[index]
        if outcome.status == OK:
            stats = SimStats.from_state(outcome.stats_state)
            if not self.config.inline:
                # Process-pool workers counted/persisted on their side;
                # mirror into this process, as sweep() does.  Inline
                # units already ran (and counted) in this process.
                runner.record_source(outcome.source)
                if self.config.use_cache:
                    runner.seed_cache(point.key(), stats,
                                      outcome.miss_map)
            self.outstanding.discard(index)
            self.emit("completed", index=index, label=point.label,
                      attempt=attempt, shard=shard,
                      source=outcome.source,
                      seconds=round(outcome.seconds, 4))
            self.state.complete(index, SweepResult(
                point, stats, outcome.miss_map, outcome.seconds,
                outcome.source))
            return
        error = outcome.to_error(point.label)
        if outcome.status in _TRANSIENT_STATUSES \
                and attempt <= self.config.max_retries:
            delay = backoff_delay(attempt, self.config.backoff_base,
                                  point.key())
            self.waiting.append((time.monotonic() + delay, index,
                                 attempt + 1))
            self.emit("retried", index=index, label=point.label,
                      attempt=attempt, shard=shard,
                      kind=outcome.status,
                      next_attempt=attempt + 1,
                      delay=round(delay, 4))
            return
        self.outstanding.discard(index)
        self.emit("failed", index=index, label=point.label,
                  attempts=attempt, shard=shard,
                  kind=sweep_mod.PointFailure.from_error(
                      point.label, index, error, attempt).kind,
                  message=str(error))
        self.state.fail(index, error, attempt)


async def _shard_loop(shard: int, sched: _Scheduler,
                      config: ServiceConfig, plan: Optional[FaultPlan],
                      ctx, plan_json: Optional[str]) -> None:
    """One shard: keep up to ``config.jobs`` workers busy until every
    point (on any shard) has a terminal outcome."""
    live: List[Tuple[object, WorkUnit]] = []
    try:
        while True:
            now = time.monotonic()
            while len(live) < config.jobs:
                unit = sched.next_ready(now, shard)
                if unit is None:
                    break
                if config.inline:
                    task = asyncio.ensure_future(asyncio.to_thread(
                        _execute_inline, unit, config.use_cache, plan))
                    live.append((task, unit))
                else:
                    live.append((sweep_mod._spawn(
                        ctx, unit.point, unit.index, unit.attempt,
                        config.use_cache, plan_json), unit))
            progressed = False
            for entry in list(live):
                worker, unit = entry
                if config.inline:
                    if not worker.done():
                        continue
                    outcome = worker.result()
                else:
                    message = sweep_mod._reap(worker,
                                              config.point_timeout)
                    if message is None:
                        continue
                    outcome = _outcome_from_reap(unit, message,
                                                 unit.point.label)
                live.remove(entry)
                progressed = True
                sched.resolve(shard, unit, outcome)
            if not live and sched.finished:
                return
            if not progressed:
                await asyncio.sleep(_POLL_SECONDS)
    finally:
        # Fail-fast, cancellation, or an unexpected scheduler error:
        # reap this shard's in-flight workers so no orphan keeps
        # simulating a doomed grid.
        for worker, _unit in live:
            if config.inline:
                worker.cancel()
            else:
                worker.proc.terminate()
        for worker, _unit in live:
            if config.inline:
                continue
            worker.proc.join(5.0)
            if worker.proc.is_alive():  # pragma: no cover
                worker.proc.kill()
                worker.proc.join()
            try:
                worker.conn.close()
            except OSError:
                pass


async def _serve(sched: _Scheduler, config: ServiceConfig,
                 plan: Optional[FaultPlan]) -> None:
    import multiprocessing

    ctx = None if config.inline else multiprocessing.get_context()
    plan_json = plan.to_json() if (plan and not config.inline) else None
    tasks = [
        asyncio.ensure_future(_shard_loop(
            shard, sched, config, plan, ctx, plan_json))
        for shard in range(config.shards)
    ]
    try:
        await asyncio.gather(*tasks)
    except BaseException:
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        raise


def serve_sweep(
    points: Sequence[SweepPoint],
    config: Optional[ServiceConfig] = None,
    events: Optional[EventSink] = None,
    progress: Optional[ProgressFn] = _default_progress,
    fault_plan: Optional[FaultPlan] = None,
) -> SweepReport:
    """Evaluate every point through the sharded service and return a
    :class:`~repro.experiments.sweep.SweepReport`.

    Semantics match :func:`repro.experiments.sweep.sweep` exactly —
    warm points resolve in the parent without scheduling, transient
    failures retry with deterministic backoff, ``keep_going`` selects
    partial-result collection vs fail-fast — plus the progress-event
    stream (``events``) documented in the module docstring.
    """
    points = list(points)
    if config is None:
        config = ServiceConfig()
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    emit = _Emitter(events)
    state = sweep_mod._SweepState(points, progress, config.keep_going)

    pending: List[int] = []
    cached: List[Tuple[int, SweepResult]] = []
    if config.use_cache:
        for index, point in enumerate(points):
            start = time.perf_counter()
            hit = runner.peek_cached(point.key())
            if hit is None:
                pending.append(index)
                continue
            stats, miss_map, source = hit
            runner.record_source(source)
            cached.append((index, SweepResult(
                point, stats, miss_map,
                time.perf_counter() - start, source)))
    else:
        pending = list(range(len(points)))

    emit("begin", total=len(points), cached=len(cached),
         shards=config.shards, jobs=config.jobs,
         inline=config.inline)
    for index, result in cached:
        emit("completed", index=index, label=result.point.label,
             attempt=0, shard=None, source=result.source,
             seconds=round(result.seconds, 4))
        state.complete(index, result)

    started = time.monotonic()
    try:
        if pending:
            sched = _Scheduler(state, pending, config, emit)
            asyncio.run(_serve(sched, config, fault_plan))
    finally:
        emit("end",
             completed=sum(1 for r in state.results if r is not None),
             failed=len(state.failures),
             seconds=round(time.monotonic() - started, 4))
    return state.report()
