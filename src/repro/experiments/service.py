"""Sharded sweep service: manifest-scale grids over multiple local
worker pools, with a streaming JSONL progress protocol.

:func:`repro.experiments.sweep.sweep` supervises one pool of per-point
worker processes.  That is the right shape for a few hundred points on
one box; the 10^3–10^5-point grids a
:mod:`repro.experiments.manifest` can describe want a *service*: an
async scheduler that shards points across several pools, survives
mid-flight failures, and streams progress that a CLI, a dashboard, or
a CI step can tail.

Architecture::

    serve_sweep(points)
      └─ _Scheduler           one queue of WorkUnits + retry deadlines
           ├─ shard 0 ──┐     each shard: an asyncio task supervising
           ├─ shard 1 ──┤     up to ``jobs`` live workers, pulling
           └─ shard N ──┘     WorkUnits and pushing WorkOutcomes

Every attempt of every point crosses the shard boundary as a
:class:`WorkUnit` and comes back as a :class:`WorkOutcome` — both are
flat, JSON-serializable records (``to_spec``/``from_spec``), so a
*remote* worker pool is a transport change (serialize the same two
messages over a socket/queue), not a scheduler change.  Local shards
execute units through the exact per-point worker processes of the
sweep engine (``sweep._spawn`` / ``sweep._reap``), so the PR-4 fault
taxonomy, retry/backoff policy, point timeouts, and crash supervision
apply unchanged, and results are bit-identical to a serial
:func:`~repro.experiments.sweep.sweep` of the same points (asserted by
tests/test_service.py).

Progress events: every scheduling decision is emitted as one JSON
object (``begin``, ``scheduled``, ``completed``, ``retried``,
``failed``, ``end``) with a monotonic ``seq``.  :class:`JsonlEventLog`
appends them to a file as JSON Lines; :func:`read_events` /
:func:`summarize_events` consume the stream and check that every point
is accounted for — the contract the CI ``manifest`` job enforces.
Event emission can never fail a sweep: sink exceptions are swallowed.
:mod:`repro.experiments.journal` promotes this stream into a durable
**run journal** (fsync'd appends under a per-run directory) that
``repro sweep --resume`` replays.

Run-level self-healing (docs/RESILIENCE.md):

* **Graceful shutdown** — pass ``handle_signals=True`` (or an explicit
  :class:`ShutdownRequest`) and SIGINT/SIGTERM stop the scheduler:
  in-flight workers are reaped, completed points are kept, the event
  stream gets an ``end`` record with ``status="interrupted"``, and
  :class:`~repro.experiments.errors.SweepInterrupted` carries the
  partial report out.
* **Shard watchdogs** — shard loops emit throttled ``heartbeat``
  events; the supervisor restarts a pool that died (or whose heartbeat
  stalled past ``watchdog_timeout``), requeueing its in-flight units
  (``requeued`` events, no retry budget burned).  A pool that keeps
  dying past ``max_pool_restarts`` is *retired* — the run degrades to
  fewer shards instead of failing — and only when no pool survives
  does the shard error escape.
* **Replay hooks** — ``preresolved`` results (journal-completed points
  recovered from the disk cache) enter the report without new events;
  ``poisoned`` failures (points that already exhausted retries in a
  previous run) are skipped-with-failure, emitting an informational
  ``poisoned`` event instead of re-burning their retry budget.

``inline=True`` executes units on in-process worker threads instead of
processes (no isolation, ``point_timeout`` unenforced — injected hangs
map straight to timeout failures, like serial sweeps).  It exists for
huge synthetic grids and tests, where forking 10^3 interpreters would
dominate the run; the scheduler, retry policy, and event stream are
identical.
"""

from __future__ import annotations

import asyncio
import dataclasses
import importlib
import json
import os
import signal
import threading
import time
from pathlib import Path
from typing import (
    Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union,
)

from repro.cpu.stats import SimStats
from repro.experiments import faults as faults_mod
from repro.experiments import runner
from repro.experiments.errors import (
    EventStreamError,
    ExperimentError,
    InvalidConfigError,
    PointFailure,
    PointTimeoutError,
    ShardDiedError,
    SweepInterrupted,
    TransientError,
    WorkerCrashError,
    backoff_delay,
)
from repro.experiments.faults import FaultPlan
from repro.experiments.sweep import (
    DEFAULT_BACKOFF,
    DEFAULT_MAX_RETRIES,
    ProgressFn,
    SweepPoint,
    SweepReport,
    SweepResult,
    _default_progress,
)

# ``repro.experiments`` re-exports the ``sweep()`` *function* under the
# same name as the submodule, so attribute access cannot reach the
# module; resolve it through the import system instead.
sweep_mod = importlib.import_module("repro.experiments.sweep")

__all__ = [
    "EVENT_SCHEMA", "EVENT_SCHEMA_VERSION",
    "ServiceConfig", "WorkUnit", "WorkOutcome",
    "JsonlEventLog", "ShutdownRequest", "serve_sweep", "read_events",
    "follow_events", "summarize_events", "format_events_summary",
]

#: Bump when the progress-event layout changes; consumers should check.
#: v2 adds run-lifecycle events (``heartbeat``, ``requeued``,
#: ``poisoned``, ``pool_restarted``, ``pool_retired``) and the
#: ``status`` field on ``end`` records.
EVENT_SCHEMA_VERSION = 2

#: Declarative v2 event schema: kind -> required / optional payload
#: keys.  The :class:`_Emitter` envelope (``v``, ``seq``, ``event``)
#: is implicit and not listed.  This table is the single source of
#: truth the ``event-schema`` lint rule checks every ``emit(...)``
#: site and consumer against — add the key here *first* when growing
#: an event, or the emit site becomes a lint error.
EVENT_SCHEMA = {
    "begin": {
        "required": ("total", "cached", "preresolved", "poisoned",
                     "shards", "jobs", "inline"),
        "optional": ("run_id", "segment"),
    },
    "scheduled": {
        "required": ("index", "label", "attempt", "shard"),
    },
    "requeued": {
        "required": ("index", "label", "attempt", "shard"),
    },
    "completed": {
        "required": ("index", "label", "attempt", "shard", "source",
                     "seconds"),
    },
    "retried": {
        "required": ("index", "label", "attempt", "shard", "kind",
                     "next_attempt", "delay"),
    },
    "failed": {
        "required": ("index", "label", "attempts", "shard", "kind",
                     "message"),
    },
    "poisoned": {
        "required": ("index", "label", "kind", "attempts", "message"),
    },
    "heartbeat": {
        "required": ("shard", "incarnation", "live", "outstanding"),
    },
    "pool_restarted": {
        "required": ("shard", "incarnation", "requeued", "error"),
    },
    "pool_retired": {
        "required": ("shard", "requeued", "remaining", "error"),
    },
    "end": {
        "required": ("status", "completed", "failed", "seconds"),
    },
}

#: Scheduler poll period while shards supervise live workers.
_POLL_SECONDS = 0.01


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service sweep (shape × resilience policy)."""

    #: Local worker pools ("shards"); each runs an independent
    #: supervision loop over the shared queue.
    shards: int = 2
    #: Live worker processes (or inline threads) per shard.
    jobs: int = 2
    max_retries: int = DEFAULT_MAX_RETRIES
    point_timeout: Optional[float] = None
    keep_going: bool = False
    backoff_base: float = DEFAULT_BACKOFF
    use_cache: bool = True
    #: Execute units on in-process threads instead of worker processes
    #: (tests / synthetic grids; no crash isolation or hang killing).
    inline: bool = False
    #: Minimum seconds between ``heartbeat`` events per shard (0
    #: disables heartbeat emission; liveness tracking still runs).
    heartbeat_interval: float = 5.0
    #: Supervisor declares a shard stalled when its heartbeat is older
    #: than this many seconds (None disables stall detection; dead-task
    #: detection is always on).
    watchdog_timeout: Optional[float] = None
    #: How many times one shard's pool may be restarted after dying
    #: before the shard is retired (the run shrinks, it does not fail).
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise InvalidConfigError(
                f"shards must be >= 1, got {self.shards}")
        if self.jobs < 1:
            raise InvalidConfigError(
                f"jobs must be >= 1, got {self.jobs}")
        if self.max_pool_restarts < 0:
            raise InvalidConfigError(
                f"max_pool_restarts must be >= 0, "
                f"got {self.max_pool_restarts}")


# ----------------------------------------------------------------------
# The queue/result protocol
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One attempt of one point, as it crosses a worker-pool boundary."""

    index: int
    attempt: int
    point: SweepPoint

    def to_spec(self) -> dict:
        return {"index": self.index, "attempt": self.attempt,
                "point": dataclasses.asdict(self.point)}

    @classmethod
    def from_spec(cls, spec: dict) -> "WorkUnit":
        return cls(index=spec["index"], attempt=spec["attempt"],
                   point=SweepPoint(**spec["point"]))


#: Terminal ``WorkOutcome.status`` value.
OK = "ok"
#: Retryable statuses, mapped onto the PR-4 error taxonomy.
_TRANSIENT_STATUSES = ("crash", "timeout", "transient")


@dataclasses.dataclass(frozen=True)
class WorkOutcome:
    """What a worker pool reports back for one :class:`WorkUnit`."""

    index: int
    attempt: int
    #: ``ok`` | ``crash`` | ``timeout`` | ``transient`` | ``error``.
    status: str
    stats_state: Optional[dict] = None
    miss_map: Optional[dict] = None
    source: str = "sim"
    seconds: float = 0.0
    message: str = ""
    exitcode: Optional[int] = None
    timeout: Optional[float] = None

    def to_spec(self) -> dict:
        spec = dataclasses.asdict(self)
        return {k: v for k, v in spec.items() if v not in (None, "")}

    @classmethod
    def from_spec(cls, spec: dict) -> "WorkOutcome":
        return cls(**spec)

    def to_error(self, label: str) -> Exception:
        """The taxonomy error for a non-``ok`` outcome (mirrors
        ``sweep._outcome_error`` so retry policy cannot diverge)."""
        if self.status == "crash":
            return WorkerCrashError(
                self.message or f"worker for {label} died "
                                f"(exit code {self.exitcode})",
                exitcode=self.exitcode)
        if self.status == "timeout":
            return PointTimeoutError(
                self.message or f"{label} exceeded point timeout",
                timeout=self.timeout)
        if self.status == "transient":
            return TransientError(self.message)
        return ExperimentError(self.message)


def _outcome_from_reap(unit: WorkUnit, message: Tuple,
                       label: str) -> WorkOutcome:
    """Convert a ``sweep._reap`` outcome tuple into the protocol form."""
    kind = message[0]
    if kind == "ok":
        _, stats_state, miss_map, source, elapsed = message
        return WorkOutcome(unit.index, unit.attempt, OK,
                           stats_state=stats_state, miss_map=miss_map,
                           source=source, seconds=elapsed)
    if kind == "crash":
        return WorkOutcome(
            unit.index, unit.attempt, "crash", exitcode=message[1],
            message=f"worker for {label} died (exit code {message[1]})")
    if kind == "timeout":
        return WorkOutcome(
            unit.index, unit.attempt, "timeout", timeout=message[1],
            message=f"{label} exceeded point timeout "
                    f"({message[1]:.1f}s)")
    if kind == "transient":
        return WorkOutcome(unit.index, unit.attempt, "transient",
                           message=message[1])
    return WorkOutcome(unit.index, unit.attempt, "error",
                       message=message[1])


def _execute_inline(unit: WorkUnit, use_cache: bool,
                    plan: Optional[FaultPlan]) -> WorkOutcome:
    """Run one unit on the calling thread (the ``inline=True`` path).

    Fault mapping matches the serial sweep: ``crash`` → a crash
    outcome, ``hang`` → a timeout outcome (no supervisor can terminate
    an in-process point), ``error`` → a transient outcome.
    """
    point, index, attempt = unit.point, unit.index, unit.attempt
    if plan:
        fault = plan.exec_fault(index, point.label, attempt)
        if fault is not None:
            if fault.kind == faults_mod.CRASH:
                return WorkOutcome(
                    index, attempt, "crash",
                    message=f"injected crash at {point.label}")
            if fault.kind == faults_mod.HANG:
                return WorkOutcome(
                    index, attempt, "timeout",
                    message=f"injected hang at {point.label}")
            return WorkOutcome(
                index, attempt, "transient",
                message=f"injected transient fault at {point.label}")
    try:
        stats, miss_map, source, elapsed = sweep_mod._run_serial(
            point, use_cache)
    except Exception as exc:
        return WorkOutcome(index, attempt, "error",
                           message=f"{type(exc).__name__}: {exc}")
    if plan and use_cache:
        plan.corrupt_cache_entries(index, point.label, attempt,
                                   point.key())
    return WorkOutcome(index, attempt, OK,
                       stats_state=stats.state_dict(),
                       miss_map=miss_map, source=source, seconds=elapsed)


# ----------------------------------------------------------------------
# Progress events
# ----------------------------------------------------------------------
EventSink = Callable[[dict], None]


class _Emitter:
    """Sequence-numbered event fan-out that can never fail the sweep.

    Accepts one sink, a sequence of sinks (the journal plus an
    ``--events`` file, say), or None.
    """

    def __init__(self,
                 sink: Union[EventSink, Sequence[EventSink], None]):
        if sink is None:
            self.sinks: Tuple[EventSink, ...] = ()
        elif callable(sink):
            self.sinks = (sink,)
        else:
            self.sinks = tuple(s for s in sink if s is not None)
        self.seq = 0

    def __call__(self, event_type: str, **fields) -> None:
        if not self.sinks:
            return
        self.seq += 1
        event = {"v": EVENT_SCHEMA_VERSION, "seq": self.seq,
                 "event": event_type}
        event.update(fields)
        for sink in self.sinks:
            try:
                sink(event)
            except Exception:
                pass  # observability must never break the sweep


class JsonlEventLog:
    """Event sink appending one JSON object per line to ``path``.

    Lines are flushed as written so a tailing consumer (dashboard, the
    CLI progress display, ``tail -f``) sees events live.  With
    ``fsync=True`` every line is also fsync'd — the crash-durability
    mode the run journal uses, where a journaled record must survive a
    SIGKILL of the writer.  ``append=True`` keeps an existing file's
    contents (journal segments never overwrite).  Usable as a context
    manager; ``close()`` is idempotent.
    """

    def __init__(self, path: Union[str, Path], append: bool = False,
                 fsync: bool = False):
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._fh = open(self.path, "a" if append else "w",
                        encoding="utf-8")

    def __call__(self, event: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[dict]:
    """Parse a JSONL event stream.

    A torn *final* line (a writer killed mid-append) is dropped; a torn
    line anywhere else is corruption and raises
    :class:`~repro.experiments.errors.EventStreamError` (a
    ``ValueError`` subclass).
    """
    events: List[dict] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn tail from an interrupted writer
            raise EventStreamError(
                f"{path}:{lineno}: undecodable event line: {exc}"
            ) from exc
    return events


def follow_events(path: Union[str, Path], poll: float = 0.2,
                  timeout: Optional[float] = None,
                  stop: Optional[Callable[[], bool]] = None,
                  ) -> Iterator[dict]:
    """Tail a live JSONL event stream, yielding events as they land.

    The minimal-CLI dashboard primitive (``repro manifest events
    --follow``): starts from the top of the file (which may not exist
    yet), sleeps ``poll`` seconds between reads, and returns after an
    ``end`` event, when ``stop()`` goes true, or after ``timeout``
    seconds of wall time.  A partially written final line is simply
    retried on the next poll.
    """
    deadline = (None if timeout is None
                else time.monotonic() + timeout)
    buffer = ""
    position = 0
    while True:
        chunk = ""
        try:
            with open(path, "r", encoding="utf-8") as fh:
                fh.seek(position)
                chunk = fh.read()
                position = fh.tell()
        except OSError:
            pass  # not created yet (or vanished): keep polling
        buffer += chunk
        while "\n" in buffer:
            line, buffer = buffer.split("\n", 1)
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn mid-write; complete lines still flow
            yield event
            if event.get("event") == "end":
                return
        if stop is not None and stop():
            return
        if deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(poll)


def summarize_events(events: Sequence[dict]) -> dict:
    """Aggregate a stream into point accounting + retry/failure counts.

    ``missing`` lists point indices with no terminal event — non-empty
    means the stream does not account for the whole grid (a crashed
    service or a truncated artifact).  ``duplicates`` lists indices
    with *more than one* terminal event — the exactly-once check for
    resumed runs, whose joined journal segments must still yield one
    terminal per point (``poisoned`` records are informational, not
    terminal: the poison point's ``failed`` record lives in an earlier
    segment).  ``segments`` counts ``begin`` records, i.e. how many
    run attempts the stream joins; ``status`` is the last ``end``
    record's status (``ok`` / ``failed`` / ``interrupted``, or None
    for a stream still missing its trailer).  ``unknown`` tallies
    event kinds outside :data:`EVENT_SCHEMA` (a newer writer's
    stream): counted for visibility, never fatal.
    """
    total = None
    completed: Dict[int, dict] = {}
    failed: Dict[int, dict] = {}
    terminal_counts: Dict[int, int] = {}
    poisoned: Dict[int, dict] = {}
    retried = 0
    retry_kinds: Dict[str, int] = {}
    sources: Dict[str, int] = {}
    scheduled = 0
    requeued = 0
    heartbeats = 0
    pool_restarts = 0
    pool_retired = 0
    segments = 0
    elapsed = None
    status = None
    unknown: Dict[str, int] = {}
    for event in events:
        kind = event.get("event")
        if kind == "begin":
            segments += 1
            if event.get("total") is not None:
                total = event.get("total")
        elif kind == "scheduled":
            scheduled += 1
        elif kind == "completed":
            completed[event["index"]] = event
            terminal_counts[event["index"]] = \
                terminal_counts.get(event["index"], 0) + 1
            source = event.get("source", "sim")
            sources[source] = sources.get(source, 0) + 1
        elif kind == "failed":
            failed[event["index"]] = event
            terminal_counts[event["index"]] = \
                terminal_counts.get(event["index"], 0) + 1
        elif kind == "poisoned":
            poisoned[event["index"]] = event
        elif kind == "retried":
            retried += 1
            fk = event.get("kind", "transient")
            retry_kinds[fk] = retry_kinds.get(fk, 0) + 1
        elif kind == "requeued":
            requeued += 1
        elif kind == "heartbeat":
            heartbeats += 1
        elif kind == "pool_restarted":
            pool_restarts += 1
        elif kind == "pool_retired":
            pool_retired += 1
        elif kind == "end":
            elapsed = event.get("seconds")
            status = event.get("status", status)
        else:
            # A kind this schema version does not know (a newer writer,
            # or garbage): counted, never fatal — old readers must keep
            # working on streams from newer services.
            unknown[str(kind)] = unknown.get(str(kind), 0) + 1
    known = total if total is not None else (
        max(list(completed) + list(failed), default=-1) + 1)
    missing = sorted(set(range(known)) - set(completed) - set(failed))
    duplicates = sorted(i for i, n in terminal_counts.items() if n > 1)
    return {
        "total": known,
        "completed": len(completed),
        "failed": len(failed),
        "missing": missing,
        "duplicates": duplicates,
        "poisoned": sorted(poisoned),
        "scheduled": scheduled,
        "retried": retried,
        "retry_kinds": retry_kinds,
        "requeued": requeued,
        "heartbeats": heartbeats,
        "pool_restarts": pool_restarts,
        "pool_retired": pool_retired,
        "segments": segments,
        "status": status,
        "sources": sources,
        "unknown": unknown,
        "failures": [
            {"index": i, "label": f.get("label"),
             "kind": f.get("kind"), "message": f.get("message")}
            for i, f in sorted(failed.items())
        ],
        "seconds": elapsed,
    }


def format_events_summary(summary: dict) -> str:
    """Human-readable form of :func:`summarize_events` (the CI step
    summary / ``repro manifest events`` output)."""
    lines = [
        f"points:    {summary['total']}",
        f"completed: {summary['completed']}"
        + (f"  ({', '.join(f'{v} {k}' for k, v in sorted(summary['sources'].items()))})"
           if summary["sources"] else ""),
        f"failed:    {summary['failed']}",
        f"retries:   {summary['retried']}"
        + (f"  ({', '.join(f'{v} {k}' for k, v in sorted(summary['retry_kinds'].items()))})"
           if summary["retry_kinds"] else ""),
    ]
    if summary.get("status") is not None:
        lines.insert(0, f"status:    {summary['status']}")
    if summary.get("segments", 0) > 1:
        lines.append(f"segments:  {summary['segments']} "
                     "(resumed run — joined journal)")
    if summary.get("poisoned"):
        lines.append(f"poisoned:  {len(summary['poisoned'])} "
                     f"(quarantined on resume: {summary['poisoned']})")
    if summary.get("requeued"):
        lines.append(f"requeued:  {summary['requeued']}")
    if summary.get("unknown"):
        lines.append(
            "unknown:   "
            + ", ".join(f"{v} {k}"
                        for k, v in sorted(summary["unknown"].items()))
            + " (kinds from a newer schema version; ignored)")
    if summary.get("pool_restarts") or summary.get("pool_retired"):
        lines.append(f"pools:     {summary['pool_restarts']} "
                     f"restarted, {summary['pool_retired']} retired")
    if summary["seconds"] is not None:
        lines.append(f"wall:      {summary['seconds']:.1f}s")
    for failure in summary["failures"]:
        lines.append(f"  FAIL [{failure['index']}] {failure['label']}: "
                     f"{failure['kind']}: {failure['message']}")
    if summary["missing"]:
        lines.append(f"  MISSING terminal events for point(s) "
                     f"{summary['missing']} — stream does not account "
                     "for the grid")
    if summary.get("duplicates"):
        lines.append(f"  DUPLICATE terminal events for point(s) "
                     f"{summary['duplicates']} — exactly-once "
                     "accounting violated")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class ShutdownRequest:
    """Thread- and signal-safe stop flag for :func:`serve_sweep`.

    ``request()`` may be called from a signal handler, another thread,
    or a test; the supervisor polls ``requested()`` and drains the run
    (reap in-flight workers, keep completed points, write an
    ``end{status=interrupted}`` record, raise
    :class:`~repro.experiments.errors.SweepInterrupted`).
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        #: The signal number that triggered the request, when one did.
        self.signum: Optional[int] = None

    def request(self, signum: Optional[int] = None) -> None:
        if signum is not None:
            self.signum = signum
        self._event.set()

    def requested(self) -> bool:
        return self._event.is_set()


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
class _Scheduler:
    """Single-threaded (event-loop-confined) queue + result bookkeeping
    shared by every shard."""

    def __init__(self, state: "sweep_mod._SweepState",
                 pending: Sequence[int], config: ServiceConfig,
                 emit: _Emitter, plan: Optional[FaultPlan] = None):
        self.state = state
        self.config = config
        self.emit = emit
        self.plan = plan
        #: (ready_at, index, attempt) — retries re-enter with deadlines.
        self.waiting: List[Tuple[float, int, int]] = [
            (0.0, index, 1) for index in pending
        ]
        #: Points with no terminal outcome yet (waiting or in flight).
        self.outstanding = set(pending)
        #: Units claimed by each shard and not yet resolved — what the
        #: watchdog requeues when the shard's pool dies.
        self.in_flight: Dict[int, List[WorkUnit]] = {}
        #: Last liveness timestamp per shard (monotonic clock).
        self.heartbeats: Dict[int, float] = {}
        #: Terminal outcomes resolved so far (parent-signal faults key
        #: off this count).
        self.resolved = 0

    @property
    def finished(self) -> bool:
        return not self.outstanding

    def next_ready(self, now: float,
                   shard: int) -> Optional[WorkUnit]:
        """Pop the next unit whose retry deadline has passed."""
        if not self.waiting:
            return None
        self.waiting.sort()
        if self.waiting[0][0] > now:
            return None
        _, index, attempt = self.waiting.pop(0)
        unit = WorkUnit(index, attempt, self.state.points[index])
        self.in_flight.setdefault(shard, []).append(unit)
        self.emit("scheduled", index=index, label=unit.point.label,
                  attempt=attempt, shard=shard)
        return unit

    def requeue_shard(self, shard: int) -> int:
        """Return a dead shard's claimed-but-unresolved units to the
        queue, same attempt number (a pool death is not the point's
        fault — no retry budget is burned)."""
        units = self.in_flight.pop(shard, [])
        now = time.monotonic()
        for unit in units:
            self.waiting.append((now, unit.index, unit.attempt))
            self.emit("requeued", index=unit.index,
                      label=unit.point.label, attempt=unit.attempt,
                      shard=shard)
        return len(units)

    def _terminal(self) -> None:
        """Bookkeeping common to both terminal branches; fires any
        matching injected parent signal."""
        self.resolved += 1
        if self.plan:
            fault = self.plan.parent_signal_fault(self.resolved)
            if fault is not None:
                os.kill(os.getpid(), fault.signum)

    def resolve(self, shard: int, unit: WorkUnit,
                outcome: WorkOutcome) -> None:
        """Apply one WorkOutcome: complete, retry, or fail the point.

        Raises the terminal :class:`PointFailure` under fail-fast
        (``keep_going=False``), exactly like the sweep engine.
        """
        index, attempt = unit.index, unit.attempt
        point = self.state.points[index]
        claimed = self.in_flight.get(shard)
        if claimed and unit in claimed:
            claimed.remove(unit)
        if outcome.status == OK:
            stats = SimStats.from_state(outcome.stats_state)
            # lint: ordered[persist-before-append]
            if not self.config.inline:
                # Process-pool workers counted/persisted on their side;
                # mirror into this process, as sweep() does.  Inline
                # units already ran (and counted) in this process.
                runner.record_source(outcome.source)
                if self.config.use_cache:
                    runner.seed_cache(point.key(), stats,
                                      outcome.miss_map)
            self.outstanding.discard(index)
            self.emit("completed", index=index, label=point.label,
                      attempt=attempt, shard=shard,
                      source=outcome.source,
                      seconds=round(outcome.seconds, 4))
            # lint: ordered-end
            self._terminal()
            self.state.complete(index, SweepResult(
                point, stats, outcome.miss_map, outcome.seconds,
                outcome.source))
            return
        error = outcome.to_error(point.label)
        if outcome.status in _TRANSIENT_STATUSES \
                and attempt <= self.config.max_retries:
            delay = backoff_delay(attempt, self.config.backoff_base,
                                  point.key())
            self.waiting.append((time.monotonic() + delay, index,
                                 attempt + 1))
            self.emit("retried", index=index, label=point.label,
                      attempt=attempt, shard=shard,
                      kind=outcome.status,
                      next_attempt=attempt + 1,
                      delay=round(delay, 4))
            return
        self.outstanding.discard(index)
        self.emit("failed", index=index, label=point.label,
                  attempts=attempt, shard=shard,
                  kind=sweep_mod.PointFailure.from_error(
                      point.label, index, error, attempt).kind,
                  message=str(error))
        self._terminal()
        self.state.fail(index, error, attempt)


async def _shard_loop(shard: int, incarnation: int, sched: _Scheduler,
                      config: ServiceConfig, plan: Optional[FaultPlan],
                      ctx, plan_json: Optional[str]) -> None:
    """One shard: keep up to ``config.jobs`` workers busy until every
    point (on any shard) has a terminal outcome.

    ``incarnation`` is 1-based and grows each time the supervisor
    restarts this shard's pool; injected ``shard_kill`` faults use it
    to decide whether the restarted pool dies again.
    """
    live: List[Tuple[object, WorkUnit]] = []
    claimed = 0
    last_beat = time.monotonic()
    sched.heartbeats[shard] = last_beat
    try:
        while True:
            now = time.monotonic()
            sched.heartbeats[shard] = now
            if config.heartbeat_interval > 0 \
                    and now - last_beat >= config.heartbeat_interval:
                last_beat = now
                sched.emit("heartbeat", shard=shard,
                           incarnation=incarnation, live=len(live),
                           outstanding=len(sched.outstanding))
            while len(live) < config.jobs:
                unit = sched.next_ready(now, shard)
                if unit is None:
                    break
                claimed += 1
                if plan:
                    fault = plan.shard_fault(shard, claimed,
                                             incarnation)
                    if fault is not None:
                        # The claimed unit stays in ``in_flight`` so
                        # the watchdog requeues it with this pool.
                        raise ShardDiedError(
                            f"injected shard kill: shard {shard} "
                            f"(incarnation {incarnation}) died on its "
                            f"claim #{claimed}", shard=shard)
                if config.inline:
                    task = asyncio.ensure_future(asyncio.to_thread(
                        _execute_inline, unit, config.use_cache, plan))
                    live.append((task, unit))
                else:
                    live.append((sweep_mod._spawn(
                        ctx, unit.point, unit.index, unit.attempt,
                        config.use_cache, plan_json), unit))
            progressed = False
            for entry in list(live):
                worker, unit = entry
                if config.inline:
                    if not worker.done():
                        continue
                    outcome = worker.result()
                else:
                    # _reap is a poll in the common path (returns None
                    # while the worker runs); it joins only a worker it
                    # just terminated for exceeding point_timeout, with
                    # a bounded 5s grace.
                    message = sweep_mod._reap(worker,  # lint: allow[async-safety]
                                              config.point_timeout)
                    if message is None:
                        continue
                    outcome = _outcome_from_reap(unit, message,
                                                 unit.point.label)
                live.remove(entry)
                progressed = True
                sched.resolve(shard, unit, outcome)
            if not live and sched.finished:
                return
            if not progressed:
                await asyncio.sleep(_POLL_SECONDS)
    finally:
        # Fail-fast, cancellation, or an unexpected scheduler error:
        # reap this shard's in-flight workers so no orphan keeps
        # simulating a doomed grid.
        for worker, _unit in live:
            if config.inline:
                worker.cancel()
            else:
                worker.proc.terminate()
        for worker, _unit in live:
            if config.inline:
                continue
            # Teardown after terminate(): the shard is exiting and the
            # loop has nothing left to schedule — a bounded join here
            # beats orphaning a live simulation process.
            worker.proc.join(5.0)  # lint: allow[async-safety]
            if worker.proc.is_alive():  # pragma: no cover
                worker.proc.kill()
                worker.proc.join()  # lint: allow[async-safety]
            try:
                worker.conn.close()
            except OSError:
                pass


async def _serve(sched: _Scheduler, config: ServiceConfig,
                 plan: Optional[FaultPlan],
                 shutdown: Optional[ShutdownRequest] = None,
                 handle_signals: bool = False) -> None:
    """Supervise the shard pools: restart or retire dead/stalled ones,
    requeue their in-flight units, honor shutdown requests."""
    import multiprocessing

    ctx = None if config.inline else multiprocessing.get_context()
    plan_json = plan.to_json() if (plan and not config.inline) else None
    loop = asyncio.get_running_loop()
    installed: List[int] = []
    if handle_signals and shutdown is not None:
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, shutdown.request, sig)
                installed.append(sig)
            except (RuntimeError, ValueError, NotImplementedError):
                pass  # non-main thread / platform without support

    def spawn(shard: int, incarnation: int) -> asyncio.Future:
        sched.heartbeats[shard] = time.monotonic()
        # _shard_loop's residual blocking joins are waived at their
        # sites (bounded reap/teardown); re-acknowledged here where the
        # supervisor enters the coroutine.
        return asyncio.ensure_future(_shard_loop(  # lint: allow[async-safety]
            shard, incarnation, sched, config, plan, ctx, plan_json))

    #: shard → (task, incarnation); retired shards drop out.
    tasks: Dict[int, Tuple[asyncio.Future, int]] = {
        shard: (spawn(shard, 1), 1) for shard in range(config.shards)
    }
    restarts = {shard: 0 for shard in tasks}
    try:
        while True:
            if shutdown is not None and shutdown.requested():
                return  # drain: finally reaps every pool
            now = time.monotonic()
            for shard in sorted(tasks):
                task, incarnation = tasks[shard]
                exc: Optional[BaseException] = None
                if task.done():
                    try:
                        exc = task.exception()
                    except asyncio.CancelledError:
                        exc = ShardDiedError(
                            f"shard {shard} cancelled", shard=shard)
                    if exc is None:
                        continue  # clean exit (scheduler finished)
                elif config.watchdog_timeout is not None \
                        and now - sched.heartbeats.get(shard, now) \
                        > config.watchdog_timeout:
                    # Stalled: heartbeat stopped but the task is not
                    # done — a failure mode point_timeout cannot see.
                    task.cancel()
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):
                        pass  # the stall itself is handled below
                    exc = ShardDiedError(
                        f"shard {shard} heartbeat stalled past "
                        f"{config.watchdog_timeout:.1f}s", shard=shard)
                else:
                    continue
                if isinstance(exc, (PointFailure, SweepInterrupted)):
                    raise exc  # policy decisions, not pool deaths
                requeued = sched.requeue_shard(shard)
                if restarts[shard] < config.max_pool_restarts:
                    restarts[shard] += 1
                    incarnation += 1
                    sched.emit("pool_restarted", shard=shard,
                               incarnation=incarnation,
                               requeued=requeued,
                               error=f"{type(exc).__name__}: {exc}")
                    tasks[shard] = (spawn(shard, incarnation),
                                    incarnation)
                else:
                    del tasks[shard]
                    sched.emit("pool_retired", shard=shard,
                               requeued=requeued,
                               remaining=len(tasks),
                               error=f"{type(exc).__name__}: {exc}")
                    if not tasks:
                        if sched.finished:
                            return
                        raise exc  # no pool left for outstanding work
            if sched.finished and tasks \
                    and all(t.done() for t, _ in tasks.values()):
                return
            await asyncio.sleep(_POLL_SECONDS)
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
        for task, _incarnation in tasks.values():
            task.cancel()
        if tasks:
            # Each shard's finally block reaps its own live workers.
            await asyncio.gather(
                *(t for t, _ in tasks.values()), return_exceptions=True)


def serve_sweep(
    points: Sequence[SweepPoint],
    config: Optional[ServiceConfig] = None,
    events: Union[EventSink, Sequence[EventSink], None] = None,
    progress: Optional[ProgressFn] = _default_progress,
    fault_plan: Optional[FaultPlan] = None,
    preresolved: Optional[Dict[int, SweepResult]] = None,
    poisoned: Optional[Dict[int, PointFailure]] = None,
    shutdown: Optional[ShutdownRequest] = None,
    handle_signals: bool = False,
    run_info: Optional[dict] = None,
) -> SweepReport:
    """Evaluate every point through the sharded service and return a
    :class:`~repro.experiments.sweep.SweepReport`.

    Semantics match :func:`repro.experiments.sweep.sweep` exactly —
    warm points resolve in the parent without scheduling, transient
    failures retry with deterministic backoff, ``keep_going`` selects
    partial-result collection vs fail-fast — plus the progress-event
    stream (``events``) documented in the module docstring.

    Resume hooks (used by :func:`repro.experiments.journal.run_sweep`):
    ``preresolved`` maps point index → recovered
    :class:`~repro.experiments.sweep.SweepResult` for points whose
    terminal ``completed`` record lives in an earlier journal segment —
    they enter the report *without* emitting new events, keeping the
    joined stream exactly-once.  ``poisoned`` maps index → the
    recorded :class:`~repro.experiments.errors.PointFailure` for
    points that already exhausted retries — they are skipped-with-
    failure (an informational ``poisoned`` event; still raising under
    fail-fast).  ``run_info`` fields are merged into the ``begin``
    record (run id, segment number).

    Interruption: when ``shutdown`` is requested (or, with
    ``handle_signals=True``, SIGINT/SIGTERM arrives) the scheduler
    drains, an ``end{status=interrupted}`` record is written, and
    :class:`~repro.experiments.errors.SweepInterrupted` carries the
    partial report out.
    """
    points = list(points)
    if config is None:
        config = ServiceConfig()
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    if shutdown is None and handle_signals:
        shutdown = ShutdownRequest()
    emit = _Emitter(events)
    state = sweep_mod._SweepState(points, progress, config.keep_going)
    preresolved = dict(preresolved or {})
    poisoned = dict(poisoned or {})
    replayed = set(preresolved) | set(poisoned)

    pending: List[int] = []
    cached: List[Tuple[int, SweepResult]] = []
    if config.use_cache:
        for index, point in enumerate(points):
            if index in replayed:
                continue
            start = time.perf_counter()
            hit = runner.peek_cached(point.key())
            if hit is None:
                pending.append(index)
                continue
            stats, miss_map, source = hit
            runner.record_source(source)
            cached.append((index, SweepResult(
                point, stats, miss_map,
                time.perf_counter() - start, source)))
    else:
        pending = [index for index in range(len(points))
                   if index not in replayed]

    begin_fields = dict(run_info or {})
    emit("begin", total=len(points), cached=len(cached),
         preresolved=len(preresolved), poisoned=len(poisoned),
         shards=config.shards, jobs=config.jobs,
         inline=config.inline, **begin_fields)
    # Journal-replayed completions re-enter silently: their terminal
    # events already exist in an earlier segment of the joined stream.
    for index in sorted(preresolved):
        state.complete(index, preresolved[index])
    for index, result in cached:
        emit("completed", index=index, label=result.point.label,
             attempt=0, shard=None, source=result.source,
             seconds=round(result.seconds, 4))
        state.complete(index, result)

    started = time.monotonic()
    interrupted = False
    try:
        # Poison points: skipped-with-failure, no retry budget burned.
        # The ``poisoned`` event is informational (their ``failed``
        # terminal lives in the segment that exhausted the retries);
        # fail_preformed still raises under fail-fast.
        for index in sorted(poisoned):
            failure = poisoned[index]
            emit("poisoned", index=index, label=failure.label,
                 kind=failure.kind, attempts=failure.attempts,
                 message=failure.message)
            state.fail_preformed(index, failure)
        if pending:
            sched = _Scheduler(state, pending, config, emit,
                               fault_plan)
            asyncio.run(_serve(sched, config, fault_plan,
                               shutdown=shutdown,
                               handle_signals=handle_signals))
        interrupted = (shutdown is not None and shutdown.requested())
    except BaseException:
        interrupted = (shutdown is not None and shutdown.requested())
        raise
    finally:
        if interrupted:
            status = "interrupted"
        elif state.failures:
            status = "failed"
        else:
            status = "ok"
        emit("end", status=status,
             completed=sum(1 for r in state.results if r is not None),
             failed=len(state.failures),
             seconds=round(time.monotonic() - started, 4))
    if interrupted:
        signum = shutdown.signum if shutdown is not None else None
        raise SweepInterrupted(
            "sweep interrupted"
            + (f" by signal {signum}" if signum else "")
            + f" with {state.done} of {len(points)} points resolved",
            report=state.report(), signum=signum,
            run_id=begin_fields.get("run_id"))
    return state.report()
