"""Table experiments (Tables 2-4 of the paper)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.jaccard import bundle_similarity
from repro.analysis.metrics import compare_run
from repro.core.bundles import identify_bundles
from repro.experiments.runner import (
    REPRESENTATIVE_WORKLOADS,
    run_baseline,
    run_prefetcher,
)
from repro.workloads.cache import get_application, get_trace
from repro.workloads.suite import WORKLOAD_NAMES

PREFETCHERS = ("efetch", "mana", "eip", "hierarchical")


# ----------------------------------------------------------------------
# Table 2 — average distance / accuracy / coverage
# ----------------------------------------------------------------------
def tab02_distance_accuracy_coverage(
    workloads: Sequence[str] = WORKLOAD_NAMES,
    scale: str = "bench",
) -> Dict[str, Dict[str, float]]:
    """prefetcher -> mean {distance, accuracy, coverage_l1, coverage_l2}."""
    out: Dict[str, Dict[str, float]] = {}
    for name in PREFETCHERS:
        rows = []
        for w in workloads:
            base, _ = run_baseline(w, scale=scale)
            stats, _ = run_prefetcher(w, name, scale=scale)
            rows.append(compare_run(name, stats, base))
        n = len(rows)
        out[name] = {
            "distance": sum(r.avg_distance for r in rows) / n,
            "accuracy": sum(r.accuracy for r in rows) / n,
            "coverage_l1": sum(r.coverage_l1 for r in rows) / n,
            "coverage_l2": sum(r.coverage_l2 for r in rows) / n,
        }
    return out


# ----------------------------------------------------------------------
# Table 3 — L1-I size sensitivity
# ----------------------------------------------------------------------
def tab03_l1i_sensitivity(
    sizes_kb: Sequence[int] = (32, 64, 128, 256),
    workloads: Sequence[str] = REPRESENTATIVE_WORKLOADS,
    scale: str = "bench",
) -> List[Dict[str, object]]:
    """Rows of {prefetcher, l1i_kb, accuracy, coverage, speedup}."""
    rows: List[Dict[str, object]] = []
    for name in PREFETCHERS:
        for kb in sizes_kb:
            overrides = {"hierarchy.l1i_bytes": kb * 1024}
            accs, covs, ratios = [], [], []
            for w in workloads:
                base, _ = run_baseline(w, scale=scale, overrides=overrides)
                stats, _ = run_prefetcher(w, name, scale=scale,
                                          overrides=overrides)
                report = compare_run(name, stats, base)
                accs.append(report.accuracy)
                covs.append(report.coverage_l1)
                ratios.append(stats.ipc / base.ipc)
            n = len(workloads)
            rows.append({
                "prefetcher": name,
                "l1i_kb": kb,
                "accuracy": sum(accs) / n,
                "coverage": sum(covs) / n,
                "speedup": sum(ratios) / n - 1.0,
            })
    return rows


# ----------------------------------------------------------------------
# Table 4 — Bundle statistics
# ----------------------------------------------------------------------
def tab04_bundle_stats(
    workloads: Sequence[str] = (
        "beego", "caddy", "dgraph", "echo", "gin", "gorm",
        "mysql_sysbench", "tidb_tpcc",
    ),
    scale: str = "bench",
) -> Dict[str, Dict[str, float]]:
    """workload -> static + dynamic Bundle statistics (Table 4 rows).

    Static: total functions, static bundle count, bundle fraction (from
    Algorithm 1 over the binary).  Dynamic: average recorded footprint,
    execution cycles (from an HP run with bundle tracking) and the
    consecutive-execution Jaccard (trace analysis).
    """
    out: Dict[str, Dict[str, float]] = {}
    for w in workloads:
        app = get_application(w)
        info = identify_bundles(app.binary, app.params.bundle_threshold)
        stats, _ = run_prefetcher(
            w, "hierarchical", scale=scale,
            pf_kwargs={"config": {"track_bundles": True}},
        )
        trace = get_trace(w, scale=scale)
        sim_stats = bundle_similarity(trace)
        out[w] = {
            "static_bundles": info.n_bundles,
            "total_functions": info.n_functions,
            "bundle_fraction": info.bundle_fraction,
            "avg_footprint_kb": stats.extra.get(
                "hp_avg_footprint_kb", sim_stats["avg_footprint_kb"]
            ),
            "avg_exec_cycles": stats.extra.get("hp_avg_exec_cycles", 0.0),
            "avg_jaccard": sim_stats["avg_jaccard"],
        }
    return out
