"""Declarative sweep manifests: the evaluation grid as reviewable data.

A manifest describes a full (workloads × prefetchers × policies ×
scales × seeds × config-overrides) cross-product — optionally thinned
by a seeded sampler — in a TOML or JSON file, so the same grid
definition drives a local ``repro sweep --manifest``, the CI smoke and
chaos jobs, and a :mod:`repro.experiments.service` fleet, instead of
being re-spelled as ad-hoc Python (or YAML-embedded shell) at every
call site.

Schema (TOML form; the JSON form is the same structure)::

    [sweep]
    name = "ci-smoke"                 # optional, for reports
    workloads = ["mysql_sibench"]     # required, suite names
    prefetchers = ["eip", "mana"]     # default: the paper's set
    include_baseline = true           # prepend the FDIP point/workload
    policies = ["lru", "pf_aware"]    # optional replacement-policy axis
    itlb_prefetch = false             # applied with the policy axis
    scales = ["tiny"]                 # or: scale = "tiny"
    seeds = [1, 2]                    # or: seed = 1
    warmup = 0.4
    track_block_misses = false

    [sweep.overrides]                 # dotted MachineConfig overrides
    "hierarchy.l2_bytes" = 262144     # applied to every point

    [sample]                          # optional: thin the full grid
    count = 500                       # points to keep
    seed = 7                          # selection seed (deterministic)

Guarantees:

* **Validation** — every field is checked against the live registries
  (workload suite, prefetcher registry, replacement policies, scale
  presets, ``MachineConfig`` override keys); all problems are reported
  at once with their ``section.key`` path in a :class:`ManifestError`.
* **Deterministic expansion** — :meth:`SweepManifest.expand` emits
  :class:`~repro.experiments.sweep.SweepPoint` s in a fixed documented
  order (scale → seed → policy → workload, baseline first), and the
  sampler ranks points by a SHA-256 of ``(sample seed, index)`` — not a
  global RNG — so the same manifest always expands to the same points,
  on every platform and interpreter.
* **Round-trip** — ``from_dict(m.to_dict())`` reproduces the manifest
  exactly (asserted by tests/test_manifest.py), so tools can rewrite
  manifests without drift.

TOML parsing needs :mod:`tomllib` (Python 3.11+); on older
interpreters use the JSON form — the loader says so explicitly rather
than failing with an ImportError.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

try:
    import tomllib
except ImportError:  # Python < 3.9..3.10: JSON manifests only.
    tomllib = None

from repro.cpu import MachineConfig
from repro.experiments.errors import ExperimentError
from repro.experiments.runner import DEFAULT_WARMUP
from repro.experiments.sweep import DEFAULT_PREFETCHERS, SweepPoint
from repro.memory.policies import POLICY_NAMES
from repro.prefetchers import PREFETCHER_NAMES
from repro.workloads.suite import ALL_WORKLOAD_NAMES, SCALES

__all__ = [
    "GridSample", "ManifestError", "SweepManifest",
    "load_manifest", "parse_manifest",
]


class ManifestError(ExperimentError, ValueError):
    """A manifest failed validation; ``errors`` lists every problem.

    ``ValueError`` is kept in the bases for callers that predate the
    :class:`~repro.experiments.errors.ExperimentError` taxonomy.
    """

    def __init__(self, source: str, errors: Sequence[str]):
        self.source = source
        self.errors = list(errors)
        lines = "\n".join(f"  - {e}" for e in self.errors)
        super().__init__(
            f"{source}: invalid sweep manifest "
            f"({len(self.errors)} problem(s)):\n{lines}"
        )


@dataclasses.dataclass(frozen=True)
class GridSample:
    """Seeded thinning of the full factorial grid."""

    count: int
    seed: int = 0

    def indices(self, total: int) -> List[int]:
        """The kept input-order indices of an ``total``-point grid.

        Each index is ranked by SHA-256 of ``"<seed>|<index>"`` and the
        ``count`` smallest digests win — deterministic across runs,
        platforms, and Python versions (unlike ``random.sample``, whose
        algorithm is an implementation detail).
        """
        if self.count >= total:
            return list(range(total))
        ranked = sorted(
            range(total),
            key=lambda i: hashlib.sha256(
                f"{self.seed}|{i}".encode("utf-8")).digest(),
        )
        return sorted(ranked[: self.count])


#: ``[sweep]`` keys (scalar aliases ``scale``/``seed`` included).
_SWEEP_KEYS = frozenset((
    "name", "workloads", "prefetchers", "include_baseline", "policies",
    "itlb_prefetch", "scale", "scales", "seed", "seeds", "warmup",
    "track_block_misses", "overrides",
))
_SAMPLE_KEYS = frozenset(("count", "seed"))


@dataclasses.dataclass(frozen=True)
class SweepManifest:
    """A validated sweep-grid definition (see the module docstring)."""

    workloads: Tuple[str, ...]
    prefetchers: Tuple[str, ...] = DEFAULT_PREFETCHERS
    name: str = ""
    include_baseline: bool = True
    policies: Tuple[str, ...] = ()
    itlb_prefetch: bool = False
    scales: Tuple[str, ...] = ("bench",)
    seeds: Tuple[int, ...] = (1,)
    warmup: float = DEFAULT_WARMUP
    track_block_misses: bool = False
    overrides: Optional[Mapping] = None
    sample: Optional[GridSample] = None

    # -- expansion -----------------------------------------------------
    @property
    def full_count(self) -> int:
        """Points in the un-sampled factorial grid."""
        per_workload = int(self.include_baseline) + sum(
            1 for p in self.prefetchers if p != "fdip")
        return (len(self.scales) * len(self.seeds)
                * max(1, len(self.policies))
                * len(self.workloads) * per_workload)

    def expand(self) -> List[SweepPoint]:
        """The manifest's :class:`SweepPoint` s, in canonical order
        (scale → seed → policy → workload, FDIP baseline first), after
        sampling when a ``[sample]`` table is present."""
        points: List[SweepPoint] = []
        for scale in self.scales:
            for seed in self.seeds:
                for policy in (self.policies or (None,)):
                    overrides = dict(self.overrides or {})
                    if policy is not None:
                        from repro.experiments.policies import (
                            policy_overrides,
                        )

                        overrides.update(
                            policy_overrides(policy, self.itlb_prefetch))
                    common = dict(
                        scale=scale, seed=seed, warmup=self.warmup,
                        overrides=overrides or None,
                        track_block_misses=self.track_block_misses,
                    )
                    for workload in self.workloads:
                        if self.include_baseline:
                            points.append(
                                SweepPoint(workload, None, **common))
                        for pf in self.prefetchers:
                            if pf == "fdip":
                                continue  # the baseline flag owns FDIP
                            points.append(
                                SweepPoint(workload, pf, **common))
        if self.sample is not None:
            keep = self.sample.indices(len(points))
            points = [points[i] for i in keep]
        return points

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical dict form; ``parse_manifest`` of it reproduces this
        manifest exactly (the round-trip contract)."""
        sweep: Dict[str, object] = {
            "name": self.name,
            "workloads": list(self.workloads),
            "prefetchers": list(self.prefetchers),
            "include_baseline": self.include_baseline,
            "policies": list(self.policies),
            "itlb_prefetch": self.itlb_prefetch,
            "scales": list(self.scales),
            "seeds": list(self.seeds),
            "warmup": self.warmup,
            "track_block_misses": self.track_block_misses,
        }
        if self.overrides:
            sweep["overrides"] = dict(self.overrides)
        data: Dict[str, object] = {"sweep": sweep}
        if self.sample is not None:
            data["sample"] = {"count": self.sample.count,
                              "seed": self.sample.seed}
        return data

    def dumps_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Parsing + validation
# ----------------------------------------------------------------------
class _Checker:
    """Collects every problem before raising one ManifestError."""

    def __init__(self, source: str):
        self.source = source
        self.errors: List[str] = []

    def fail(self, path: str, message: str) -> None:
        self.errors.append(f"{path}: {message}")

    def raise_if_failed(self) -> None:
        if self.errors:
            raise ManifestError(self.source, self.errors)

    def names(self, raw, path: str, allowed: Sequence[str],
              what: str) -> Tuple[str, ...]:
        if not isinstance(raw, (list, tuple)):
            self.fail(path, f"expected a list of {what} names, "
                            f"got {type(raw).__name__}")
            return ()
        out = []
        for i, name in enumerate(raw):
            if not isinstance(name, str):
                self.fail(f"{path}[{i}]",
                          f"expected a {what} name string, got {name!r}")
            elif name not in allowed:
                self.fail(f"{path}[{i}]",
                          f"unknown {what} {name!r} (expected one of "
                          f"{', '.join(allowed)})")
            else:
                out.append(name)
        return tuple(out)

    def boolean(self, raw, path: str, default: bool) -> bool:
        if raw is None:
            return default
        if not isinstance(raw, bool):
            self.fail(path, f"expected true/false, got {raw!r}")
            return default
        return raw

    def number(self, raw, path: str, default: float) -> float:
        if raw is None:
            return default
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            self.fail(path, f"expected a number, got {raw!r}")
            return default
        return float(raw)


def _axis(checker: _Checker, table: dict, singular: str, plural: str,
          default: tuple) -> tuple:
    """Resolve a ``seed = 1`` / ``seeds = [1, 2]`` style axis pair."""
    if singular in table and plural in table:
        checker.fail(f"sweep.{singular}",
                     f"give either {singular!r} or {plural!r}, not both")
        return default
    if singular in table:
        return (table[singular],)
    if plural in table:
        raw = table[plural]
        if not isinstance(raw, (list, tuple)) or not raw:
            checker.fail(f"sweep.{plural}",
                         f"expected a non-empty list, got {raw!r}")
            return default
        return tuple(raw)
    return default


def parse_manifest(data: dict, source: str = "<manifest>") -> SweepManifest:
    """Validate ``data`` (the decoded TOML/JSON document) and build the
    manifest; raises :class:`ManifestError` listing *every* problem."""
    checker = _Checker(source)
    if not isinstance(data, dict):
        checker.fail("<document>",
                     f"expected a table/object, got {type(data).__name__}")
        checker.raise_if_failed()
    unknown = set(data) - {"sweep", "sample"}
    if unknown:
        checker.fail("<document>",
                     f"unknown section(s) {sorted(unknown)}; expected "
                     "[sweep] and optionally [sample]")
    sweep = data.get("sweep")
    if not isinstance(sweep, dict):
        checker.fail("sweep", "required [sweep] table is missing")
        checker.raise_if_failed()

    unknown = set(sweep) - _SWEEP_KEYS
    if unknown:
        checker.fail("sweep",
                     f"unknown key(s) {sorted(unknown)}; expected "
                     f"{sorted(_SWEEP_KEYS)}")

    name = sweep.get("name", "")
    if not isinstance(name, str):
        checker.fail("sweep.name", f"expected a string, got {name!r}")
        name = ""

    if "workloads" not in sweep:
        checker.fail("sweep.workloads", "required key is missing")
        workloads: Tuple[str, ...] = ()
    else:
        workloads = checker.names(sweep["workloads"], "sweep.workloads",
                                  ALL_WORKLOAD_NAMES, "workload")
        if isinstance(sweep["workloads"], (list, tuple)) \
                and not sweep["workloads"]:
            checker.fail("sweep.workloads", "must name at least one "
                         "workload")

    if "prefetchers" in sweep:
        raw_pf = sweep["prefetchers"]
        if isinstance(raw_pf, (list, tuple)):
            # JSON null is the baseline; normalize to its registry name.
            raw_pf = ["fdip" if p is None else p for p in raw_pf]
        prefetchers = checker.names(raw_pf, "sweep.prefetchers",
                                    PREFETCHER_NAMES, "prefetcher")
    else:
        prefetchers = DEFAULT_PREFETCHERS

    include_baseline = checker.boolean(
        sweep.get("include_baseline"), "sweep.include_baseline", True)
    itlb_prefetch = checker.boolean(
        sweep.get("itlb_prefetch"), "sweep.itlb_prefetch", False)
    track = checker.boolean(
        sweep.get("track_block_misses"), "sweep.track_block_misses",
        False)
    policies = checker.names(sweep.get("policies", []), "sweep.policies",
                             POLICY_NAMES, "policy")

    scales = _axis(checker, sweep, "scale", "scales", ("bench",))
    scales = checker.names(scales, "sweep.scales", tuple(sorted(SCALES)),
                           "scale")
    if not scales:
        scales = ("bench",)

    seeds = _axis(checker, sweep, "seed", "seeds", (1,))
    clean_seeds = []
    for i, seed in enumerate(seeds):
        if isinstance(seed, bool) or not isinstance(seed, int):
            checker.fail(f"sweep.seeds[{i}]",
                         f"expected an integer trace seed, got {seed!r}")
        else:
            clean_seeds.append(seed)
    seeds = tuple(clean_seeds) or (1,)

    warmup = checker.number(sweep.get("warmup"), "sweep.warmup",
                            DEFAULT_WARMUP)
    if not 0.0 <= warmup < 1.0:
        checker.fail("sweep.warmup",
                     f"warmup fraction must be in [0, 1), got {warmup}")

    overrides = sweep.get("overrides")
    if overrides is not None:
        if not isinstance(overrides, dict):
            checker.fail("sweep.overrides",
                         f"expected a table of dotted MachineConfig "
                         f"overrides, got {type(overrides).__name__}")
            overrides = None
        else:
            try:
                MachineConfig().replace(**overrides)
            except AttributeError as exc:
                checker.fail("sweep.overrides", str(exc))
            except TypeError as exc:
                checker.fail("sweep.overrides", f"bad override: {exc}")

    sample = None
    if "sample" in data:
        table = data["sample"]
        if not isinstance(table, dict):
            checker.fail("sample", f"expected a table, got "
                                   f"{type(table).__name__}")
        else:
            unknown = set(table) - _SAMPLE_KEYS
            if unknown:
                checker.fail("sample",
                             f"unknown key(s) {sorted(unknown)}; "
                             f"expected {sorted(_SAMPLE_KEYS)}")
            count = table.get("count")
            if isinstance(count, bool) or not isinstance(count, int) \
                    or count < 1:
                checker.fail("sample.count",
                             f"expected a positive integer, got {count!r}")
            seed = table.get("seed", 0)
            if isinstance(seed, bool) or not isinstance(seed, int):
                checker.fail("sample.seed",
                             f"expected an integer, got {seed!r}")
            if not checker.errors:
                sample = GridSample(count=count, seed=seed)

    checker.raise_if_failed()
    return SweepManifest(
        workloads=workloads, prefetchers=prefetchers, name=name,
        include_baseline=include_baseline, policies=policies,
        itlb_prefetch=itlb_prefetch, scales=scales, seeds=seeds,
        warmup=warmup, track_block_misses=track,
        overrides=dict(overrides) if overrides else None, sample=sample,
    )


def load_manifest(path: Union[str, Path]) -> SweepManifest:
    """Parse + validate the manifest file at ``path`` (``.toml`` or
    ``.json``, by suffix)."""
    path = Path(path)
    source = str(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ManifestError(source, [f"<file>: unreadable: {exc}"])
    suffix = path.suffix.lower()
    if suffix == ".toml":
        if tomllib is None:
            raise ManifestError(source, [
                "<file>: TOML manifests need Python 3.11+ (tomllib); "
                "use the JSON form on older interpreters"])
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ManifestError(source, [f"<file>: TOML parse error: "
                                         f"{exc}"])
    elif suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ManifestError(source, [f"<file>: JSON parse error: "
                                         f"{exc}"])
    else:
        raise ManifestError(source, [
            f"<file>: unsupported manifest suffix {suffix!r} "
            "(expected .toml or .json)"])
    return parse_manifest(data, source=source)
