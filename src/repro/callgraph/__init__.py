"""Static call-graph construction and reachable-size analysis.

These are the two analyses the paper's software algorithm (Algorithm 1)
runs at link time: build the static call graph of the binary, then
compute, for every function, the *reachable size* — the total unique code
size of the function and everything transitively callable from it.
"""

from repro.callgraph.graph import CallGraph, build_call_graph
from repro.callgraph.reachable import reachable_sizes, reachable_sets

__all__ = [
    "CallGraph",
    "build_call_graph",
    "reachable_sizes",
    "reachable_sets",
]
