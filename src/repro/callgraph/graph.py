"""Static call-graph data structure and builder.

The builder is duck-typed over the binary: it only requires an iterable
of objects exposing ``name``, ``size`` and ``static_callees()``, so it
works on :class:`repro.isa.binary.Binary` without importing it (keeping
this package dependency-free).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set


class CallGraph:
    """Directed graph of functions with per-node code sizes.

    Nodes are function names.  Edges point caller -> callee.  The graph
    is a *static* over-approximation: indirect call sites contribute an
    edge to every candidate target.
    """

    def __init__(self) -> None:
        self.sizes: Dict[str, int] = {}
        self._callees: Dict[str, Set[str]] = {}
        self._callers: Dict[str, Set[str]] = {}

    def add_node(self, name: str, size: int) -> None:
        """Add function ``name`` with code size ``size`` bytes."""
        if size < 0:
            raise ValueError(f"negative size for {name!r}")
        self.sizes[name] = size
        self._callees.setdefault(name, set())
        self._callers.setdefault(name, set())

    def add_edge(self, caller: str, callee: str) -> None:
        """Add a caller -> callee edge; both nodes must already exist."""
        if caller not in self.sizes:
            raise KeyError(f"unknown caller {caller!r}")
        if callee not in self.sizes:
            raise KeyError(f"unknown callee {callee!r}")
        self._callees[caller].add(callee)
        self._callers[callee].add(caller)

    def callees(self, name: str) -> Set[str]:
        """Functions directly called by ``name``."""
        return self._callees[name]

    def callers(self, name: str) -> Set[str]:
        """Functions that directly call ``name`` (its *fathers*)."""
        return self._callers[name]

    def roots(self) -> List[str]:
        """Functions with no callers (entry points of the graph)."""
        return [n for n, cs in self._callers.items() if not cs]

    @property
    def nodes(self) -> List[str]:
        return list(self.sizes)

    def __len__(self) -> int:
        return len(self.sizes)

    def __contains__(self, name: str) -> bool:
        return name in self.sizes

    def edge_count(self) -> int:
        return sum(len(s) for s in self._callees.values())

    def __repr__(self) -> str:
        return f"CallGraph(nodes={len(self)}, edges={self.edge_count()})"


def build_call_graph(binary: Iterable) -> CallGraph:
    """Construct the static call graph of ``binary``.

    ``binary`` is any iterable of function-like objects with ``name``,
    ``size`` and ``static_callees()``.  Duplicate edges collapse.
    """
    graph = CallGraph()
    funcs = list(binary)
    for func in funcs:
        graph.add_node(func.name, func.size)
    for func in funcs:
        for callee in func.static_callees():
            graph.add_edge(func.name, callee)
    return graph
