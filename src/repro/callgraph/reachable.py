"""Reachable-size computation over the static call graph.

The *reachable size* of a function is the total code size of the unique
set of functions reachable from it (itself included).  Reachable sets
are not additive over the DAG because of sharing, so the implementation
condenses strongly connected components (recursion cycles) and runs a
bitset union DP in reverse topological order — exact, and fast enough
for graphs with tens of thousands of functions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.callgraph.graph import CallGraph


def strongly_connected_components(graph: CallGraph) -> List[List[str]]:
    """Return SCCs of ``graph`` (iterative Tarjan; no recursion limit)."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for start in graph.nodes:
        if start in index_of:
            continue
        # Each work item is (node, iterator over its callees).
        work = [(start, iter(graph.callees(start)))]
        index_of[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack[start] = True
        while work:
            node, it = work[-1]
            advanced = False
            for child in it:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, iter(graph.callees(child))))
                    advanced = True
                    break
                if on_stack.get(child):
                    if index_of[child] < lowlink[node]:
                        lowlink[node] = index_of[child]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def _condense(graph: CallGraph):
    """Return (scc_of_node, scc_members, scc_edges, topo_order).

    ``topo_order`` lists SCC ids so that every edge goes from an earlier
    to a later entry (callers before callees); Tarjan emits SCCs in
    reverse topological order, so we reverse its output.
    """
    sccs = strongly_connected_components(graph)
    scc_of: Dict[str, int] = {}
    for i, members in enumerate(sccs):
        for name in members:
            scc_of[name] = i
    nscc = len(sccs)
    edges: List[set] = [set() for _ in range(nscc)]
    for name in graph.nodes:
        src = scc_of[name]
        for callee in graph.callees(name):
            dst = scc_of[callee]
            if dst != src:
                edges[src].add(dst)
    # Tarjan finishes callees before callers, so reversed(enumerate) is a
    # caller-first topological order of the condensation.
    topo = list(range(nscc - 1, -1, -1))
    return scc_of, sccs, edges, topo


def reachable_sizes(graph: CallGraph) -> Dict[str, int]:
    """Map every function to its reachable size in bytes."""
    if len(graph) == 0:
        return {}
    scc_of, sccs, edges, topo = _condense(graph)
    nscc = len(sccs)
    scc_size = [sum(graph.sizes[m] for m in members) for members in sccs]
    # Bitset of reachable SCCs per SCC, computed callees-first.
    reach: List[int] = [0] * nscc
    for scc in reversed(topo):  # callees before callers
        mask = 1 << scc
        for child in edges[scc]:
            mask |= reach[child]
        reach[scc] = mask
    total: Dict[int, int] = {}
    for scc in range(nscc):
        mask = reach[scc]
        size = 0
        while mask:
            low = mask & -mask
            size += scc_size[low.bit_length() - 1]
            mask ^= low
        total[scc] = size
    return {name: total[scc_of[name]] for name in graph.nodes}


def reachable_sets(graph: CallGraph) -> Dict[str, FrozenSet[str]]:
    """Map every function to the set of functions reachable from it.

    Exact but memory-heavy (quadratic in the worst case); intended for
    tests and small graphs.  ``reachable_sizes`` is the production path.
    """
    scc_of, sccs, edges, topo = _condense(graph)
    nscc = len(sccs)
    reach_masks: List[int] = [0] * nscc
    for scc in reversed(topo):
        mask = 1 << scc
        for child in edges[scc]:
            mask |= reach_masks[child]
        reach_masks[scc] = mask
    members_of: List[FrozenSet[str]] = [frozenset(m) for m in sccs]
    cache: Dict[int, FrozenSet[str]] = {}

    def expand(scc: int) -> FrozenSet[str]:
        if scc not in cache:
            mask = reach_masks[scc]
            names: set = set()
            while mask:
                low = mask & -mask
                names.update(members_of[low.bit_length() - 1])
                mask ^= low
            cache[scc] = frozenset(names)
        return cache[scc]

    return {name: expand(scc_of[name]) for name in graph.nodes}
