"""MANA: temporal instruction prefetching over spatial regions.

Model of Ansari et al. [14] as configured in the paper (§6.3): the
committed block stream is compressed into aligned spatial regions and
appended to a global history; a 4K-entry index table maps a region base
to its most recent history position.  At runtime the prefetcher follows
the recorded stream, staying ``lookahead`` spatial regions ahead of the
observed stream (paper default 3).  When the actual stream diverges from
the recorded one — or the core front-end resets on a branch
misprediction — MANA stops and re-indexes, which is the timeliness
limitation §7.2 describes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.prefetchers.base import InstructionPrefetcher

#: Cache blocks per aligned MANA spatial region.
REGION_BLOCKS = 4
_REGION_MASK = REGION_BLOCKS - 1


class ManaPrefetcher(InstructionPrefetcher):
    """Temporal streaming with spatial-region compression."""

    name = "mana"

    def __init__(self, lookahead: int = 3, index_entries: int = 1536,
                 history_regions: int = 8192,
                 reset_on_mispredict: bool = True):
        super().__init__()
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.lookahead = lookahead
        self.index_entries = index_entries
        self.history_regions = history_regions
        self.reset_on_mispredict = reset_on_mispredict

    def reset(self) -> None:
        # Circular history of (region_base, bit_vector).
        self._history: List[Optional[Tuple[int, int]]] = (
            [None] * self.history_regions
        )
        self._head = 0          # next write position
        self._wrapped = False
        self._index: OrderedDict = OrderedDict()  # base -> history position
        self._cur_base = -1
        self._cur_vec = 0
        self._stream_pos: Optional[int] = None  # next expected history slot
        self._issued_upto: Optional[int] = None
        self._last_block = -1

    # ------------------------------------------------------------------
    def on_commit(self, i: int, now: float) -> None:
        trace = self.trace
        pc = trace.pc[i]
        nin = trace.ninstr[i]
        b0 = pc >> 6
        b1 = (pc + nin * 4 - 1) >> 6
        if b0 != self._last_block:
            self._observe(b0, now, i)
        if b1 != b0:
            self._observe(b1, now, i)
        self._last_block = b1

    def on_mispredict(self, i: int) -> None:
        # The core front-end resets; MANA must stop prefetching and
        # re-index to find the correct stream (§7.1).
        if self.reset_on_mispredict:
            self._stream_pos = None
            self._issued_upto = None

    # ------------------------------------------------------------------
    def _observe(self, block: int, now: float, i: int) -> None:
        base = block & ~_REGION_MASK
        if base == self._cur_base:
            self._cur_vec |= 1 << (block & _REGION_MASK)
            return
        if self._cur_base >= 0:
            self._record_region(self._cur_base, self._cur_vec)
        self._cur_base = base
        self._cur_vec = 1 << (block & _REGION_MASK)
        self._follow(base, now, i)

    def _record_region(self, base: int, vec: int) -> None:
        pos = self._head
        self._history[pos] = (base, vec)
        self._head = (pos + 1) % self.history_regions
        if self._head == 0:
            self._wrapped = True
        if base not in self._index and len(self._index) >= self.index_entries:
            self._index.popitem(last=False)
        self._index[base] = pos
        self._index.move_to_end(base)

    def _follow(self, base: int, now: float, i: int) -> None:
        """Advance or re-acquire the replay stream at region ``base``."""
        pos = self._stream_pos
        history = self._history
        if pos is not None:
            expected = history[pos]
            if expected is not None and expected[0] == base:
                self._stream_pos = (pos + 1) % self.history_regions
            else:
                pos = None
                self._stream_pos = None
                self._issued_upto = None
        if self._stream_pos is None:
            hit = self._index.get(base)
            if hit is None:
                return
            self._index.move_to_end(base)
            self._stream_pos = (hit + 1) % self.history_regions
            self._issued_upto = self._stream_pos
        # Prefetch up to `lookahead` regions ahead of the stream position.
        start = self._issued_upto
        if start is None:
            start = self._stream_pos
        end = (self._stream_pos + self.lookahead) % self.history_regions
        issue = self.issue
        pos = start
        steps = (end - start) % self.history_regions
        for _ in range(steps):
            if pos == self._head:
                break
            entry = history[pos]
            if entry is None:
                break
            rbase, vec = entry
            while vec:
                low = vec & -vec
                issue(rbase + low.bit_length() - 1, now, i)
                vec ^= low
            pos = (pos + 1) % self.history_regions
        self._issued_upto = pos

    def on_measurement_end(self) -> None:
        self.stats.extra["mana_index_entries"] = len(self._index)
        self.stats.extra["mana_lookahead"] = self.lookahead
