"""Name-based prefetcher construction for experiments and examples."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.memory.policies import POLICY_NAMES
from repro.prefetchers.base import InstructionPrefetcher
from repro.prefetchers.efetch import EFetchPrefetcher
from repro.prefetchers.eip import EIPPrefetcher
from repro.prefetchers.mana import ManaPrefetcher

#: Names accepted by :func:`make_prefetcher`, in the paper's order
#: (plus the RDIP extension baseline, §2.3, and the compressed-metadata
#: HP variant evaluated on the microservice SLO grid).
PREFETCHER_NAMES = ("fdip", "efetch", "mana", "eip", "hierarchical", "rdip",
                    "pif", "hp_compressed")

#: HPConfig overrides of the ``hp_compressed`` variant: a Metadata
#: Buffer four times smaller, compensated by coarser-grained compressed
#: records — more spatial-region entries per bundle segment and wider
#: regions — so one shared buffer can cover many services' footprints
#: (the SLOFetch direction: compressed per-service metadata).
HP_COMPRESSED_OVERRIDES = {
    "metadata_buffer_bytes": 128 * 1024,
    "compression_entries": 32,
    "region_blocks": 8,
    "initial_segments": 3,
}


def make_prefetcher(name: str, **kwargs) -> Optional[InstructionPrefetcher]:
    """Build a prefetcher by name.

    ``"fdip"`` (the baseline) returns None — FDIP itself lives in the
    front end and is always on.  Extra keyword arguments go to the
    prefetcher constructor (``lookahead=...``, ``config=...`` etc.).
    """
    key = name.lower()
    if key in ("fdip", "none", "baseline"):
        if kwargs:
            raise ValueError(f"baseline takes no options, got {kwargs}")
        return None
    if key == "efetch":
        return EFetchPrefetcher(**kwargs)
    if key == "mana":
        return ManaPrefetcher(**kwargs)
    if key == "eip":
        return EIPPrefetcher(**kwargs)
    if key == "rdip":
        from repro.prefetchers.rdip import RDIPPrefetcher

        return RDIPPrefetcher(**kwargs)
    if key == "pif":
        from repro.prefetchers.pif import PIFPrefetcher

        return PIFPrefetcher(**kwargs)
    if key in ("hierarchical", "hp", "hp_compressed"):
        # Imported here: repro.core.prefetcher depends on the base class
        # in this package.
        from repro.core.prefetcher import HierarchicalPrefetcher, HPConfig

        config = kwargs.get("config")
        if isinstance(config, dict):
            if key == "hp_compressed":
                config = {**HP_COMPRESSED_OVERRIDES, **config}
            kwargs = dict(kwargs, config=HPConfig(**config))
        elif key == "hp_compressed" and config is None:
            kwargs = dict(kwargs,
                          config=HPConfig(**HP_COMPRESSED_OVERRIDES))
        return HierarchicalPrefetcher(**kwargs)
    raise ValueError(
        f"unknown prefetcher {name!r}; expected one of {PREFETCHER_NAMES}"
    )


def prefetcher_policy_grid(
    prefetchers: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
) -> List[Tuple[str, str]]:
    """The prefetcher × replacement-policy cross-product.

    Returns ``(prefetcher, policy)`` pairs in row-major order (policy
    varies fastest), validating both axes so sweep code fails before
    any simulation is scheduled.
    """
    prefetchers = tuple(prefetchers) if prefetchers else PREFETCHER_NAMES
    policies = tuple(policies) if policies else POLICY_NAMES
    for pf in prefetchers:
        if pf.lower() not in PREFETCHER_NAMES:
            raise ValueError(
                f"unknown prefetcher {pf!r}; expected one of "
                f"{PREFETCHER_NAMES}"
            )
    for pol in policies:
        if pol.lower() not in POLICY_NAMES:
            raise ValueError(
                f"unknown replacement policy {pol!r}; expected one of "
                f"{POLICY_NAMES}"
            )
    return [(pf, pol) for pf in prefetchers for pol in policies]
