"""Baseline instruction prefetchers evaluated against Hierarchical
Prefetching: EFetch (caller-callee, §2.3), MANA (temporal streaming,
§2.2) and EIP (entangling, §2.4), plus the RDIP (§2.3) and PIF (§2.2)
extension baselines.  All run *on top of* the FDIP baseline, as in
every experiment of the paper.
"""

from repro.prefetchers.base import InstructionPrefetcher, NullPrefetcher
from repro.prefetchers.efetch import EFetchPrefetcher
from repro.prefetchers.mana import ManaPrefetcher
from repro.prefetchers.eip import EIPPrefetcher
from repro.prefetchers.pif import PIFPrefetcher
from repro.prefetchers.rdip import RDIPPrefetcher
from repro.prefetchers.registry import make_prefetcher, PREFETCHER_NAMES

__all__ = [
    "InstructionPrefetcher",
    "NullPrefetcher",
    "EFetchPrefetcher",
    "ManaPrefetcher",
    "EIPPrefetcher",
    "RDIPPrefetcher",
    "PIFPrefetcher",
    "make_prefetcher",
    "PREFETCHER_NAMES",
]
