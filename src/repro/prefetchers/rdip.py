"""RDIP: return-address-stack directed instruction prefetching.

Model of Kolli et al. [40] (paper §2.3): program context is summarized
as a signature hashed from the top 4 entries of the RAS; the prefetcher
records the L1-I *misses* that follow each signature and prefetches
them when the signature recurs.  Signatures change only at calls and
returns, so RDIP reacts at function granularity — more context than a
plain temporal stream, less than EFetch's callee prediction, far less
than a Bundle.

RDIP is not part of the paper's measured comparison set (it cites the
60 KB/core metadata cost as the reason it was superseded); it is
provided as an extension baseline.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Set

from repro.isa.instructions import BranchKind
from repro.prefetchers.base import InstructionPrefetcher

_CALL = int(BranchKind.CALL)
_ICALL = int(BranchKind.ICALL)
_RET = int(BranchKind.RET)


def _signature(stack_top: tuple) -> int:
    sig = 0x811C9DC5
    for addr in stack_top:
        sig ^= addr >> 2
        sig = (sig * 0x01000193) & 0xFFFFFFFF
    return sig


class RDIPPrefetcher(InstructionPrefetcher):
    """Signature -> miss-set record-and-replay at call/return boundaries."""

    name = "rdip"

    def __init__(self, table_entries: int = 1536, signature_depth: int = 4,
                 max_misses_per_signature: int = 24):
        super().__init__()
        if signature_depth < 1:
            raise ValueError("signature_depth must be >= 1")
        self.table_entries = table_entries
        self.signature_depth = signature_depth
        self.max_misses = max_misses_per_signature

    def reset(self) -> None:
        # signature -> ordered set of miss blocks observed after it.
        self._table: OrderedDict = OrderedDict()
        self._stack: List[int] = []
        self._current_sig: Optional[int] = None
        self._current_misses: Optional[List[int]] = None
        self._current_seen: Set[int] = set()

    # ------------------------------------------------------------------
    def on_commit(self, i: int, now: float) -> None:
        trace = self.trace
        kind = trace.kind[i]
        if kind == _CALL or kind == _ICALL:
            term = trace.pc[i] + (trace.ninstr[i] - 1) * 4
            self._stack.append(term + 4)
            if len(self._stack) > 64:
                del self._stack[0]
            self._new_signature(now, i)
        elif kind == _RET:
            if self._stack:
                self._stack.pop()
            self._new_signature(now, i)

    def on_miss(self, block: int, i: int, stall: float) -> None:
        misses = self._current_misses
        if misses is None or block in self._current_seen:
            return
        if len(misses) < self.max_misses:
            misses.append(block)
            self._current_seen.add(block)

    # ------------------------------------------------------------------
    def _new_signature(self, now: float, i: int) -> None:
        sig = _signature(tuple(self._stack[-self.signature_depth:]))
        if sig == self._current_sig:
            return
        table = self._table
        # Replay the misses recorded the last time this context was
        # active.
        recorded = table.get(sig)
        if recorded:
            table.move_to_end(sig)
            issue = self.issue
            for block in recorded:
                issue(block, now, i)
        # Start recording for this signature (most recent run wins).
        fresh: List[int] = []
        if sig not in table and len(table) >= self.table_entries:
            table.popitem(last=False)
        table[sig] = fresh
        table.move_to_end(sig)
        self._current_sig = sig
        self._current_misses = fresh
        self._current_seen = set()

    def on_measurement_end(self) -> None:
        self.stats.extra["rdip_table_entries"] = len(self._table)
