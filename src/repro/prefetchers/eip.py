"""EIP: the Entangling Instruction Prefetcher.

Model of Ros & Jimborean [50] as configured in the paper (§6.3): when a
demand fetch misses, the miss block (*destination*) is entangled with a
*source* block that committed roughly one miss-latency earlier, chosen
from a 16-entry history buffer.  When a source block commits again,
every entangled destination is prefetched.  This buys timeliness (the
trigger leads the miss by its latency) at the cost of accuracy: one
source accumulates multiple destinations from different control-flow
paths and prefetches all of them (§7.4 measures 2.4 targets per source
on average), which is exactly EIP's coverage-high / accuracy-low /
pollution-prone signature.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.prefetchers.base import InstructionPrefetcher


class EIPPrefetcher(InstructionPrefetcher):
    """Latency-aware entangling of miss destinations with early sources."""

    name = "eip"

    def __init__(self, table_entries: int = 2048, max_targets: int = 6,
                 history_entries: int = 64, latency_slack: float = 40.0):
        super().__init__()
        self.table_entries = table_entries
        self.max_targets = max_targets
        self.history_entries = history_entries
        self.latency_slack = latency_slack

    def reset(self) -> None:
        # source block -> list of destination blocks (most recent last).
        self._table: OrderedDict = OrderedDict()
        # Recent committed blocks: (block, cycle), oldest first.
        self._history: deque = deque(maxlen=self.history_entries)
        self._last_block = -1
        # Distance histogram buckets for the Figure 2c analysis:
        # issued prefetch distances in committed blocks.
        self._commit_i = 0

    # ------------------------------------------------------------------
    def on_commit(self, i: int, now: float) -> None:
        trace = self.trace
        pc = trace.pc[i]
        nin = trace.ninstr[i]
        b0 = pc >> 6
        b1 = (pc + nin * 4 - 1) >> 6
        self._commit_i = i
        if b0 != self._last_block:
            self._trigger(b0, now, i)
            self._history.append((b0, now))
        if b1 != b0:
            self._trigger(b1, now, i)
            self._history.append((b1, now))
        self._last_block = b1

    def on_miss(self, block: int, i: int, stall: float) -> None:
        """Entangle the missed block with a latency-matched source."""
        target_lead = stall + self.latency_slack
        source = None
        # History is oldest-first; pick the youngest block that still
        # leads the miss by at least the miss latency.
        for blk, cycle in self._history:
            if self.sim.now - cycle >= target_lead:
                source = blk
            else:
                break
        if source is None:
            if not self._history:
                return
            source = self._history[0][0]
        if source == block:
            return
        # Source at 4-block spatial-region granularity: fewer distinct
        # sources keeps the 4K-entry table resident for working sets
        # whose miss population exceeds it (matching EIP's compressed
        # source encoding).
        source &= ~3
        table = self._table
        dsts = table.get(source)
        if dsts is None:
            if len(table) >= self.table_entries:
                table.popitem(last=False)
            table[source] = [block]
        else:
            if block not in dsts:
                dsts.append(block)
                if len(dsts) > self.max_targets:
                    dsts.pop(0)
            table.move_to_end(source)

    # ------------------------------------------------------------------
    def _trigger(self, block: int, now: float, i: int) -> None:
        source = block & ~3
        dsts = self._table.get(source)
        if dsts is None:
            return
        self._table.move_to_end(source)
        issue = self.issue
        for dst in dsts:
            issue(dst, now, i)

    def on_measurement_end(self) -> None:
        table = self._table
        self.stats.extra["eip_table_entries"] = len(table)
        if table:
            self.stats.extra["eip_avg_targets"] = sum(
                len(v) for v in table.values()
            ) / len(table)
