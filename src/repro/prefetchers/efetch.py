"""EFetch: caller-callee prefetching driven by call-context signatures.

Model of Chadha et al. [21] as configured in the paper (§6.3): a
4K-entry predictor keyed by a signature hashed from the top 3 entries of
the call stack; each entry holds an ordered list of upcoming callees,
each prefetched as two 32-block bit vectors anchored at the callee
entry.  The look-ahead parameter (how many callees deep to prefetch per
signature) drives the Figure 2b sweep; the paper's configuration stores
3 callees per entry, so look-aheads beyond 3 grow the stored list
accordingly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from repro.isa.instructions import BranchKind
from repro.prefetchers.base import InstructionPrefetcher

_CALL = int(BranchKind.CALL)
_ICALL = int(BranchKind.ICALL)
_RET = int(BranchKind.RET)

#: Blocks covered by each of the two footprint vectors.
_VEC_BLOCKS = 32


def _signature(stack_top: tuple) -> int:
    """Hash the top call-stack return addresses into a signature."""
    sig = 0x811C9DC5
    for addr in stack_top:
        sig ^= addr >> 2
        sig = (sig * 0x01000193) & 0xFFFFFFFF
    return sig


class _CalleeFootprint:
    """Two bit vectors over [entry, entry+64) blocks, learned online."""

    __slots__ = ("entry_block", "vec0", "vec1")

    def __init__(self, entry_block: int):
        self.entry_block = entry_block
        self.vec0 = 0
        self.vec1 = 0

    def observe(self, block: int) -> None:
        off = block - self.entry_block
        if 0 <= off < _VEC_BLOCKS:
            self.vec0 |= 1 << off
        elif _VEC_BLOCKS <= off < 2 * _VEC_BLOCKS:
            self.vec1 |= 1 << (off - _VEC_BLOCKS)

    def blocks(self):
        base = self.entry_block
        vec = self.vec0
        while vec:
            low = vec & -vec
            yield base + low.bit_length() - 1
            vec ^= low
        base += _VEC_BLOCKS
        vec = self.vec1
        while vec:
            low = vec & -vec
            yield base + low.bit_length() - 1
            vec ^= low


class EFetchPrefetcher(InstructionPrefetcher):
    """Signature-indexed next-callee predictor with footprint vectors."""

    name = "efetch"

    def __init__(self, lookahead: int = 1, table_entries: int = 1280,
                 signature_depth: int = 3):
        super().__init__()
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.lookahead = lookahead
        self.table_entries = table_entries
        self.signature_depth = signature_depth
        #: Callees stored per signature entry (paper: 3; grows with the
        #: look-ahead sweep).
        self.list_len = max(3, lookahead)

    def reset(self) -> None:
        # signature -> list of callee entry blocks (temporal order).
        self._table: OrderedDict = OrderedDict()
        # callee entry block -> _CalleeFootprint (learned footprints).
        self._footprints: OrderedDict = OrderedDict()
        self._stack: List[int] = []
        # Signatures still collecting upcoming callees: (sig, filled).
        self._pending: List[list] = []
        # Active footprint observations: [footprint, blocks_left].
        self._observing: List[list] = []
        self._last_block = -1

    # ------------------------------------------------------------------
    def on_commit(self, i: int, now: float) -> None:
        trace = self.trace
        kind = trace.kind[i]
        pc = trace.pc[i]
        nin = trace.ninstr[i]
        block = (pc + nin * 4 - 1) >> 6
        if block != self._last_block:
            self._last_block = block
            if self._observing:
                self._feed_observers(pc >> 6)
                if block != pc >> 6:
                    self._feed_observers(block)
        if kind == _CALL or kind == _ICALL:
            self._on_call(i, now, trace)
        elif kind == _RET:
            if self._stack:
                self._stack.pop()

    def _on_call(self, i: int, now: float, trace) -> None:
        term = trace.pc[i] + (trace.ninstr[i] - 1) * 4
        callee_entry_block = trace.target[i] >> 6
        # 1. Learn: this callee completes older pending signatures.
        for pending in self._pending:
            pending[1].append(callee_entry_block)
        self._pending = [p for p in self._pending if len(p[1]) < self.list_len]
        # 2. Start observing the callee's footprint.
        footprint = _CalleeFootprint(callee_entry_block)
        self._install(self._footprints, callee_entry_block, footprint)
        self._observing.append([footprint, 24])
        if len(self._observing) > 8:
            self._observing.pop(0)
        # 3. Update the shadow stack and form the new signature.
        self._stack.append(term + 4)
        if len(self._stack) > 64:
            del self._stack[0]
        sig = _signature(tuple(self._stack[-self.signature_depth:]))
        # 4. Predict and prefetch the next `lookahead` callees.
        predicted = self._table.get(sig)
        if predicted is not None:
            self._table.move_to_end(sig)
            issue = self.issue
            for callee in predicted[: self.lookahead]:
                fp = self._footprints.get(callee)
                if fp is None:
                    self.issue(callee, now, i)
                    continue
                self._footprints.move_to_end(callee)
                for blk in fp.blocks():
                    issue(blk, now, i)
        # 5. Open a new pending entry for this signature.
        filled: list = []
        self._install(self._table, sig, filled)
        self._pending.append([sig, filled])
        if len(self._pending) > self.list_len + 2:
            self._pending.pop(0)

    def _feed_observers(self, block: int) -> None:
        alive = []
        for obs in self._observing:
            obs[0].observe(block)
            obs[1] -= 1
            if obs[1] > 0:
                alive.append(obs)
        self._observing = alive

    def _install(self, table: OrderedDict, key, value) -> None:
        if key not in table and len(table) >= self.table_entries:
            table.popitem(last=False)
        table[key] = value
        table.move_to_end(key)

    def on_measurement_end(self) -> None:
        self.stats.extra["efetch_table_entries"] = len(self._table)
        self.stats.extra["efetch_lookahead"] = self.lookahead
