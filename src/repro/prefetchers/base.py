"""Common interface for commit-driven instruction prefetchers.

A prefetcher is attached to a :class:`~repro.cpu.simulator.FrontEndSimulator`
and observes the committed instruction stream through three hooks; it
issues requests through ``self.hierarchy.prefetch(...)`` with origin
``ORIGIN_PF`` so accuracy/coverage/timeliness accounting attributes them
correctly.
"""

from __future__ import annotations

import copy
from typing import Dict

from repro.cpu.component import SimComponent, check_state_fields
from repro.memory.cache import ORIGIN_PF

#: Attributes that are wiring (references into the machine), not
#: prefetcher-owned mutable state; excluded from the default snapshot.
#: ``_itlb_pf`` is a bound method of the machine's I-TLB — snapshotting
#: it would deep-copy the whole TLB through the closure.
_WIRING = frozenset({"sim", "trace", "hierarchy", "stats", "_itlb_pf"})


class InstructionPrefetcher(SimComponent):
    """Base class; subclasses override the ``on_*`` hooks they need.

    The default :meth:`state_dict`/:meth:`load_state_dict` deep-copy the
    instance ``__dict__`` minus the wiring references (``sim``,
    ``trace``, ``hierarchy``, ``stats``).  One ``deepcopy`` of the whole
    attribute dict (rather than per-field serialization) preserves any
    intra-state aliasing — e.g. EFetch's in-flight observation lists
    alias its table entries — so restored behavior is bit-identical.
    Prefetchers whose state holds callbacks or cross-component
    references (HierarchicalPrefetcher) override with structured
    implementations.
    """

    name = "base"

    def __init__(self) -> None:
        self.sim = None
        self.trace = None
        self.hierarchy = None
        self.stats = None
        self._itlb_pf = None  # lint: ephemeral

    def attach(self, sim, trace) -> None:
        """Bind to a simulator and trace before the run starts."""
        self.sim = sim
        self.trace = trace
        self.hierarchy = sim.hierarchy
        self.stats = sim.stats
        self._itlb_pf = (  # lint: ephemeral
            sim.itlb.prefetch if sim.config.core.itlb_prefetch else None
        )
        self.reset()

    def reset(self) -> None:
        """Clear run-local state (called from :meth:`attach`)."""

    # ------------------------------------------------------------------
    # SimComponent protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        own = {k: v for k, v in self.__dict__.items() if k not in _WIRING}
        return {"attrs": copy.deepcopy(own)}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, ("attrs",))
        attrs = state["attrs"]
        expected = set(self.__dict__) - _WIRING
        if set(attrs) != expected:
            raise ValueError(
                f"stale {type(self).__name__} state "
                f"(missing={sorted(expected - set(attrs))}, "
                f"unknown={sorted(set(attrs) - expected)})"
            )
        self.__dict__.update(copy.deepcopy(attrs))

    # ------------------------------------------------------------------
    # Hooks called by the simulator
    # ------------------------------------------------------------------
    def on_commit(self, i: int, now: float) -> None:
        """Block ``i`` of the trace committed at cycle ``now``."""

    def on_miss(self, block: int, i: int, stall: float) -> None:
        """A demand fetch of cache ``block`` stalled at commit of ``i``."""

    def on_mispredict(self, i: int) -> None:
        """The terminator of block ``i`` was mispredicted (pipeline flush)."""

    def on_measurement_start(self) -> None:
        """Warmup ended; per-run derived stats may snapshot here."""

    def on_measurement_end(self) -> None:
        """Run finished; publish extras into ``self.stats.extra``."""

    # ------------------------------------------------------------------
    def issue(self, block: int, now: float, i: int,
              extra_latency: float = 0.0, to_l2: bool = False) -> bool:
        """Issue one prefetch with origin ``ORIGIN_PF``.

        With the I-TLB prefetch path enabled the block's page is probed
        into the TLB as well (non-stalling; block 64B, page 4KB).
        """
        tlb_pf = self._itlb_pf
        if tlb_pf is not None:
            tlb_pf(block >> 6)
        return self.hierarchy.prefetch(
            block, now, ORIGIN_PF, extra_latency=extra_latency,
            to_l2=to_l2, issue_index=i,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class NullPrefetcher(InstructionPrefetcher):
    """No-op prefetcher: the plain FDIP baseline."""

    name = "fdip"
