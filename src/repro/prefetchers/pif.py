"""PIF: proactive instruction fetch (temporal streaming, §2.2).

Model of Ferdman et al. [23]: record the full sequence of retired
instruction cache blocks (compressed as spatio-temporal regions) and
replay it from an index keyed by the stream's own blocks.  PIF is
MANA's ancestor: same record-and-replay idea with a much larger
metadata budget (~200 KB/core in the paper) and no index compression —
provided here as a second extension baseline to show the metadata/
performance trade-off MANA optimizes.

Structurally this is the MANA engine with a history and index sized to
be effectively unconstrained and a deeper default look-ahead.
"""

from __future__ import annotations

from repro.prefetchers.mana import ManaPrefetcher


class PIFPrefetcher(ManaPrefetcher):
    """Temporal streaming with an uncompressed (large) index."""

    name = "pif"

    def __init__(self, lookahead: int = 5, index_entries: int = 65536,
                 history_regions: int = 65536):
        super().__init__(
            lookahead=lookahead,
            index_entries=index_entries,
            history_regions=history_regions,
            # PIF predates the FDIP-reset interplay MANA suffers from;
            # we keep the reset (it models the shared front-end), so the
            # only differences are capacity and depth.
            reset_on_mispredict=True,
        )

    def on_measurement_end(self) -> None:
        self.stats.extra["pif_index_entries"] = len(self._index)
        self.stats.extra["pif_lookahead"] = self.lookahead

    def storage_bytes(self) -> int:
        """Approximate metadata budget: index entries (8 B) plus history
        regions (12 B) — the cost axis of Figure/Table comparisons."""
        return self.index_entries * 8 + self.history_regions * 12
