"""ASCII charts for benchmark output.

The benchmarks print each paper artifact as a table; for the figures a
quick visual check helps, so these helpers render horizontal bar charts
and simple line series in plain text.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    fmt: str = "{:+.1%}",
    title: Optional[str] = None,
) -> str:
    """Render one horizontal bar per (label, value).

    Negative values draw to the left of the axis.  The scale is set by
    the largest absolute value.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title or ""
    peak = max(abs(v) for v in values) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = [] if title is None else [title]
    for label, value in zip(labels, values):
        n = int(round(abs(value) / peak * width))
        bar = ("▇" * n) if n else "·"
        sign = "-" if value < 0 else " "
        lines.append(
            f"{str(label).rjust(label_w)} |{sign}{bar} {fmt.format(value)}"
        )
    return "\n".join(lines)


def line_series(
    points: Sequence[Tuple[float, float]],
    height: int = 8,
    width: int = 48,
    x_fmt: str = "{:g}",
    y_fmt: str = "{:.2f}",
    title: Optional[str] = None,
) -> str:
    """Render an (x, y) series as a coarse ASCII scatter/line plot."""
    if not points:
        return title or ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "●"
    lines = [] if title is None else [title]
    y_labels = [y_fmt.format(y_hi), y_fmt.format(y_lo)]
    pad = max(len(s) for s in y_labels)
    for r, row in enumerate(grid):
        label = y_labels[0] if r == 0 else (
            y_labels[1] if r == height - 1 else ""
        )
        lines.append(f"{label.rjust(pad)} |{''.join(row)}")
    lines.append(f"{' ' * pad} +{'-' * width}")
    lines.append(
        f"{' ' * pad}  {x_fmt.format(x_lo)}"
        f"{' ' * max(1, width - len(x_fmt.format(x_lo)) - len(x_fmt.format(x_hi)))}"
        f"{x_fmt.format(x_hi)}"
    )
    return "\n".join(lines)
