"""Per-stage instruction footprints (Figure 1).

Figure 1 reports, for each TiDB request-processing stage, the average
number of instruction cache blocks touched during the stage's execution.
The trace generator annotates stage spans, so the measurement is a
direct aggregation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List


def stage_footprints(trace) -> Dict[str, float]:
    """Average footprint (KB) per stage across all executions."""
    sums: Dict[str, int] = defaultdict(int)
    counts: Dict[str, int] = defaultdict(int)
    for start, end, stage, _rtype in trace.stage_spans:
        fp = trace.footprint(start, end)
        sums[stage] += len(fp)
        counts[stage] += 1
    return {
        stage: sums[stage] / counts[stage] * 64 / 1024
        for stage in sums
    }


def stage_footprints_by_type(trace) -> Dict[str, Dict[int, float]]:
    """Average stage footprints (KB) broken down by request type."""
    sums: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
    counts: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
    for start, end, stage, rtype in trace.stage_spans:
        fp = trace.footprint(start, end)
        sums[stage][rtype] += len(fp)
        counts[stage][rtype] += 1
    return {
        stage: {
            rtype: sums[stage][rtype] / counts[stage][rtype] * 64 / 1024
            for rtype in sums[stage]
        }
        for stage in sums
    }


def request_footprints(trace) -> List[float]:
    """Footprint (KB) of each full request."""
    out: List[float] = []
    starts = [idx for idx, _ in trace.requests] + [len(trace)]
    for i in range(len(starts) - 1):
        fp = trace.footprint(starts[i], starts[i + 1])
        out.append(len(fp) * 64 / 1024)
    return out
