"""Long-range-miss identification (Figure 12).

The paper studies the L2 misses caused by the 10% of instruction
accesses with the longest reuse distances.  We identify the *blocks*
whose mean reuse distance falls in the top decile of the access-weighted
distribution, then compare each prefetcher's L2 miss counts on exactly
that block population (the simulator's ``l2_miss_map``).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.analysis.reuse import block_reuse_distances


def long_range_blocks(trace, fraction: float = 0.10,
                      start: int = 0, end: int = -1) -> Set[int]:
    """Blocks receiving the top ``fraction`` of longest-reuse accesses."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    distances = block_reuse_distances(trace, start, end)
    # Access-weighted: rank individual accesses, take the top decile,
    # then collect the blocks those accesses touch.
    flat = []
    for block, ds in distances.items():
        for d in ds:
            flat.append((d, block))
    if not flat:
        return set()
    flat.sort(reverse=True)
    cutoff = max(1, int(len(flat) * fraction))
    return {block for _, block in flat[:cutoff]}


def long_range_miss_elimination(
    baseline_map: Dict[int, int],
    prefetcher_map: Dict[int, int],
    blocks: Set[int],
) -> float:
    """Fraction of baseline L2 misses on ``blocks`` that the prefetcher
    eliminated (Figure 12's per-workload bar)."""
    base = sum(n for b, n in baseline_map.items() if b in blocks)
    if not base:
        return 0.0
    with_pf = sum(n for b, n in prefetcher_map.items() if b in blocks)
    return max(0.0, 1.0 - with_pf / base)
