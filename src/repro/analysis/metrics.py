"""Prefetch accuracy / coverage / timeliness metrics.

All metrics follow the paper's definitions (§3.2, §7.4) and are computed
*on top of the FDIP baseline*: coverage counts the baseline's demand
misses that the evaluated prefetcher eliminated; accuracy is the
fraction of its prefetches that served a demand fetch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.stats import SimStats
from repro.memory.cache import ORIGIN_PF


def speedup(stats: SimStats, baseline: SimStats) -> float:
    """Relative IPC gain of ``stats`` over ``baseline`` (0.066 = +6.6%)."""
    if baseline.ipc == 0:
        raise ValueError("baseline has zero IPC")
    return stats.ipc / baseline.ipc - 1.0


@dataclass
class PrefetchReport:
    """Per-run summary in the paper's vocabulary (Tables 2 and 3)."""

    name: str
    speedup: float
    accuracy: float
    coverage_l1: float
    coverage_l2: float
    late_fraction: float
    avg_distance: float
    ipc: float
    l1i_mpki: float
    issued: int

    def row(self) -> list:
        return [
            self.name,
            f"{self.avg_distance:.1f}",
            f"{self.accuracy:.0%}",
            f"{self.coverage_l1:.0%}",
            f"{self.coverage_l2:.0%}",
            f"{self.late_fraction:.0%}",
            f"{self.speedup:+.1%}",
        ]


def compare_run(
    name: str, stats: SimStats, baseline: SimStats, origin: int = ORIGIN_PF
) -> PrefetchReport:
    """Summarize a prefetcher run against its FDIP baseline.

    Coverage is the *miss-delta* form used in §7.4: the fraction of the
    baseline's demand misses no longer present with the prefetcher
    (negative values mean net pollution).
    """
    cov_l1 = (
        (baseline.l1i_misses - stats.l1i_misses) / baseline.l1i_misses
        if baseline.l1i_misses
        else 0.0
    )
    cov_l2 = (
        (baseline.l2_demand_misses - stats.l2_demand_misses)
        / baseline.l2_demand_misses
        if baseline.l2_demand_misses
        else 0.0
    )
    return PrefetchReport(
        name=name,
        speedup=speedup(stats, baseline),
        accuracy=stats.accuracy(origin),
        coverage_l1=cov_l1,
        coverage_l2=cov_l2,
        late_fraction=stats.late_fraction(origin),
        avg_distance=stats.avg_distance(origin),
        ipc=stats.ipc,
        l1i_mpki=stats.l1i_mpki,
        issued=stats.pf_issued[origin],
    )


def latency_reduction(stats: SimStats, baseline: SimStats) -> float:
    """Fraction of baseline demand-miss latency eliminated (Fig. 11)."""
    base = baseline.total_exposed_latency()
    if not base:
        return 0.0
    return 1.0 - stats.total_exposed_latency() / base
