"""LRU stack (reuse) distances over the cache-block fetch stream.

The paper defines *long-range misses* via reuse distance: "the number of
unique interleaved cache lines" between consecutive accesses to the same
line (§7.3).  The exact LRU stack distance is computed with the classic
Bennett–Kruskal algorithm: a Fenwick tree counts, for each access, how
many *distinct* blocks were touched since the previous access to the
same block — O(log n) per access.
"""

from __future__ import annotations

from typing import Dict, List


class _Fenwick:
    """Binary indexed tree over access timestamps."""

    def __init__(self, n: int):
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        i += 1
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return total


class StackDistanceTracker:
    """Streaming LRU stack-distance computation.

    Feed block accesses in order with :meth:`access`; each call returns
    the number of distinct blocks touched since the previous access to
    the same block (-1 for a first access).
    """

    def __init__(self, n_accesses_hint: int):
        self._fenwick = _Fenwick(max(1, n_accesses_hint))
        self._last_pos: Dict[int, int] = {}
        self._time = 0

    def access(self, block: int) -> int:
        t = self._time
        if t >= self._fenwick.n:
            raise RuntimeError(
                "more accesses than hinted; enlarge n_accesses_hint"
            )
        fen = self._fenwick
        prev = self._last_pos.get(block)
        if prev is None:
            distance = -1
        else:
            # Distinct blocks since prev = marked entries in (prev, t).
            distance = fen.prefix(t - 1) - fen.prefix(prev)
            fen.add(prev, -1)
        fen.add(t, 1)
        self._last_pos[block] = t
        self._time = t + 1
        return distance


def block_reuse_distances(trace, start: int = 0, end: int = -1) -> Dict[int, List[int]]:
    """Reuse distances of every cache-block access in trace [start, end).

    Returns block -> list of reuse distances (first accesses excluded).
    """
    if end < 0:
        end = len(trace)
    pc = trace.pc
    nin = trace.ninstr
    tracker = StackDistanceTracker((end - start) * 2)
    out: Dict[int, List[int]] = {}
    last_block = -1
    for i in range(start, end):
        b0 = pc[i] >> 6
        b1 = (pc[i] + nin[i] * 4 - 1) >> 6
        for b in (b0, b1) if b1 != b0 else (b0,):
            if b == last_block:
                continue
            last_block = b
            d = tracker.access(b)
            if d >= 0:
                out.setdefault(b, []).append(d)
    return out
