"""Miss-ratio curves from LRU stack distances.

A single pass over the block-access stream yields the stack-distance
histogram, from which the L1-I miss ratio at *every* capacity follows
(Mattson's classic inclusion property for LRU).  Used to characterize
workload working sets and to sanity-check the Table-3 cache-size
sensitivity without re-simulating.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.reuse import StackDistanceTracker


def stack_distance_histogram(trace, start: int = 0,
                             end: int = -1) -> Tuple[List[int], int]:
    """Histogram of stack distances over the block-access stream.

    Returns ``(histogram, cold_accesses)`` where ``histogram[d]`` counts
    accesses with stack distance exactly ``d`` and cold (first-touch)
    accesses are tallied separately.
    """
    if end < 0:
        end = len(trace)
    pc = trace.pc
    nin = trace.ninstr
    tracker = StackDistanceTracker((end - start) * 2)
    histogram: Dict[int, int] = {}
    cold = 0
    last_block = -1
    for i in range(start, end):
        b0 = pc[i] >> 6
        b1 = (pc[i] + nin[i] * 4 - 1) >> 6
        for b in (b0, b1) if b1 != b0 else (b0,):
            if b == last_block:
                continue
            last_block = b
            d = tracker.access(b)
            if d < 0:
                cold += 1
            else:
                histogram[d] = histogram.get(d, 0) + 1
    if not histogram:
        return [], cold
    out = [0] * (max(histogram) + 1)
    for d, n in histogram.items():
        out[d] = n
    return out, cold


def miss_ratio_curve(
    trace,
    capacities_blocks: Sequence[int],
    start: int = 0,
    end: int = -1,
) -> List[Tuple[int, float]]:
    """Fully-associative LRU miss ratio at each capacity (in blocks).

    By LRU inclusion, an access with stack distance ``d`` hits in any
    cache of at least ``d + 1`` blocks; cold accesses always miss.
    """
    histogram, cold = stack_distance_histogram(trace, start, end)
    total = sum(histogram) + cold
    if total == 0:
        return [(c, 0.0) for c in capacities_blocks]
    # Suffix sums: misses at capacity c = cold + accesses with d >= c.
    suffix = [0] * (len(histogram) + 1)
    for d in range(len(histogram) - 1, -1, -1):
        suffix[d] = suffix[d + 1] + histogram[d]
    out = []
    for capacity in sorted(capacities_blocks):
        if capacity <= 0:
            raise ValueError("capacities must be positive")
        misses = cold + (
            suffix[capacity] if capacity < len(suffix) else 0
        )
        out.append((capacity, misses / total))
    return out


def working_set_blocks(trace, hit_target: float = 0.95,
                       start: int = 0, end: int = -1) -> int:
    """Smallest LRU capacity (blocks) reaching ``hit_target`` hit ratio
    on warm accesses (cold misses excluded)."""
    if not 0.0 < hit_target < 1.0:
        raise ValueError("hit_target must be in (0, 1)")
    histogram, _cold = stack_distance_histogram(trace, start, end)
    warm_total = sum(histogram)
    if warm_total == 0:
        return 1
    needed = hit_target * warm_total
    acc = 0
    for d, n in enumerate(histogram):
        acc += n
        if acc >= needed:
            return d + 1
    return len(histogram)
