"""Plain-text table/series formatting for benchmark output.

Benchmarks print the same rows and series the paper's tables and figures
report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_percent(x: float, signed: bool = False) -> str:
    """0.066 -> '6.6%' (or '+6.6%' when signed)."""
    return f"{x:+.1%}" if signed else f"{x:.1%}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float],
                  y_fmt: str = "{:.3f}") -> str:
    """Render one figure series as 'name: x=y, x=y, ...'."""
    pairs = ", ".join(
        f"{x}={y_fmt.format(y)}" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive ratios (e.g. 1.0 + speedup)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
        product *= v
    return product ** (1.0 / len(values))
