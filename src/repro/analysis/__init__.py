"""Analysis utilities: prefetch metrics, footprint similarity, reuse
distances, long-range-miss identification, and report formatting.

These implement the measurement methodology of the paper's evaluation:
accuracy/coverage computed *on top of FDIP* (§3.2), Jaccard footprint
similarity (Fig. 4, Table 4), LRU stack (reuse) distances and the
top-decile *long-range miss* population (Fig. 12).
"""

from repro.analysis.metrics import PrefetchReport, compare_run, speedup
from repro.analysis.jaccard import (
    jaccard,
    trigger_footprint_similarity,
    bundle_similarity,
)
from repro.analysis.reuse import StackDistanceTracker, block_reuse_distances
from repro.analysis.longrange import long_range_blocks
from repro.analysis.footprints import stage_footprints
from repro.analysis.mrc import miss_ratio_curve, working_set_blocks
from repro.analysis.reporting import format_table, format_percent

__all__ = [
    "PrefetchReport",
    "compare_run",
    "speedup",
    "jaccard",
    "trigger_footprint_similarity",
    "bundle_similarity",
    "StackDistanceTracker",
    "block_reuse_distances",
    "long_range_blocks",
    "stage_footprints",
    "miss_ratio_curve",
    "working_set_blocks",
    "format_table",
    "format_percent",
]
