"""Jaccard footprint-similarity studies (Figure 4, Table 4).

The paper measures how similar the instruction footprint following a
*trigger* is across the trigger's consecutive occurrences — for the
trigger models of EFetch (call-stack signature), MANA (spatial-region
base) and EIP (cache-block address) — and separately the footprint
stability of Bundles across consecutive executions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.isa.instructions import BranchKind

_CALL = int(BranchKind.CALL)
_ICALL = int(BranchKind.ICALL)
_RET = int(BranchKind.RET)
_TRIGGER_KINDS = frozenset((_CALL, _ICALL, _RET))


def jaccard(a: Set, b: Set) -> float:
    """Jaccard index |a ∩ b| / |a ∪ b| (1.0 for two empty sets)."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 1.0


def _footprint_after(trace, start: int, n_blocks: int) -> Set[int]:
    """The set of the next ``n_blocks`` *distinct* cache blocks fetched
    starting at trace index ``start``."""
    seen: Set[int] = set()
    pc = trace.pc
    nin = trace.ninstr
    n = len(trace)
    i = start
    while i < n and len(seen) < n_blocks:
        b0 = pc[i] >> 6
        b1 = (pc[i] + nin[i] * 4 - 1) >> 6
        seen.add(b0)
        if b1 != b0:
            seen.add(b1)
        i += 1
    return seen


def _efetch_triggers(trace) -> Iterable:
    """(signature, index) pairs: hash of the top-3 shadow call stack."""
    stack: List[int] = []
    pc = trace.pc
    nin = trace.ninstr
    kind = trace.kind
    for i in range(len(trace)):
        k = kind[i]
        if k == _CALL or k == _ICALL:
            stack.append(pc[i] + (nin[i] - 1) * 4 + 4)
            if len(stack) > 64:
                del stack[0]
            yield hash(tuple(stack[-3:])), i
        elif k == _RET and stack:
            stack.pop()


def _mana_triggers(trace) -> Iterable:
    """(region base, index) pairs at each spatial-region transition."""
    last = -1
    pc = trace.pc
    for i in range(len(trace)):
        base = (pc[i] >> 6) & ~3
        if base != last:
            last = base
            yield base, i


def _eip_triggers(trace) -> Iterable:
    """(cache block, index) pairs at each block transition."""
    last = -1
    pc = trace.pc
    for i in range(len(trace)):
        block = pc[i] >> 6
        if block != last:
            last = block
            yield block, i


TRIGGER_MODELS: Dict[str, Callable] = {
    "efetch": _efetch_triggers,
    "mana": _mana_triggers,
    "eip": _eip_triggers,
}


def trigger_footprint_similarity(
    trace,
    model: str,
    footprint_blocks: int,
    max_triggers: int = 4000,
    max_pairs_per_trigger: int = 4,
) -> float:
    """Average Jaccard similarity of footprints following adjacent
    occurrences of the same trigger (Figure 4).

    ``model`` selects the trigger definition (``efetch``/``mana``/
    ``eip``); ``footprint_blocks`` is the footprint size in cache
    blocks.  Sampling caps keep the analysis tractable on long traces.
    """
    try:
        trigger_fn = TRIGGER_MODELS[model]
    except KeyError:
        raise KeyError(
            f"unknown trigger model {model!r}; expected one of "
            f"{tuple(TRIGGER_MODELS)}"
        ) from None
    occurrences: Dict[object, List[int]] = defaultdict(list)
    for key, i in trigger_fn(trace):
        bucket = occurrences[key]
        if len(bucket) <= max_pairs_per_trigger:
            bucket.append(i)
        if len(occurrences) >= max_triggers and key not in occurrences:
            break
    total = 0.0
    count = 0
    for indices in occurrences.values():
        if len(indices) < 2:
            continue
        prev_fp: Optional[Set[int]] = None
        for idx in indices:
            fp = _footprint_after(trace, idx, footprint_blocks)
            if prev_fp is not None:
                total += jaccard(prev_fp, fp)
                count += 1
            prev_fp = fp
    return total / count if count else 0.0


def bundle_similarity(trace) -> Dict[str, float]:
    """Per-Bundle consecutive-execution Jaccard statistics (Table 4).

    Bundles are delimited by tagged call/return terminators, exactly as
    the hardware sees them; the Bundle ID is the tag target address.
    Returns mean Jaccard, mean footprint (KB) and the number of distinct
    Bundles executed.
    """
    kind = trace.kind
    tagged = trace.tagged
    target = trace.target
    pc = trace.pc
    nin = trace.ninstr
    last_fp: Dict[int, Set[int]] = {}
    sums: Dict[int, float] = defaultdict(float)
    counts: Dict[int, int] = defaultdict(int)
    fp_blocks_total = 0
    fp_count = 0
    current_id: Optional[int] = None
    current_fp: Set[int] = set()
    for i in range(len(trace)):
        b0 = pc[i] >> 6
        b1 = (pc[i] + nin[i] * 4 - 1) >> 6
        if current_id is not None:
            current_fp.add(b0)
            if b1 != b0:
                current_fp.add(b1)
        if tagged[i] and kind[i] in _TRIGGER_KINDS:
            if current_id is not None:
                prev = last_fp.get(current_id)
                if prev is not None:
                    sums[current_id] += jaccard(prev, current_fp)
                    counts[current_id] += 1
                last_fp[current_id] = current_fp
                fp_blocks_total += len(current_fp)
                fp_count += 1
            current_id = target[i]
            current_fp = set()
    per_bundle = [
        sums[b] / counts[b] for b in counts if counts[b] > 0
    ]
    return {
        "avg_jaccard": sum(per_bundle) / len(per_bundle) if per_bundle else 0.0,
        "avg_footprint_kb": (
            fp_blocks_total / fp_count * 64 / 1024 if fp_count else 0.0
        ),
        "distinct_bundles": len(last_fp),
        "executions": fp_count,
    }
