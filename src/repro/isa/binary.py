"""Synthetic binary container: functions, basic-block bodies, sections.

A :class:`Function` body is an explicit list of :class:`BlockSpec` basic
blocks — the synthetic analogue of machine code.  The trace generator in
:mod:`repro.workloads.trace` interprets these bodies; the call-graph
builder in :mod:`repro.callgraph` scans their call sites; the linker in
:mod:`repro.isa.linker` appends a ``bundle_entries`` section, mirroring
the ELF segment the paper adds next to ``.dynamic``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.isa.instructions import (
    INSTR_BYTES,
    TEXT_BASE,
    BranchKind,
    CALL_KINDS,
)


@dataclass
class BlockSpec:
    """One basic block of a synthetic function body.

    Attributes:
        ninstr: number of instructions in the block (terminator included).
        kind: the terminator's :class:`BranchKind`.
        callee: callee function name for ``CALL`` terminators.
        targets: candidate callee names for ``ICALL`` terminators (the
            static call graph edges of the dispatch point).
        selector: context key consulted by the trace generator to pick an
            ``ICALL`` target (e.g. a per-request-type dispatch decision).
            ``None`` means the target is drawn uniformly at random.
        taken_prob: probability that a ``COND`` terminator is taken.
        taken_next: in-function block index reached when a ``COND`` or
            ``JUMP`` terminator is taken.  A backward index forms a loop.
        loop_count: for backward ``COND`` terminators, the deterministic
            trip count of the loop (the branch is taken ``loop_count - 1``
            times, then falls through).  0 means the branch outcome is
            drawn from ``taken_prob`` each execution.
        itargets: in-function block indices for ``IJUMP`` terminators.
        offset: byte offset of the block within its function (assigned by
            :class:`Function`).
    """

    ninstr: int
    kind: BranchKind = BranchKind.NONE
    callee: Optional[str] = None
    targets: Tuple[str, ...] = ()
    selector: Optional[str] = None
    taken_prob: float = 0.0
    taken_next: int = -1
    loop_count: int = 0
    itargets: Tuple[int, ...] = ()
    offset: int = field(default=-1, compare=False)

    @property
    def size(self) -> int:
        """Byte size of the block."""
        return self.ninstr * INSTR_BYTES

    def validate(self, index: int, nblocks: int) -> None:
        """Check internal consistency; raise ``ValueError`` on violation."""
        if self.ninstr < 1:
            raise ValueError(f"block {index}: ninstr must be >= 1")
        if self.kind == BranchKind.CALL and not self.callee:
            raise ValueError(f"block {index}: CALL requires a callee")
        if self.kind == BranchKind.ICALL and not self.targets:
            raise ValueError(f"block {index}: ICALL requires targets")
        if self.kind in (BranchKind.COND, BranchKind.JUMP):
            if not (0 <= self.taken_next < nblocks):
                raise ValueError(
                    f"block {index}: taken_next {self.taken_next} out of "
                    f"range [0, {nblocks})"
                )
        if self.loop_count:
            if self.kind != BranchKind.COND or self.taken_next >= index:
                raise ValueError(
                    f"block {index}: loop_count requires a backward COND"
                )
        if self.kind == BranchKind.IJUMP:
            if not self.itargets:
                raise ValueError(f"block {index}: IJUMP requires itargets")
            for t in self.itargets:
                if not (0 <= t < nblocks):
                    raise ValueError(
                        f"block {index}: IJUMP target {t} out of range"
                    )
        if self.kind in (BranchKind.COND, BranchKind.NONE, BranchKind.CALL,
                         BranchKind.ICALL):
            if index == nblocks - 1 and self.kind != BranchKind.NONE:
                # Fall-through off the end of the function is a layout bug
                # for kinds that can fall through.
                raise ValueError(
                    f"block {index}: terminator {self.kind.name} may fall "
                    "through past the end of the function"
                )


class Function:
    """A synthetic function: a named, sized, executable block list."""

    def __init__(self, name: str, blocks: Sequence[BlockSpec]):
        if not name:
            raise ValueError("function name must be non-empty")
        if not blocks:
            raise ValueError(f"function {name!r} has no blocks")
        self.name = name
        self.blocks: List[BlockSpec] = list(blocks)
        self.addr = -1  # assigned by Binary.layout()
        offset = 0
        for i, blk in enumerate(self.blocks):
            blk.validate(i, len(self.blocks))
            blk.offset = offset
            offset += blk.size
        self.size = offset

    @property
    def end_addr(self) -> int:
        """One past the last byte of the function (after layout)."""
        self._require_layout()
        return self.addr + self.size

    def block_addr(self, index: int) -> int:
        """Absolute address of block ``index`` (after layout)."""
        self._require_layout()
        return self.addr + self.blocks[index].offset

    def terminator_addr(self, index: int) -> int:
        """Absolute address of the terminator instruction of block
        ``index`` (after layout)."""
        blk = self.blocks[index]
        return self.block_addr(index) + (blk.ninstr - 1) * INSTR_BYTES

    def iter_call_sites(self) -> Iterator[Tuple[int, BlockSpec]]:
        """Yield ``(block_index, block)`` for every call-terminated block."""
        for i, blk in enumerate(self.blocks):
            if blk.kind in CALL_KINDS:
                yield i, blk

    def static_callees(self) -> List[str]:
        """All statically visible callee names (direct and indirect).

        Indirect call sites contribute every candidate target — the
        static call graph deliberately over-approximates, as the paper
        notes ("static call graphs tend to overestimate the actual
        graphs").
        """
        out: List[str] = []
        for _, blk in self.iter_call_sites():
            if blk.kind == BranchKind.CALL:
                out.append(blk.callee)  # type: ignore[arg-type]
            else:
                out.extend(blk.targets)
        return out

    def _require_layout(self) -> None:
        if self.addr < 0:
            raise RuntimeError(
                f"function {self.name!r} has no address; call "
                "Binary.layout() first"
            )

    def __repr__(self) -> str:
        return (
            f"Function({self.name!r}, size={self.size}, "
            f"blocks={len(self.blocks)}, addr={self.addr:#x})"
        )


class Binary:
    """An ordered collection of functions plus auxiliary sections.

    The insertion order of functions defines the text-segment layout.
    Sections are free-form named payloads; the linker stores the bundle
    entry-point record under ``"bundle_entries"``.
    """

    FUNCTION_ALIGN = 16

    def __init__(self, entry: str = "main"):
        self.entry = entry
        self.functions: Dict[str, Function] = {}
        self.sections: Dict[str, object] = {}
        self._laid_out = False

    def add_function(self, func: Function) -> Function:
        """Register ``func``; names must be unique."""
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        self._laid_out = False
        return func

    def get(self, name: str) -> Function:
        """Look up a function by name, raising ``KeyError`` with context."""
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name!r} in binary") from None

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __len__(self) -> int:
        return len(self.functions)

    def layout(self, base: int = TEXT_BASE) -> None:
        """Assign text-segment addresses to every function.

        Functions are placed in insertion order, aligned to
        ``FUNCTION_ALIGN`` bytes.  Re-running after adding functions is
        allowed and re-layouts everything.
        """
        self.validate()
        addr = base
        align = self.FUNCTION_ALIGN
        for func in self.functions.values():
            addr = (addr + align - 1) // align * align
            func.addr = addr
            addr += func.size
        self._laid_out = True

    @property
    def is_laid_out(self) -> bool:
        return self._laid_out

    @property
    def text_size(self) -> int:
        """Total byte size of all function bodies (alignment excluded)."""
        return sum(f.size for f in self.functions.values())

    def validate(self) -> None:
        """Check cross-function consistency (callee names resolve)."""
        if self.entry not in self.functions:
            raise ValueError(f"entry function {self.entry!r} not defined")
        for func in self.functions.values():
            for _, blk in func.iter_call_sites():
                names = (blk.callee,) if blk.kind == BranchKind.CALL else blk.targets
                for name in names:
                    if name not in self.functions:
                        raise ValueError(
                            f"{func.name}: call to undefined function {name!r}"
                        )

    def __repr__(self) -> str:
        return (
            f"Binary(entry={self.entry!r}, functions={len(self.functions)}, "
            f"text_size={self.text_size})"
        )
