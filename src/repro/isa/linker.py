"""Link-time bundle identification and tagging (paper §5.2, step ①/②).

The linker lays out the binary, runs Algorithm 1 over the static call
graph, and records the addresses of every call/return instruction that
marks a Bundle entry point into a ``bundle_entries`` section — the
synthetic analogue of the ELF segment the paper adds next to
``.dynamic``.  Tagged instructions are:

* every call instruction whose (static) target is a Bundle entry
  function — executing it enters the Bundle at the callee, and
* every return instruction *of* a Bundle entry function — executing it
  resumes the caller's continuation, which starts the next Bundle
  (Figure 5b: Bundle3 begins when B returns into A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from repro.core.bundles import BundleInfo, identify_bundles
from repro.isa.binary import Binary
from repro.isa.instructions import BranchKind

#: Name of the section holding the tagged-address record.
BUNDLE_SECTION = "bundle_entries"


@dataclass
class LinkResult:
    """Payload stored in the ``bundle_entries`` section."""

    threshold: int
    #: Absolute addresses of tagged call/return terminator instructions.
    tagged_addrs: FrozenSet[int]
    #: Entry-point function name -> entry address.
    entry_addrs: Dict[str, int]
    bundles: BundleInfo


class Linker:
    """Runs the software pass of Hierarchical Prefetching on a binary."""

    def __init__(self, threshold: int):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold

    def link(self, binary: Binary) -> LinkResult:
        """Lay out ``binary``, identify Bundles, and tag entry points.

        The result is also stored in ``binary.sections["bundle_entries"]``
        so the loader can find it, mirroring how the paper's loader reads
        the added ELF segment.
        """
        if not binary.is_laid_out:
            binary.layout()
        info = identify_bundles(binary, self.threshold)
        tagged: Set[int] = set()
        for func in binary:
            for idx, blk in enumerate(func.blocks):
                if blk.kind == BranchKind.CALL:
                    if blk.callee in info.entries:
                        tagged.add(func.terminator_addr(idx))
                elif blk.kind == BranchKind.ICALL:
                    if any(t in info.entries for t in blk.targets):
                        tagged.add(func.terminator_addr(idx))
                elif blk.kind == BranchKind.RET:
                    if func.name in info.entries:
                        tagged.add(func.terminator_addr(idx))
        entry_addrs = {
            name: binary.get(name).addr for name in sorted(info.entries)
        }
        result = LinkResult(
            threshold=self.threshold,
            tagged_addrs=frozenset(tagged),
            entry_addrs=entry_addrs,
            bundles=info,
        )
        binary.sections[BUNDLE_SECTION] = result
        return result
