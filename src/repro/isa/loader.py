"""Load-time tag application (paper §5.2, step ②).

The loader reads the ``bundle_entries`` section written by the linker
and exposes the tag-bit view the hardware sees: a membership test on
terminator-instruction addresses, and the Bundle-ID hash computed from
the address of the next instruction following a tagged one (§5.3).
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from repro.isa.binary import Binary
from repro.isa.linker import BUNDLE_SECTION, Linker, LinkResult

#: Width of the hardware Bundle ID in bits (§5.3.3).
BUNDLE_ID_BITS = 24
_BUNDLE_ID_MASK = (1 << BUNDLE_ID_BITS) - 1


def bundle_id_of(next_addr: int) -> int:
    """Hash the address following a tagged instruction into a Bundle ID.

    The paper hashes "the address of the next instruction following the
    tagged one".  We fold the block-aligned address bits down to 24 bits
    with a multiplicative hash so nearby entry points spread across the
    Metadata Address Table sets.
    """
    x = next_addr >> 2  # instruction-aligned
    x = (x * 0x9E3779B1) & 0xFFFFFFFF
    return (x ^ (x >> 16)) & _BUNDLE_ID_MASK


class LoadedProgram:
    """A laid-out binary with Bundle tags applied.

    This is the object the trace generator consults to set the per-block
    ``tagged`` flag, and the hardware prefetcher consults to compute
    Bundle IDs.
    """

    def __init__(self, binary: Binary, link_result: Optional[LinkResult] = None):
        if link_result is None:
            section = binary.sections.get(BUNDLE_SECTION)
            if section is None:
                raise ValueError(
                    "binary has no bundle_entries section; run Linker.link() "
                    "or use LoadedProgram.load()"
                )
            link_result = section  # type: ignore[assignment]
        if not binary.is_laid_out:
            raise ValueError("binary must be laid out before loading")
        self.binary = binary
        self.link_result: LinkResult = link_result
        self.tagged: FrozenSet[int] = link_result.tagged_addrs

    @classmethod
    def load(cls, binary: Binary, threshold: int) -> "LoadedProgram":
        """Convenience: link (if needed) then load in one step."""
        section = binary.sections.get(BUNDLE_SECTION)
        needs_link = (
            section is None
            or not binary.is_laid_out
            or section.threshold != threshold  # type: ignore[union-attr]
        )
        if needs_link:
            Linker(threshold).link(binary)
        return cls(binary)

    def is_tagged(self, terminator_addr: int) -> bool:
        """Does the instruction at ``terminator_addr`` carry the tag bit?"""
        return terminator_addr in self.tagged

    @staticmethod
    def bundle_id(next_addr: int) -> int:
        """Bundle ID for the instruction following a tagged call/return."""
        return bundle_id_of(next_addr)

    @property
    def n_bundles(self) -> int:
        return self.link_result.bundles.n_bundles

    def __repr__(self) -> str:
        return (
            f"LoadedProgram(functions={len(self.binary)}, "
            f"bundles={self.n_bundles}, tagged_instrs={len(self.tagged)})"
        )
