"""Synthetic ISA, binary format, and toolchain (linker / loader).

The paper's software side operates on real x86-64 / AArch64 binaries: it
builds a call graph at link time, tags bundle-entry call/return
instructions using a reserved encoding bit, and records the entry
addresses in an ELF-like segment.  This package provides the synthetic
equivalent: a fixed-width RISC-like ISA (4-byte instructions, 64-byte
cache blocks), a :class:`~repro.isa.binary.Binary` container of
:class:`~repro.isa.binary.Function` objects whose bodies are explicit
basic-block programs, a :class:`~repro.isa.linker.Linker` that runs the
bundle-identification pass, and a :class:`~repro.isa.loader.LoadedProgram`
that applies the tag bits for the hardware to observe.
"""

from repro.isa.instructions import (
    BranchKind,
    INSTR_BYTES,
    CACHE_BLOCK_BYTES,
    PAGE_BYTES,
    block_of,
    block_addr,
    page_of,
)
from repro.isa.binary import BlockSpec, Function, Binary
from repro.isa.linker import Linker, LinkResult
from repro.isa.loader import LoadedProgram

__all__ = [
    "BranchKind",
    "INSTR_BYTES",
    "CACHE_BLOCK_BYTES",
    "PAGE_BYTES",
    "block_of",
    "block_addr",
    "page_of",
    "BlockSpec",
    "Function",
    "Binary",
    "Linker",
    "LinkResult",
    "LoadedProgram",
]
