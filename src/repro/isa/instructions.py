"""Instruction-level constants and helpers for the synthetic ISA.

The synthetic ISA is deliberately minimal: fixed 4-byte instructions, a
flat 48-bit address space, and seven control-flow terminator kinds.  The
paper targets x86-64/AArch64 and uses a reserved bit in call/return
encodings to mark Bundle entry points; here the tag travels as an explicit
boolean on the trace record (see :mod:`repro.isa.loader`), which is the
same one-bit channel.
"""

from __future__ import annotations

import enum

#: Size of one instruction in bytes (fixed-width RISC-like encoding).
INSTR_BYTES = 4

#: Size of one cache block in bytes (matches Table 1 of the paper).
CACHE_BLOCK_BYTES = 64

#: Log2 of the cache block size, used for fast address-to-block shifts.
BLOCK_SHIFT = 6

#: Size of one virtual-memory page in bytes (used by the I-TLB model).
PAGE_BYTES = 4096

#: Log2 of the page size.
PAGE_SHIFT = 12

#: Base virtual address at which the text segment is laid out.
TEXT_BASE = 0x400000


class BranchKind(enum.IntEnum):
    """Terminator kind of a basic block.

    ``NONE`` means the block falls through (only valid as an internal
    artifact, e.g. a block split across a function boundary); every real
    basic block in a function body ends with one of the control-flow
    kinds below.
    """

    NONE = 0
    #: Conditional direct branch (taken/not-taken decided per execution).
    COND = 1
    #: Unconditional direct jump.
    JUMP = 2
    #: Direct call; pushes a return address.
    CALL = 3
    #: Return; pops the return address.
    RET = 4
    #: Indirect call through a register (dispatch point).
    ICALL = 5
    #: Indirect jump (e.g. jump table).
    IJUMP = 6


#: Kinds that transfer control to a callee and push a return address.
CALL_KINDS = frozenset({BranchKind.CALL, BranchKind.ICALL})

#: Kinds whose target cannot be encoded in the instruction (BTB-dependent).
INDIRECT_KINDS = frozenset({BranchKind.ICALL, BranchKind.IJUMP})


def block_of(addr: int) -> int:
    """Return the cache-block index containing byte address ``addr``."""
    return addr >> BLOCK_SHIFT


def block_addr(block: int) -> int:
    """Return the first byte address of cache-block index ``block``."""
    return block << BLOCK_SHIFT


def page_of(addr: int) -> int:
    """Return the page index containing byte address ``addr``."""
    return addr >> PAGE_SHIFT


def blocks_spanned(addr: int, nbytes: int) -> range:
    """Return the range of cache-block indices touched by ``nbytes``
    starting at ``addr``.

    Basic blocks are small (a handful of instructions) so this is a range
    of one or two blocks in practice.
    """
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    first = addr >> BLOCK_SHIFT
    last = (addr + nbytes - 1) >> BLOCK_SHIFT
    return range(first, last + 1)
