"""Simulation statistics.

A single mutable container shared by the simulator, the memory
hierarchy, the front end and the prefetchers.  Per-origin counters are
3-element lists indexed by the fill-origin constants in
:mod:`repro.memory.cache` (0 = demand, 1 = FDIP, 2 = evaluated
prefetcher).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cpu.component import SimComponent

#: Serving-level keys for miss/latency accounting.
LEVEL_L2 = "L2"
LEVEL_LLC = "LLC"
LEVEL_DRAM = "DRAM"
LEVELS = (LEVEL_L2, LEVEL_LLC, LEVEL_DRAM)


def _per_origin() -> List[int]:
    return [0, 0, 0]


def _per_level() -> Dict[str, int]:
    return {LEVEL_L2: 0, LEVEL_LLC: 0, LEVEL_DRAM: 0}


class SimStats(SimComponent):
    """All counters collected during one simulation run."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (used at the warmup boundary)."""
        # Core
        self.instructions = 0
        self.blocks = 0
        self.cycles = 0.0
        self.stall_fetch = 0.0
        self.stall_mispredict = 0.0
        self.stall_itlb = 0.0
        # Branches
        self.cond_branches = 0
        self.cond_mispredicts = 0
        self.indirect_branches = 0
        self.indirect_mispredicts = 0
        self.returns = 0
        self.ras_mispredicts = 0
        self.btb_lookups = 0
        self.btb_misses = 0
        # L1-I demand stream
        self.demand_accesses = 0
        self.l1i_hits = 0
        #: Split of ``l1i_hits`` by the resident line's fill origin
        #: (demand-fetched vs prefetcher-brought) — the attribution the
        #: replacement-policy study keys on.  ``l1i_hits`` stays the
        #: aggregate for back-compat.
        self.l1i_demand_hits = 0
        self.l1i_prefetch_hits = 0
        self.l1i_misses = 0
        self.l2_demand_misses = 0  # demand fetches served beyond the L2
        self.served_by = _per_level()
        self.exposed_latency = _per_level()  # stall cycles by serving level
        # Prefetching (per origin)
        self.pf_issued = _per_origin()
        self.pf_useful = _per_origin()
        self.pf_useless = _per_origin()   # evicted before any demand hit
        self.pf_redundant = _per_origin()
        self.pf_dropped = _per_origin()
        self.pf_late = _per_origin()      # demand hit while still in flight
        #: L1-I evictions of prefetched lines never touched by a demand
        #: fetch (sum over origins of the prefetch part of pf_useless).
        self.unused_prefetch_evictions = 0
        self.covered = _per_origin()      # L1-I demand hit on a prefetched block
        self.covered_l2 = _per_origin()   # demand L1 miss that hit a prefetched L2 block
        self.distance_sum = _per_origin()  # committed-block distance trigger->use
        self.distance_n = _per_origin()
        # Bandwidth (bytes)
        #: Fill traffic crossing the L2<->uncore boundary (demand and
        #: prefetch fills sourced beyond the L2) — the "memory
        #: bandwidth" denominator of Figure 16.
        self.uncore_fill_bytes = 0
        self.dram_read_bytes = 0
        self.dram_write_bytes = 0
        self.metadata_read_bytes = 0
        self.metadata_write_bytes = 0
        # I-TLB
        self.itlb_accesses = 0
        self.itlb_misses = 0
        # I-TLB prefetch path (core.itlb_prefetch); all zero when off.
        self.itlb_pf_probes = 0
        self.itlb_pf_installs = 0
        self.itlb_pf_hits = 0
        # Free-form per-prefetcher extras (bundle stats, table hit rates…)
        self.extra: Dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1i_mpki(self) -> float:
        """L1-I demand misses per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l1i_misses / self.instructions

    @property
    def l2_mpki(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.l2_demand_misses / self.instructions

    @property
    def prefetch_hit_rate(self) -> float:
        """Fraction of L1-I demand hits served by a prefetched line."""
        return self.l1i_prefetch_hits / self.l1i_hits if self.l1i_hits else 0.0

    @property
    def itlb_mpki(self) -> float:
        """I-TLB demand misses per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.itlb_misses / self.instructions

    @property
    def dram_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def metadata_bytes(self) -> int:
        return self.metadata_read_bytes + self.metadata_write_bytes

    @property
    def memory_traffic_bytes(self) -> int:
        """All memory-side traffic: uncore fills plus metadata accesses
        (the Figure 16 definition: "all memory accesses")."""
        return self.uncore_fill_bytes + self.metadata_bytes

    def accuracy(self, origin: int) -> float:
        """Fraction of origin's prefetches that served a demand fetch."""
        issued = self.pf_issued[origin]
        return self.pf_useful[origin] / issued if issued else 0.0

    def late_fraction(self, origin: int) -> float:
        """Fraction of origin's *useful* prefetches that arrived late."""
        useful = self.pf_useful[origin]
        return self.pf_late[origin] / useful if useful else 0.0

    def avg_distance(self, origin: int) -> float:
        """Average trigger-to-use distance in committed cache blocks."""
        n = self.distance_n[origin]
        return self.distance_sum[origin] / n if n else 0.0

    def total_exposed_latency(self) -> float:
        return sum(self.exposed_latency.values())

    # ------------------------------------------------------------------
    # Per-request latency (request-graph workloads; see repro.cpu.requests)
    # ------------------------------------------------------------------
    @property
    def has_request_latency(self) -> bool:
        """True when the run carried per-request latency accounting."""
        return "request.count" in self.extra

    def request_latency(self, q: float) -> float:
        """Request-latency percentile in cycles (q in [0, 100]).

        Pre-computed p50/p95/p99 are returned directly; other
        percentiles are derived from the per-request series.  0.0 when
        the run had no request accounting.
        """
        key = f"request.p{int(q)}"
        if key in self.extra and float(q) == int(q):
            return self.extra[key]
        series = self.extra.get("probe.request_latency")
        if not series:
            return 0.0
        from repro.cpu.requests import percentile

        return percentile(sorted(series), q)

    @property
    def slo_attainment(self) -> float:
        """Fraction of measured requests meeting the SLO threshold."""
        return self.extra.get("request.slo_attainment", 0.0)

    # ------------------------------------------------------------------
    # Serialization (disk cache / cross-process transport)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Complete counter state as plain containers.

        Unlike :meth:`as_dict` (a reporting snapshot of derived
        metrics), this captures *every* raw counter so that
        ``SimStats.from_state(s.state_dict())`` reproduces ``s``
        exactly — the contract the on-disk simulation cache relies on.
        """
        out: Dict[str, object] = {}
        for name, value in self.__dict__.items():
            if isinstance(value, list):
                out[name] = list(value)
            elif isinstance(value, dict):
                out[name] = dict(value)
            else:
                out[name] = value
        return out

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot *in place*.

        In place matters: the hierarchy, front end and prefetchers all
        hold references to this same ``SimStats`` object, so counters
        must be loaded into it rather than replacing it.  Strict: a
        state whose field set differs from the current class
        (older/newer schema) raises ``ValueError`` so callers treat the
        payload as stale rather than silently loading partial counters.
        """
        expected = set(self.__dict__)
        got = set(state)
        if expected != got:
            missing = expected - got
            unknown = got - expected
            raise ValueError(
                f"stale SimStats state (missing={sorted(missing)}, "
                f"unknown={sorted(unknown)})"
            )
        for name, value in state.items():
            current = self.__dict__[name]
            if isinstance(current, list):
                value = list(value)
            elif isinstance(current, dict):
                value = dict(value)
            setattr(self, name, value)

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "SimStats":
        """Rebuild a fresh :class:`SimStats` from :meth:`state_dict`."""
        stats = cls()
        stats.load_state_dict(state)
        return stats

    def stats_snapshot(self) -> Dict[str, float]:
        return {
            "ipc": self.ipc,
            "l1i_mpki": self.l1i_mpki,
            "instructions": float(self.instructions),
        }

    def __eq__(self, other: object) -> bool:
        """Field-exact equality (every raw counter identical)."""
        if not isinstance(other, SimStats):
            return NotImplemented
        return self.__dict__ == other.__dict__

    # Keep identity hashing: SimStats is mutable, and equality is only
    # meant for determinism/round-trip assertions.
    __hash__ = object.__hash__

    def as_dict(self) -> Dict[str, object]:
        """Flat snapshot for reporting."""
        out: Dict[str, object] = {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "l1i_mpki": self.l1i_mpki,
            "l2_mpki": self.l2_mpki,
            "l1i_misses": self.l1i_misses,
            "l2_demand_misses": self.l2_demand_misses,
            "dram_bytes": self.dram_bytes,
        }
        out.update(self.extra)
        return out

    def __repr__(self) -> str:
        return (
            f"SimStats(instrs={self.instructions}, ipc={self.ipc:.3f}, "
            f"l1i_mpki={self.l1i_mpki:.2f})"
        )
