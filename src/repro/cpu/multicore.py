"""Multi-core shared-metadata mode (paper §5.3).

The paper exploits the control-flow similarity of cores serving the
same workload: "we share the metadata buffer across multiple cores and
randomly select one core to generate the instruction history".  This
module models that arrangement: one *recording* core builds the Bundle
history; the remaining cores run replay-only Hierarchical Prefetchers
against the shared Metadata Buffer / Metadata Address Table.

Cores are simulated sequentially on per-core traces (same application,
different request streams), so the model captures the first-order
question — does one core's recorded history cover another core's
execution? — without simulating cache-coherent timing interleaving
(documented in DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.metadata import MetadataAddressTable, MetadataBuffer
from repro.core.prefetcher import HierarchicalPrefetcher, HPConfig
from repro.cpu.config import MachineConfig
from repro.cpu.simulator import FrontEndSimulator
from repro.cpu.stats import SimStats


@dataclass
class MultiCoreResult:
    """Per-core statistics plus shared-metadata summary."""

    core_stats: List[SimStats]
    baseline_stats: List[SimStats]
    recorder_core: int

    @property
    def n_cores(self) -> int:
        return len(self.core_stats)

    def speedup(self, core: int) -> float:
        return (self.core_stats[core].ipc
                / self.baseline_stats[core].ipc - 1.0)

    def replay_only_speedups(self) -> List[float]:
        return [
            self.speedup(core)
            for core in range(self.n_cores)
            if core != self.recorder_core
        ]

    def coverage(self, core: int) -> float:
        base = self.baseline_stats[core].l1i_misses
        if not base:
            return 0.0
        return (base - self.core_stats[core].l1i_misses) / base


def make_shared_group(
    n_cores: int, config: Optional[HPConfig] = None, recorder: int = 0
) -> List[HierarchicalPrefetcher]:
    """Build ``n_cores`` HP instances over one shared metadata store.

    Core ``recorder`` records and replays; the others are replay-only
    (their Compression Buffer output is discarded, as in the paper's
    single-history-generator arrangement).
    """
    if not 0 <= recorder < n_cores:
        raise ValueError(f"recorder {recorder} out of range")
    config = config or HPConfig()
    mat = MetadataAddressTable(config.mat_entries, config.mat_assoc)
    buffer = MetadataBuffer(
        config.metadata_buffer_bytes, on_invalidate=mat.invalidate
    )
    group = []
    for core in range(n_cores):
        pf = HierarchicalPrefetcher(config)
        pf.shared_mat = mat
        pf.shared_buffer = buffer
        pf.record_enabled = core == recorder
        group.append(pf)
    return group


def simulate_shared(
    traces: Sequence,
    config: Optional[MachineConfig] = None,
    hp_config: Optional[HPConfig] = None,
    recorder: int = 0,
    warmup_fraction: float = 0.45,
) -> MultiCoreResult:
    """Run one trace per core with shared HP metadata.

    The recording core runs first (its history must exist before the
    replay-only cores can profit); per-core FDIP baselines are run for
    the speedup denominators.
    """
    n_cores = len(traces)
    if n_cores < 2:
        raise ValueError("shared-metadata mode needs >= 2 cores")
    group = make_shared_group(n_cores, hp_config, recorder)
    order = [recorder] + [c for c in range(n_cores) if c != recorder]
    core_stats: List[Optional[SimStats]] = [None] * n_cores
    base_stats: List[Optional[SimStats]] = [None] * n_cores
    for core in order:
        sim = FrontEndSimulator(config=config, prefetcher=group[core])
        core_stats[core] = sim.run(traces[core],
                                   warmup_fraction=warmup_fraction)
        base = FrontEndSimulator(config=config)
        base_stats[core] = base.run(traces[core],
                                    warmup_fraction=warmup_fraction)
    return MultiCoreResult(
        core_stats=core_stats,          # type: ignore[arg-type]
        baseline_stats=base_stats,      # type: ignore[arg-type]
        recorder_core=recorder,
    )
