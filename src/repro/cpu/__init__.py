"""Trace-driven, cycle-approximate CPU front-end timing model.

This is the substrate standing in for gem5's O3CPU full-system runs (see
DESIGN.md §2): a fixed-commit-width core with a decoupled FDIP front
end, the Table-1 memory hierarchy, and pluggable instruction
prefetchers.  The model is deterministic: identical traces and
configurations produce identical cycle counts.
"""

from repro.cpu.component import ComponentRegistry, SimComponent
from repro.cpu.config import DEFAULT_WARMUP, CoreConfig, MachineConfig
from repro.cpu.probes import ProbeBus
from repro.cpu.requests import RequestLatencyTracker
from repro.cpu.simulator import FrontEndSimulator, simulate
from repro.cpu.stats import SimStats


def __getattr__(name):
    # Multi-core shared-metadata mode pulls in repro.core, which would
    # make this package's import graph cyclic if imported eagerly.
    if name in ("simulate_shared", "make_shared_group", "MultiCoreResult"):
        from repro.cpu import multicore

        return getattr(multicore, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ComponentRegistry",
    "SimComponent",
    "ProbeBus",
    "RequestLatencyTracker",
    "CoreConfig",
    "DEFAULT_WARMUP",
    "MachineConfig",
    "FrontEndSimulator",
    "simulate",
    "SimStats",
    "simulate_shared",
    "make_shared_group",
    "MultiCoreResult",
]
