"""Per-request latency accounting for request-graph workloads.

The :class:`RequestLatencyTracker` timestamps the commit clock at every
request boundary inside the measurement window — the simulator splits
the window at boundaries exactly like it splits at probe intervals, so
the hot loop stays uninstrumented — and at the end of the run converts
the per-request *service times* into end-to-end latencies under the
trace's bursty open-loop arrival process:

* arrivals live on the ideal-instruction clock recorded in
  ``trace.request_gaps`` (identical offered load for every prefetcher
  simulating the trace — the SLOFetch methodology);
* the core serves requests in order, so latency follows the standard
  single-server queueing recurrence
  ``finish_k = max(arrival_k, finish_{k-1}) + service_k``;
* the SLO threshold is ``trace.slo_instr`` converted to cycles.

Published into ``SimStats.extra`` like the probe-bus timelines: flat
immutable tuples under ``probe.request_*`` (per-request and windowed
series) plus scalar ``request.*`` summary metrics — both survive the
shallow copies ``SimStats.state_dict`` makes for the disk cache and the
sweep engine's cross-process transport.

Tracker state is *not* machine state: it is rebuilt from the trace and
the commit position at every measurement start, so warmup checkpoints
remain tracker-configuration-independent (mirroring the probe bus).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

#: Boundary sentinel past any trace index (traces are far smaller).
_NO_BOUNDARY = 1 << 62

#: Tumbling-window count for the SLO/percentile timelines: the measured
#: requests are split into up to this many equal windows.
_TIMELINE_WINDOWS = 8


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    n = len(sorted_values)
    if not n:
        return 0.0
    rank = max(1, min(n, math.ceil(q / 100.0 * n)))
    return sorted_values[rank - 1]


class RequestLatencyTracker:
    """Timestamps request boundaries; publishes SLO/tail metrics.

    Lifecycle mirrors :class:`~repro.cpu.probes.ProbeBus`: ``begin`` at
    measurement start (from trace + commit position only), ``record``
    at each boundary the simulator crosses, ``publish`` at measurement
    end.
    """

    def __init__(self) -> None:
        self.active = False
        #: Next trace index at which the simulator must split the
        #: commit range and call :meth:`record`.
        self.next_boundary = _NO_BOUNDARY
        self._bounds: List[int] = []
        self._bptr = 0
        self._times: List[float] = []
        self._times_append = self._times.append
        self._arrivals: List[float] = []
        self._types: List[int] = []
        self._slo_cycles = 0.0

    # ------------------------------------------------------------------
    def begin(self, trace, start_index: int, commit_width: int,
              enabled: bool) -> None:
        """Arm the tracker for a measurement window.

        Derives everything from ``trace`` and ``start_index`` so a
        resumed-from-checkpoint run and a cold run see identical
        boundaries.  Only requests that *start* inside the window are
        measured (a request cut by the warmup boundary has no defined
        latency).
        """
        self.active = False
        self.next_boundary = _NO_BOUNDARY
        gaps = getattr(trace, "request_gaps", None)
        if not enabled or gaps is None:
            return
        measured = [k for k, (s, _) in enumerate(trace.requests)
                    if s >= start_index]
        if not measured:
            return
        starts = trace.requests
        self._bounds = [starts[k][0] for k in measured] + [len(trace)]
        self._bptr = 0
        self._times = []
        self._times_append = self._times.append
        inv_width = 1.0 / commit_width
        arrivals: List[float] = [0.0]
        for k in measured[1:]:
            arrivals.append(arrivals[-1] + gaps[k] * inv_width)
        self._arrivals = arrivals
        self._types = [starts[k][1] for k in measured]
        self._slo_cycles = trace.slo_instr * inv_width
        self.active = True
        self.next_boundary = self._bounds[0]

    def record(self, now: float) -> None:
        """Timestamp the boundary the commit loop just reached."""
        # lint: hot-begin
        self._times_append(now)
        bptr = self._bptr + 1
        self._bptr = bptr
        bounds = self._bounds
        self.next_boundary = (bounds[bptr] if bptr < len(bounds)
                              else _NO_BOUNDARY)
        # lint: hot-end

    def reset(self) -> None:
        self.active = False
        self.next_boundary = _NO_BOUNDARY
        self._bounds = []
        self._bptr = 0
        self._times = []
        self._times_append = self._times.append

    # ------------------------------------------------------------------
    def publish(self, stats) -> None:
        """Write per-request series and summary metrics into ``stats``."""
        if not self.active:
            return
        times = self._times
        if len(times) != len(self._bounds):
            return  # measurement did not reach the end of the trace
        t0 = times[0]
        arrivals = self._arrivals
        services = [times[j + 1] - times[j] for j in range(len(times) - 1)]
        latencies: List[float] = []
        queues: List[float] = []
        finish = 0.0
        for j, service in enumerate(services):
            arrival = arrivals[j]
            wait = finish - arrival if finish > arrival else 0.0
            finish = arrival + wait + service
            queues.append(wait)
            latencies.append(wait + service)
        n = len(latencies)
        slo = self._slo_cycles
        attained = sum(1 for lat in latencies if lat <= slo)
        ordered = sorted(latencies)
        extra: Dict[str, object] = stats.extra
        extra["probe.request_latency"] = tuple(latencies)
        extra["probe.request_service"] = tuple(services)
        extra["probe.request_queue"] = tuple(queues)
        extra["probe.request_arrival"] = tuple(arrivals)
        extra["probe.request_start"] = tuple(t - t0 for t in times[:-1])
        extra["probe.request_type"] = tuple(float(t) for t in self._types)
        window = max(1, n // _TIMELINE_WINDOWS)
        p50s: List[float] = []
        p95s: List[float] = []
        p99s: List[float] = []
        slos: List[float] = []
        for lo in range(0, n, window):
            chunk = sorted(latencies[lo:lo + window])
            p50s.append(percentile(chunk, 50.0))
            p95s.append(percentile(chunk, 95.0))
            p99s.append(percentile(chunk, 99.0))
            slos.append(sum(1 for lat in chunk if lat <= slo) / len(chunk))
        extra["probe.request_p50"] = tuple(p50s)
        extra["probe.request_p95"] = tuple(p95s)
        extra["probe.request_p99"] = tuple(p99s)
        extra["probe.request_slo"] = tuple(slos)
        extra["request.count"] = float(n)
        extra["request.window"] = float(window)
        extra["request.mean"] = sum(latencies) / n
        extra["request.max"] = ordered[-1]
        extra["request.p50"] = percentile(ordered, 50.0)
        extra["request.p95"] = percentile(ordered, 95.0)
        extra["request.p99"] = percentile(ordered, 99.0)
        extra["request.slo_threshold"] = slo
        extra["request.slo_attainment"] = attained / n

    def __repr__(self) -> str:
        return (
            f"RequestLatencyTracker(active={self.active}, "
            f"requests={max(0, len(self._bounds) - 1)}, "
            f"recorded={len(self._times)})"
        )
