"""Machine configuration (Table 1 of the paper).

``MachineConfig`` aggregates the core, front-end and memory-hierarchy
parameters.  Experiment code mutates copies of the default config (via
:meth:`MachineConfig.replace`) rather than passing loose keyword
arguments around.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.frontend.fdip import FrontEndParams
from repro.memory.hierarchy import HierarchyParams

#: Warmup fraction shared by every entry point (simulator defaults, the
#: CLI ``--warmup`` flags, and the experiment runner).  The paper warms
#: 100M of 200M instructions; our preheated traces need a little less
#: than half.  Single source of truth — change it here only (pinned by
#: tests/test_bench.py).
DEFAULT_WARMUP = 0.45


@dataclass
class CoreConfig:
    """Commit-engine parameters.

    The back end is modelled as a fixed-width commit engine (Ice-Lake-
    like width 5); data-side stalls are out of scope — the paper's
    effects all live in the front end.
    """

    commit_width: int = 5
    #: Cycles of fetch latency the decoupled front end / OoO window can
    #: absorb before the commit stream stalls (decode+rename queue
    #: depth).  L2-hit latency (14 cycles) sits below this, matching the
    #: observation that only L2-and-beyond instruction misses hurt.
    fetch_slack: float = 26.0
    itlb_entries: int = 128
    itlb_walk_latency: int = 40
    #: Replacement policy for the I-TLB (see repro.memory.policies).
    itlb_policy: str = "lru"
    #: When True, FDIP runahead / HP replay / baseline-prefetcher
    #: addresses also probe the I-TLB at page granularity, installing
    #: missing translations without stalling (off by default so the
    #: seed golden matrix stays bit-identical).
    itlb_prefetch: bool = False


@dataclass
class MachineConfig:
    """Complete simulated-machine configuration."""

    core: CoreConfig = field(default_factory=CoreConfig)
    frontend: FrontEndParams = field(default_factory=FrontEndParams)
    hierarchy: HierarchyParams = field(default_factory=HierarchyParams)

    def replace(self, **kwargs) -> "MachineConfig":
        """Deep-copy this config, applying dotted overrides.

        Example::

            cfg.replace(**{"hierarchy.l1i_bytes": 64 * 1024,
                           "frontend.btb_entries": None})
        """
        new = copy.deepcopy(self)
        for key, value in kwargs.items():
            obj = new
            parts = key.split(".")
            for part in parts[:-1]:
                obj = getattr(obj, part)
            if not hasattr(obj, parts[-1]):
                raise AttributeError(f"unknown config field {key!r}")
            setattr(obj, parts[-1], value)
        return new
