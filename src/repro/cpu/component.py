"""The unified simulation-component state protocol.

Every stateful microarchitectural model in the simulator — caches, TLB,
branch predictors, the FDIP front end, the memory hierarchy, every
instruction prefetcher, and the statistics container — implements
:class:`SimComponent`, a small torch-module-style protocol:

``reset()``
    Return the component to its power-on state (geometry/configuration
    preserved, learned state dropped).
``state_dict()``
    A self-contained, picklable snapshot of *all* mutable state.  The
    contract is exactness: loading the snapshot into a freshly
    constructed component with the same configuration must reproduce
    bit-identical future behavior.  Snapshots share no mutable
    containers with the live component.
``load_state_dict(state)``
    Restore a ``state_dict()`` snapshot.  Strict: a snapshot whose
    field set does not match the current implementation raises
    ``ValueError`` so callers treat it as stale instead of silently
    loading partial state.
``stats_snapshot()``
    A small flat dict of derived observability metrics (occupancy,
    hit rates, accuracy).  Cheap enough to call mid-run; consumed by
    the interval probe bus and the ``repro probe`` CLI.

:class:`FrontEndSimulator` composes components through a
:class:`ComponentRegistry` rather than hand-wired attributes, which is
what makes whole-machine snapshots (the warmup checkpoint/resume path
in :mod:`repro.experiments.runner`) a one-liner.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple, TypeVar


class SimComponent:
    """Base class for every snapshottable simulator component."""

    def reset(self) -> None:
        """Return to the power-on state (configuration preserved)."""
        raise NotImplementedError(f"{type(self).__name__}.reset")

    def state_dict(self) -> Dict[str, object]:
        """Self-contained snapshot of all mutable state."""
        raise NotImplementedError(f"{type(self).__name__}.state_dict")

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (strict)."""
        raise NotImplementedError(f"{type(self).__name__}.load_state_dict")

    def stats_snapshot(self) -> Dict[str, float]:
        """Flat derived-metric snapshot for observability probes."""
        return {}


def check_state_fields(component: SimComponent, state: Dict[str, object],
                       expected) -> None:
    """Reject snapshots whose field set differs from ``expected``.

    Shared strictness helper: stale checkpoints (older/newer schema)
    must fail loudly so callers fall back to a cold run rather than
    resuming from partial state.
    """
    expected = set(expected)
    got = set(state)
    if expected != got:
        raise ValueError(
            f"stale {type(component).__name__} state "
            f"(missing={sorted(expected - got)}, "
            f"unknown={sorted(got - expected)})"
        )


C = TypeVar("C", bound=SimComponent)


class ComponentRegistry:
    """Ordered, typed registry of named :class:`SimComponent` instances.

    ``register`` returns the component it was given, so composition
    sites keep their direct (hot-path) attribute references::

        self.hierarchy = registry.register("hierarchy", MemoryHierarchy(...))

    The registry then provides whole-machine ``state_dict`` /
    ``load_state_dict`` / ``reset`` / ``stats_snapshot`` by delegating
    to every registered component in registration order.
    """

    def __init__(self) -> None:
        self._components: Dict[str, SimComponent] = {}

    def register(self, name: str, component: C) -> C:
        if not isinstance(component, SimComponent):
            raise TypeError(
                f"component {name!r} ({type(component).__name__}) does not "
                "implement SimComponent"
            )
        if name in self._components:
            raise ValueError(f"component {name!r} already registered")
        self._components[name] = component
        return component

    def __getitem__(self, name: str) -> SimComponent:
        return self._components[name]

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __len__(self) -> int:
        return len(self._components)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._components)

    def items(self) -> Iterator[Tuple[str, SimComponent]]:
        return iter(self._components.items())

    # ------------------------------------------------------------------
    # Protocol delegation
    # ------------------------------------------------------------------
    def reset(self) -> None:
        for component in self._components.values():
            component.reset()

    def state_dict(self) -> Dict[str, object]:
        return {
            name: component.state_dict()
            for name, component in self._components.items()
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        expected = set(self._components)
        got = set(state)
        if expected != got:
            raise ValueError(
                f"component set mismatch (missing={sorted(expected - got)}, "
                f"unknown={sorted(got - expected)})"
            )
        for name, component in self._components.items():
            component.load_state_dict(state[name])

    def stats_snapshot(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, component in self._components.items():
            for key, value in component.stats_snapshot().items():
                out[f"{name}.{key}"] = value
        return out

    def __repr__(self) -> str:
        return f"ComponentRegistry({', '.join(self._components)})"
