"""Interval probe bus: periodic observability hooks over the commit loop.

A :class:`ProbeBus` with interval N fires once every N committed
instructions *inside the measurement window*, sampling the machine
(IPC, L1-I MPKI, prefetch accuracy, plus any subscriber hooks) and
publishing the resulting timelines into ``SimStats.extra`` as flat
immutable tuples under ``probe.*`` keys.

Zero-overhead-when-disabled is structural, not conditional: the
simulator pre-splits the measurement range at probe boundaries and runs
each chunk through the unmodified hot loop, firing the bus only between
chunks.  With probes disabled the measurement window is one chunk and
the hot loop is untouched.

Probes never fire during warmup, so warmup checkpoints (see
:mod:`repro.experiments.runner`) are probe-configuration-independent.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.memory.cache import ORIGIN_PF

#: One probe sample: cumulative measured instructions and cycles, plus
#: interval IPC / L1-I MPKI and cumulative prefetch accuracy.
ProbeSample = Tuple[float, float, float, float, float]


class ProbeBus:
    """Fires sampling hooks every ``interval`` committed instructions.

    ``interval <= 0`` disables the bus entirely.  Subscribers are called
    as ``fn(sim, sample)`` after each built-in sample is taken.
    """

    def __init__(self, interval: int = 0):
        self.interval = int(interval)
        self.samples: List[ProbeSample] = []
        self._subscribers: List[Callable] = []
        self._next_fire = 0
        self._prev_instructions = 0
        self._prev_cycles = 0.0
        self._prev_misses = 0

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    def subscribe(self, fn: Callable) -> None:
        """Register ``fn(sim, sample)`` to run at every probe point."""
        self._subscribers.append(fn)

    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start a measurement window (stats were just reset)."""
        self.samples = []
        self._next_fire = self.interval
        self._prev_instructions = 0
        self._prev_cycles = 0.0
        self._prev_misses = 0

    @property
    def next_fire(self) -> int:
        """Measured-instruction count at which the next probe fires."""
        return self._next_fire

    def fire(self, sim) -> ProbeSample:
        """Sample the machine at a chunk boundary."""
        stats = sim.stats
        instructions = stats.instructions
        cycles = sim.now - sim._cycle0
        d_inst = instructions - self._prev_instructions
        d_cyc = cycles - self._prev_cycles
        d_miss = stats.l1i_misses - self._prev_misses
        sample: ProbeSample = (
            float(instructions),
            cycles,
            d_inst / d_cyc if d_cyc else 0.0,
            1000.0 * d_miss / d_inst if d_inst else 0.0,
            stats.accuracy(ORIGIN_PF),
        )
        self.samples.append(sample)
        self._prev_instructions = instructions
        self._prev_cycles = cycles
        self._prev_misses = stats.l1i_misses
        self._next_fire += self.interval
        for fn in self._subscribers:
            fn(sim, sample)
        return sample

    def publish(self, stats) -> None:
        """Write the collected timelines into ``stats.extra``.

        Values are flat immutable tuples, so they survive the shallow
        dict copies ``SimStats.state_dict`` makes for the disk cache.
        """
        if not self.samples:
            return
        columns = tuple(zip(*self.samples))
        extra: Dict[str, object] = stats.extra
        extra["probe.interval"] = float(self.interval)
        extra["probe.instructions"] = columns[0]
        extra["probe.cycles"] = columns[1]
        extra["probe.ipc"] = columns[2]
        extra["probe.l1i_mpki"] = columns[3]
        extra["probe.pf_accuracy"] = columns[4]

    def __repr__(self) -> str:
        return f"ProbeBus(interval={self.interval}, samples={len(self.samples)})"
