"""Trace-driven front-end timing simulator.

The commit loop walks the basic-block trace once.  Per committed block:

1. the FDIP front end advances its runahead pointer (issuing FTQ
   prefetches, evaluating branch predictions in trace order);
2. the I-TLB translates the block's page (stalling on a walk);
3. the demand fetch of the block's cache line(s) goes to the hierarchy
   (stalling for residual fill latency on a miss);
4. cycles advance by ``ninstr / commit_width`` plus any branch penalty
   charged when a mispredicted/BTB-missing terminator commits;
5. the attached instruction prefetcher observes the commit.

The model is deterministic and warmup-aware: statistics are reset at the
warmup boundary while all microarchitectural state (caches, predictors,
prefetcher metadata) persists — mirroring the paper's 100M-warmup /
100M-measure methodology at reduced scale.

The machine is composed of :class:`~repro.cpu.component.SimComponent`
models held in a :class:`~repro.cpu.component.ComponentRegistry`; the
simulator is itself a ``SimComponent`` whose ``state_dict`` is a
complete machine snapshot.  ``run`` splits into :meth:`warmup` /
:meth:`measure`, with :meth:`resume` restoring a snapshot taken at the
warmup boundary (the checkpoint path in
:mod:`repro.experiments.runner`).  An optional
:class:`~repro.cpu.probes.ProbeBus` samples the machine every
``probe_interval`` measured instructions by pre-splitting the
measurement window at probe boundaries — the hot loop itself is never
instrumented.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cpu.component import ComponentRegistry, SimComponent, \
    check_state_fields
from repro.cpu.config import DEFAULT_WARMUP, MachineConfig
from repro.cpu.probes import ProbeBus
from repro.cpu.requests import RequestLatencyTracker
from repro.cpu.stats import SimStats
from repro.frontend.fdip import FDIPFrontEnd, PEN_BTB_MISS, PEN_MISPREDICT
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.tlb import InstructionTLB


class FrontEndSimulator(SimComponent):
    """One simulated core running one trace."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        prefetcher=None,
        track_block_misses: bool = False,
        probe_interval: int = 0,
        track_requests: Optional[bool] = None,
    ):
        self.config = config or MachineConfig()
        self.components = ComponentRegistry()
        self.stats = self.components.register("stats", SimStats())
        self.hierarchy = self.components.register(
            "hierarchy", MemoryHierarchy(self.config.hierarchy, self.stats)
        )
        self.frontend = self.components.register(
            "frontend", FDIPFrontEnd(self.config.frontend, self.stats)
        )
        self.itlb = self.components.register(
            "itlb",
            InstructionTLB(
                self.config.core.itlb_entries,
                self.config.core.itlb_walk_latency,
                policy=self.config.core.itlb_policy,
            ),
        )
        self.prefetcher = prefetcher
        if prefetcher is not None:
            self.components.register("prefetcher", prefetcher)
        if track_block_misses:
            self.hierarchy.l2_miss_map = {}
        self.probes = ProbeBus(probe_interval)
        #: Per-request latency accounting (see repro.cpu.requests).
        #: ``track_requests=None`` auto-enables on traces that carry an
        #: open-loop arrival process (``trace.request_gaps``); ``False``
        #: forces it off, ``True`` demands it (errors at measurement
        #: start if the trace has no arrivals).  Like the probe bus,
        #: tracker state is measurement-local and excluded from machine
        #: snapshots.
        self._track_requests = track_requests
        self.reqtrack = RequestLatencyTracker()
        self.now = 0.0
        self.commit_index = 0
        self.trace = None
        self._ran = False
        self._measuring = False
        self._next_index = 0
        self._last_block = -1
        self._last_page = -1
        self._cycle0 = 0.0
        self._itlb_acc0 = 0
        self._itlb_miss0 = 0
        self._itlb_pfp0 = 0
        self._itlb_pfi0 = 0
        self._itlb_pfh0 = 0

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def run(self, trace, warmup_fraction: float = DEFAULT_WARMUP) -> SimStats:
        """Simulate ``trace``; return measured-window statistics."""
        self.warmup(trace, warmup_fraction)
        return self.measure()

    def warmup(self, trace, warmup_fraction: float = DEFAULT_WARMUP) -> int:
        """Bind ``trace`` and run the warmup window.

        Returns the warmup-end trace index.  The machine state at
        return is exactly what :meth:`state_dict` should snapshot for a
        warmup checkpoint; :meth:`measure` then runs the measured
        window.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self._begin_run(trace)
        warmup_end = int(len(trace) * warmup_fraction)
        self._last_block = -1
        self._last_page = -1
        if warmup_end:
            self._run_range(0, warmup_end)
        self._next_index = warmup_end
        return warmup_end

    def resume(self, trace, state: Dict[str, object]) -> "FrontEndSimulator":
        """Bind ``trace`` and restore a machine snapshot.

        The snapshot must come from a simulator with the same
        configuration running the same trace (warmup checkpoints are
        keyed accordingly).  A stale or mismatched snapshot raises
        ``ValueError`` — callers fall back to a cold :meth:`warmup` on
        a *fresh* simulator.
        """
        self._begin_run(trace)
        self.load_state_dict(state)
        return self

    def measure(self) -> SimStats:
        """Run from the current position to the end of the trace."""
        trace = self.trace
        if trace is None:
            raise RuntimeError("no trace bound; call warmup() or resume()")
        n = len(trace)
        if not self._measuring:
            self._begin_measurement()
        probes = self.probes
        reqtrack = self.reqtrack
        if probes.enabled or reqtrack.active:
            # Pre-split the measurement window at probe intervals and
            # request boundaries; the hot loop runs each chunk unmodified
            # (the zero-overhead-when-disabled contract extends to the
            # request tracker: without arrivals this branch is untaken).
            nin = trace.ninstr
            probing = probes.enabled
            i = self._next_index
            counted = self.stats.instructions
            target = 0
            while i < n:
                rb = reqtrack.next_boundary  # sentinel when inactive
                bound = rb if rb < n else n
                if probing:
                    target = probes.next_fire
                    j = i
                    while j < bound and counted < target:
                        counted += nin[j]
                        j += 1
                else:
                    j = bound
                self._run_range(i, j)
                self._next_index = j
                i = j
                if j == rb:  # rb is the sentinel when inactive: no match
                    reqtrack.record(self.now)
                if probing and counted >= target:
                    probes.fire(self)
        else:
            self._run_range(self._next_index, n)
            self._next_index = n
        self._finish_measurement()
        return self.stats

    def _begin_run(self, trace) -> None:
        if self._ran:
            raise RuntimeError(
                "this FrontEndSimulator already ran a trace; stale "
                "microarchitectural state would corrupt a second run — "
                "call reset() first or construct a fresh simulator"
            )
        if len(trace) == 0:
            raise ValueError("empty trace")
        # Not machine state: resume()/_begin_run re-arm it before any
        # snapshot is loaded, so checkpoints deliberately exclude it.
        self._ran = True  # lint: ephemeral
        self.trace = trace
        self.frontend.bind(trace, self.hierarchy, self.itlb,
                           self.config.core.itlb_prefetch)
        if self.prefetcher is not None:
            self.prefetcher.attach(self, trace)

    # ------------------------------------------------------------------
    def _begin_measurement(self) -> None:
        self.stats.reset()
        if self.hierarchy.l2_miss_map is not None:
            self.hierarchy.l2_miss_map.clear()
        self._cycle0 = self.now
        self._itlb_acc0 = self.itlb.accesses
        self._itlb_miss0 = self.itlb.misses
        self._itlb_pfp0 = self.itlb.pf_probes
        self._itlb_pfi0 = self.itlb.pf_installs
        self._itlb_pfh0 = self.itlb.pf_hits
        self._last_block = -1
        self._last_page = -1
        self._measuring = True
        if self.prefetcher is not None:
            self.prefetcher.on_measurement_start()
        self.probes.begin()
        enabled = self._track_requests
        if enabled is None:
            enabled = getattr(self.trace, "request_gaps", None) is not None
        elif enabled and getattr(self.trace, "request_gaps", None) is None:
            raise ValueError(
                "track_requests=True but the trace carries no open-loop "
                "arrival process (request_gaps); generate it from an "
                "application with an ArrivalSpec"
            )
        self.reqtrack.begin(self.trace, self._next_index,
                            self.config.core.commit_width, enabled)

    def _finish_measurement(self) -> None:
        stats = self.stats
        stats.cycles = self.now - self._cycle0
        stats.itlb_accesses = self.itlb.accesses - self._itlb_acc0
        stats.itlb_misses = self.itlb.misses - self._itlb_miss0
        stats.itlb_pf_probes = self.itlb.pf_probes - self._itlb_pfp0
        stats.itlb_pf_installs = self.itlb.pf_installs - self._itlb_pfi0
        stats.itlb_pf_hits = self.itlb.pf_hits - self._itlb_pfh0
        self._measuring = False
        if self.prefetcher is not None:
            self.prefetcher.on_measurement_end()
        self.probes.publish(stats)
        self.reqtrack.publish(stats)

    def _run_range(self, start: int, end: int) -> None:
        # The commit loop.  Everything it touches per iteration is a
        # local: bound methods, the trace's precomputed decode tables,
        # and scalar accumulators that are flushed into SimStats once at
        # the end of the range (the probe bus only samples at range
        # boundaries, so chunk-local accumulation is observably
        # equivalent).  ``self.now`` is still published before each
        # prefetcher ``on_commit`` — EIP's ``on_miss`` reads ``sim.now``
        # and must keep seeing the previous block's commit time.
        trace = self.trace
        nin_arr = trace.ninstr
        b0_arr = trace.block0
        b1_arr = trace.block1
        page_arr = trace.page
        stats = self.stats
        frontend = self.frontend
        hierarchy = self.hierarchy
        itlb = self.itlb
        prefetcher = self.prefetcher
        inv_width = 1.0 / self.config.core.commit_width
        slack = self.config.core.fetch_slack
        mispredict_penalty = self.config.frontend.mispredict_penalty
        btb_miss_penalty = self.config.frontend.btb_miss_penalty
        pen_mispredict = PEN_MISPREDICT
        pen_btb_miss = PEN_BTB_MISS
        demand_fetch = hierarchy.demand_fetch
        advance = frontend.advance
        translate = itlb.translate
        penalties = frontend.penalties
        penalties_pop = penalties.pop
        on_commit = prefetcher.on_commit if prefetcher is not None else None
        on_miss = prefetcher.on_miss if prefetcher is not None else None
        on_mispredict = (
            prefetcher.on_mispredict if prefetcher is not None else None
        )
        now = self.now
        last_block = self._last_block
        last_page = self._last_page
        instructions = 0
        stall_itlb = 0.0
        stall_fetch = 0.0
        stall_mispredict = 0.0
        # lint: hot-begin
        for i in range(start, end):
            advance(i, now)
            nin = nin_arr[i]
            page = page_arr[i]
            if page != last_page:
                walk = translate(page)
                if walk:
                    now += walk
                    stall_itlb += walk
                last_page = page
            b0 = b0_arr[i]
            b1 = b1_arr[i]
            if b0 != last_block:
                stall = demand_fetch(b0, now, i)
                if stall:
                    if stall > slack:
                        exposed = stall - slack
                        now += exposed
                        stall_fetch += exposed
                    if on_miss is not None:
                        on_miss(b0, i, stall)
            if b1 != b0:
                stall = demand_fetch(b1, now, i)
                if stall:
                    if stall > slack:
                        exposed = stall - slack
                        now += exposed
                        stall_fetch += exposed
                    if on_miss is not None:
                        on_miss(b1, i, stall)
                last_block = b1
            else:
                last_block = b0
            now += nin * inv_width
            if penalties:
                pen = penalties_pop(i, 0)
                if pen:
                    if pen == pen_mispredict:
                        now += mispredict_penalty
                        stall_mispredict += mispredict_penalty
                        if on_mispredict is not None:
                            on_mispredict(i)
                    elif pen == pen_btb_miss:
                        now += btb_miss_penalty
                        stall_mispredict += btb_miss_penalty
            instructions += nin
            if on_commit is not None:
                self.now = now
                on_commit(i, now)
        # lint: hot-end
        stats.instructions += instructions
        stats.blocks += end - start
        stats.stall_itlb += stall_itlb
        stats.stall_fetch += stall_fetch
        stats.stall_mispredict += stall_mispredict
        self.now = now
        # Derived from next_index; load_state_dict recomputes it.
        self.commit_index = (  # lint: ephemeral
            end - 1 if end > start else self.commit_index
        )
        self._last_block = last_block
        self._last_page = last_page

    # ------------------------------------------------------------------
    # SimComponent protocol: the whole machine
    # ------------------------------------------------------------------
    _STATE_FIELDS = ("now", "next_index", "last_block", "last_page",
                     "measuring", "cycle0", "itlb_acc0", "itlb_miss0",
                     "itlb_pfp0", "itlb_pfi0", "itlb_pfh0", "components")

    def reset(self) -> None:
        """Return the whole machine to power-on state for another run."""
        self.components.reset()
        self.now = 0.0
        self.commit_index = 0
        self.trace = None
        self._ran = False
        self._measuring = False
        self._next_index = 0
        self._last_block = -1
        self._last_page = -1
        self._cycle0 = 0.0
        self._itlb_acc0 = 0
        self._itlb_miss0 = 0
        self._itlb_pfp0 = 0
        self._itlb_pfi0 = 0
        self._itlb_pfh0 = 0
        self.probes.begin()
        self.reqtrack.reset()

    def state_dict(self) -> Dict[str, object]:
        """Complete machine snapshot (components + commit position).

        Probe samples are measurement-local observability output, not
        machine state, and are deliberately excluded — a warmup
        checkpoint is therefore probe-configuration-independent.
        """
        return {
            "now": self.now,
            "next_index": self._next_index,
            "last_block": self._last_block,
            "last_page": self._last_page,
            "measuring": self._measuring,
            "cycle0": self._cycle0,
            "itlb_acc0": self._itlb_acc0,
            "itlb_miss0": self._itlb_miss0,
            "itlb_pfp0": self._itlb_pfp0,
            "itlb_pfi0": self._itlb_pfi0,
            "itlb_pfh0": self._itlb_pfh0,
            "components": self.components.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, self._STATE_FIELDS)
        self.components.load_state_dict(state["components"])
        self.now = state["now"]
        self._next_index = state["next_index"]
        self._last_block = state["last_block"]
        self._last_page = state["last_page"]
        self._measuring = state["measuring"]
        self._cycle0 = state["cycle0"]
        self._itlb_acc0 = state["itlb_acc0"]
        self._itlb_miss0 = state["itlb_miss0"]
        self._itlb_pfp0 = state["itlb_pfp0"]
        self._itlb_pfi0 = state["itlb_pfi0"]
        self._itlb_pfh0 = state["itlb_pfh0"]
        self.commit_index = max(0, self._next_index - 1)

    def stats_snapshot(self) -> Dict[str, float]:
        out = self.components.stats_snapshot()
        out["now"] = self.now
        out["next_index"] = float(self._next_index)
        return out


def simulate(
    trace,
    config: Optional[MachineConfig] = None,
    prefetcher=None,
    warmup_fraction: float = DEFAULT_WARMUP,
    track_block_misses: bool = False,
    probe_interval: int = 0,
    track_requests: Optional[bool] = None,
) -> SimStats:
    """One-shot convenience wrapper around :class:`FrontEndSimulator`."""
    sim = FrontEndSimulator(
        config=config,
        prefetcher=prefetcher,
        track_block_misses=track_block_misses,
        probe_interval=probe_interval,
        track_requests=track_requests,
    )
    return sim.run(trace, warmup_fraction=warmup_fraction)
