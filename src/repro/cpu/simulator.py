"""Trace-driven front-end timing simulator.

The commit loop walks the basic-block trace once.  Per committed block:

1. the FDIP front end advances its runahead pointer (issuing FTQ
   prefetches, evaluating branch predictions in trace order);
2. the I-TLB translates the block's page (stalling on a walk);
3. the demand fetch of the block's cache line(s) goes to the hierarchy
   (stalling for residual fill latency on a miss);
4. cycles advance by ``ninstr / commit_width`` plus any branch penalty
   charged when a mispredicted/BTB-missing terminator commits;
5. the attached instruction prefetcher observes the commit.

The model is deterministic and warmup-aware: statistics are reset at the
warmup boundary while all microarchitectural state (caches, predictors,
prefetcher metadata) persists — mirroring the paper's 100M-warmup /
100M-measure methodology at reduced scale.
"""

from __future__ import annotations

from typing import Optional

from repro.cpu.config import MachineConfig
from repro.cpu.stats import SimStats
from repro.frontend.fdip import FDIPFrontEnd, PEN_BTB_MISS, PEN_MISPREDICT
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.tlb import InstructionTLB


class FrontEndSimulator:
    """One simulated core running one trace."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        prefetcher=None,
        track_block_misses: bool = False,
    ):
        self.config = config or MachineConfig()
        self.stats = SimStats()
        self.hierarchy = MemoryHierarchy(self.config.hierarchy, self.stats)
        self.frontend = FDIPFrontEnd(self.config.frontend, self.stats)
        self.itlb = InstructionTLB(
            self.config.core.itlb_entries, self.config.core.itlb_walk_latency
        )
        self.prefetcher = prefetcher
        if track_block_misses:
            self.hierarchy.l2_miss_map = {}
        self.now = 0.0
        self.commit_index = 0
        self.trace = None

    def run(self, trace, warmup_fraction: float = 0.45) -> SimStats:
        """Simulate ``trace``; return measured-window statistics."""
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        n = len(trace)
        if n == 0:
            raise ValueError("empty trace")
        self.trace = trace
        self.frontend.bind(trace, self.hierarchy)
        if self.prefetcher is not None:
            self.prefetcher.attach(self, trace)
        warmup_end = int(n * warmup_fraction)
        if warmup_end:
            self._run_range(0, warmup_end)
        self._begin_measurement()
        self._run_range(warmup_end, n)
        self._finish_measurement()
        return self.stats

    # ------------------------------------------------------------------
    def _begin_measurement(self) -> None:
        self.stats.reset()
        if self.hierarchy.l2_miss_map is not None:
            self.hierarchy.l2_miss_map.clear()
        self._cycle0 = self.now
        self._itlb_acc0 = self.itlb.accesses
        self._itlb_miss0 = self.itlb.misses
        if self.prefetcher is not None:
            self.prefetcher.on_measurement_start()

    def _finish_measurement(self) -> None:
        stats = self.stats
        stats.cycles = self.now - self._cycle0
        stats.itlb_accesses = self.itlb.accesses - self._itlb_acc0
        stats.itlb_misses = self.itlb.misses - self._itlb_miss0
        if self.prefetcher is not None:
            self.prefetcher.on_measurement_end()

    def _run_range(self, start: int, end: int) -> None:
        trace = self.trace
        pc_arr = trace.pc
        nin_arr = trace.ninstr
        stats = self.stats
        frontend = self.frontend
        hierarchy = self.hierarchy
        itlb = self.itlb
        prefetcher = self.prefetcher
        inv_width = 1.0 / self.config.core.commit_width
        slack = self.config.core.fetch_slack
        mispredict_penalty = self.config.frontend.mispredict_penalty
        btb_miss_penalty = self.config.frontend.btb_miss_penalty
        demand_fetch = hierarchy.demand_fetch
        advance = frontend.advance
        translate = itlb.translate
        flags = frontend._flags
        on_commit = prefetcher.on_commit if prefetcher is not None else None
        on_miss = prefetcher.on_miss if prefetcher is not None else None
        on_mispredict = (
            prefetcher.on_mispredict if prefetcher is not None else None
        )
        now = self.now
        last_block = -1
        last_page = -1
        for i in range(start, end):
            advance(i, now)
            pc = pc_arr[i]
            nin = nin_arr[i]
            page = pc >> 12
            if page != last_page:
                walk = translate(page)
                if walk:
                    now += walk
                    stats.stall_itlb += walk
                last_page = page
            b0 = pc >> 6
            b1 = (pc + nin * 4 - 1) >> 6
            if b0 != last_block:
                stall = demand_fetch(b0, now, i)
                if stall:
                    if stall > slack:
                        exposed = stall - slack
                        now += exposed
                        stats.stall_fetch += exposed
                    if on_miss is not None:
                        on_miss(b0, i, stall)
            if b1 != b0:
                stall = demand_fetch(b1, now, i)
                if stall:
                    if stall > slack:
                        exposed = stall - slack
                        now += exposed
                        stats.stall_fetch += exposed
                    if on_miss is not None:
                        on_miss(b1, i, stall)
                last_block = b1
            else:
                last_block = b0
            now += nin * inv_width
            if flags:
                pen = flags.pop(i, 0)
                if pen:
                    if pen == PEN_MISPREDICT:
                        now += mispredict_penalty
                        stats.stall_mispredict += mispredict_penalty
                        if on_mispredict is not None:
                            on_mispredict(i)
                    elif pen == PEN_BTB_MISS:
                        now += btb_miss_penalty
                        stats.stall_mispredict += btb_miss_penalty
            stats.instructions += nin
            stats.blocks += 1
            self.commit_index = i
            if on_commit is not None:
                self.now = now
                on_commit(i, now)
        self.now = now


def simulate(
    trace,
    config: Optional[MachineConfig] = None,
    prefetcher=None,
    warmup_fraction: float = 0.45,
    track_block_misses: bool = False,
) -> SimStats:
    """One-shot convenience wrapper around :class:`FrontEndSimulator`."""
    sim = FrontEndSimulator(
        config=config,
        prefetcher=prefetcher,
        track_block_misses=track_block_misses,
    )
    return sim.run(trace, warmup_fraction=warmup_fraction)
