"""Hierarchical Prefetching — the paper's primary contribution.

Software side: :mod:`repro.core.bundles` implements Algorithm 1 (Bundle
entry-point identification over the static call graph).

Hardware side: :mod:`repro.core.compression` (Compression Buffer),
:mod:`repro.core.metadata` (in-memory Metadata Buffer and on-chip
Metadata Address Table), :mod:`repro.core.record` / :mod:`repro.core.replay`
(the two engines of Figure 8), and :mod:`repro.core.prefetcher`, which
ties them into the commit-driven :class:`HierarchicalPrefetcher`.
"""

from repro.core.bundles import BundleInfo, get_bundle_entries, identify_bundles
from repro.core.compression import CompressionBuffer, SpatialRegion
from repro.core.metadata import (
    MetadataAddressTable,
    MetadataBuffer,
    Segment,
    SEGMENT_REGIONS,
)


def __getattr__(name):
    # HierarchicalPrefetcher pulls in the ISA and prefetcher-base
    # packages, which themselves use repro.core.bundles at link time —
    # resolve it lazily to keep the import graph acyclic.
    if name in ("HierarchicalPrefetcher", "HPConfig"):
        from repro.core import prefetcher

        return getattr(prefetcher, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BundleInfo",
    "get_bundle_entries",
    "identify_bundles",
    "CompressionBuffer",
    "SpatialRegion",
    "MetadataAddressTable",
    "MetadataBuffer",
    "Segment",
    "SEGMENT_REGIONS",
    "HierarchicalPrefetcher",
    "HPConfig",
]
