"""Record engine (paper §5.3.4).

Recording starts at each tagged instruction and ends at the next one (or
when the record length exceeds a threshold).  A fresh Bundle allocates
segments from the Metadata Buffer; a Bundle with an existing record is
*superseded* — the new sequence overwrites the old segments in place,
extending the chain if longer and truncating it if shorter, so only the
most recent execution's footprint survives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.compression import SpatialRegion
from repro.core.metadata import MetadataBuffer, Segment
from repro.cpu.component import SimComponent, check_state_fields

#: Default cap on segments per Bundle record ("a predetermined
#: threshold" in §5.3; 64 segments = 2048 spatial regions).
DEFAULT_MAX_SEGMENTS = 64


@dataclass
class RecordResult:
    """Summary of one completed Bundle record."""

    bundle_id: int
    head_index: int
    n_segments: int
    n_regions: int
    n_insts: int
    truncated: bool


class RecordEngine(SimComponent):
    """Writes one Bundle's spatial-region stream into the Metadata Buffer."""

    def __init__(
        self,
        buffer: MetadataBuffer,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
        on_write: Optional[Callable[[Segment], None]] = None,
    ):
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self.buffer = buffer
        self.max_segments = max_segments
        #: Called with each segment as it is written back to memory.
        self.on_write = on_write
        self._bundle_id = -1
        self._reuse: List[Segment] = []  # old chain being superseded
        self._chain: List[Segment] = []  # segments written so far
        self._current: Optional[Segment] = None
        self._n_regions = 0
        self._insts = 0
        self._truncated = False
        self.active = False

    @property
    def head_index(self) -> int:
        """Head segment index of the record in progress (or -1)."""
        return self._chain[0].index if self._chain else -1

    def begin(self, bundle_id: int, old_head: int = -1) -> int:
        """Start recording ``bundle_id``; returns the head segment index.

        ``old_head`` >= 0 supersedes the existing record in place (the
        head index — and hence the MAT pointer — is preserved).
        """
        if self.active:
            raise RuntimeError("record already active; call end() first")
        self._bundle_id = bundle_id
        self._reuse = (
            self.buffer.chain(old_head, bundle_id) if old_head >= 0 else []
        )
        self._chain = []
        self._current = None
        self._n_regions = 0
        self._insts = 0
        self._truncated = False
        self.active = True
        # The MAT records the head address at Bundle start (§5.3.3), so
        # the head segment is acquired eagerly.
        self._open_segment(num_insts=0)
        return self.head_index

    def observe_instructions(self, count: int) -> None:
        """Account ``count`` committed instructions to the current Bundle."""
        self._insts += count

    def observe_region(self, region: SpatialRegion) -> None:
        """Append one evicted spatial region to the record."""
        if not self.active:
            raise RuntimeError("no record active")
        if self._truncated:
            return
        current = self._current
        assert current is not None
        if current.full:
            if len(self._chain) >= self.max_segments:
                self._truncated = True
                return
            self._close_segment(current)
            self._open_segment(num_insts=self._insts)
            current = self._current
        current.append(region)
        self._n_regions += 1

    def end(self) -> RecordResult:
        """Finish the record, truncating any leftover superseded tail."""
        if not self.active:
            raise RuntimeError("no record active")
        current = self._current
        assert current is not None
        self._close_segment(current)
        # A shorter superseding record leaves stale old segments beyond
        # the new tail; sever them so replay stops at the new end.
        current.next_seg = -1
        for stale in self._reuse[len(self._chain):]:
            stale.n_valid = 0
            stale.next_seg = -1
        result = RecordResult(
            bundle_id=self._bundle_id,
            head_index=self.head_index,
            n_segments=len(self._chain),
            n_regions=self._n_regions,
            n_insts=self._insts,
            truncated=self._truncated,
        )
        self.active = False
        self._current = None
        self._reuse = []
        return result

    def abort(self) -> None:
        """Drop the record in progress (e.g. context destroyed)."""
        self.active = False
        self._current = None
        self._chain = []
        self._reuse = []

    # ------------------------------------------------------------------
    # SimComponent protocol
    #
    # ``buffer`` and ``on_write`` are wiring and are preserved.  Chain
    # members are serialized as segment *indices*; load_state_dict
    # resolves them through ``self.buffer``, so the owning composite
    # (HierarchicalPrefetcher) must load the Metadata Buffer first.
    # Index resolution also restores the aliasing between ``_reuse`` and
    # ``_chain`` entries that in-place superseding creates.
    # ------------------------------------------------------------------
    _STATE_FIELDS = ("bundle_id", "reuse", "chain", "current", "n_regions",
                     "insts", "truncated", "active")

    def reset(self) -> None:
        self._bundle_id = -1
        self._reuse = []
        self._chain = []
        self._current = None
        self._n_regions = 0
        self._insts = 0
        self._truncated = False
        self.active = False

    def state_dict(self) -> Dict[str, object]:
        return {
            "bundle_id": self._bundle_id,
            "reuse": [seg.index for seg in self._reuse],
            "chain": [seg.index for seg in self._chain],
            "current": self._current.index if self._current is not None else -1,
            "n_regions": self._n_regions,
            "insts": self._insts,
            "truncated": self._truncated,
            "active": self.active,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, self._STATE_FIELDS)
        self._bundle_id = state["bundle_id"]
        self._reuse = [self.buffer.segment(i) for i in state["reuse"]]
        self._chain = [self.buffer.segment(i) for i in state["chain"]]
        current = state["current"]
        self._current = self.buffer.segment(current) if current >= 0 else None
        self._n_regions = state["n_regions"]
        self._insts = state["insts"]
        self._truncated = state["truncated"]
        self.active = state["active"]

    def stats_snapshot(self) -> Dict[str, float]:
        return {
            "active": 1.0 if self.active else 0.0,
            "chain_segments": float(len(self._chain)),
        }

    # ------------------------------------------------------------------
    def _open_segment(self, num_insts: int) -> None:
        position = len(self._chain)
        if position < len(self._reuse):
            seg = self._reuse[position]
            seg.reset(self._bundle_id, num_insts)
        else:
            protected = {s.index for s in self._chain}
            protected.update(s.index for s in self._reuse)
            seg = self.buffer.allocate(
                self._bundle_id, num_insts, protect=protected.__contains__
            )
        if self._chain:
            self._chain[-1].next_seg = seg.index
        self._chain.append(seg)
        self._current = seg

    def _close_segment(self, seg: Segment) -> None:
        if self.on_write is not None:
            self.on_write(seg)
