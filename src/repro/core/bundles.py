"""Bundle entry-point identification (Algorithm 1 of the paper).

A *Bundle* is a stable acyclic region of the call graph between major
divergence points.  The algorithm marks a function as a Bundle entry
point when:

* its reachable size meets the divergence threshold, **and**
* for at least one caller (*father*), the caller's reachable size exceeds
  this function's reachable size by more than the threshold (the caller
  sits at a divergence point whose other paths are also large), **or**
* it is a root of the call graph (no callers) meeting the size
  requirement.

The paper's default divergence threshold is 200 KB; our synthetic
binaries are smaller than TiDB-scale ones, so workloads pick a threshold
proportional to their code size (see :mod:`repro.workloads.suite`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set

from repro.callgraph import build_call_graph, reachable_sizes
from repro.callgraph.graph import CallGraph

#: Divergence threshold used in the paper (bytes).
DEFAULT_THRESHOLD = 200 * 1024


@dataclass
class BundleInfo:
    """Result of bundle identification over one binary."""

    threshold: int
    entries: Set[str]
    reachable: Dict[str, int]
    graph: CallGraph = field(repr=False)

    @property
    def n_functions(self) -> int:
        return len(self.graph)

    @property
    def n_bundles(self) -> int:
        return len(self.entries)

    @property
    def bundle_fraction(self) -> float:
        """Fraction of functions chosen as Bundle entry points (Table 4)."""
        if not self.graph:
            return 0.0
        return len(self.entries) / len(self.graph)


def get_bundle_entries(graph: CallGraph, threshold: int) -> Set[str]:
    """Algorithm 1: return the Bundle entry-point functions of ``graph``.

    Follows the paper's pseudo-code line by line: skip functions whose
    reachable size is below ``threshold``; mark a function when any
    father's reachable size exceeds it by more than ``threshold``; treat
    qualifying roots as entries.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    reachable = reachable_sizes(graph)
    entries: Set[str] = set()
    for func, size in reachable.items():
        if size < threshold:
            continue
        fathers = graph.callers(func)
        if not fathers:
            entries.add(func)
            continue
        if any(reachable[father] - size > threshold for father in fathers):
            entries.add(func)
    return entries


def identify_bundles(
    binary: Iterable, threshold: int = DEFAULT_THRESHOLD
) -> BundleInfo:
    """Run the full software pass on ``binary`` and return a report.

    ``binary`` is any iterable of function-like objects (see
    :func:`repro.callgraph.build_call_graph`).
    """
    graph = build_call_graph(binary)
    reachable = reachable_sizes(graph)
    entries = get_bundle_entries(graph, threshold)
    return BundleInfo(
        threshold=threshold, entries=entries, reachable=reachable, graph=graph
    )
