"""The Hierarchical Prefetcher (paper §5.3).

Commit-driven record-and-replay at Bundle granularity:

* every committed block feeds the Compression Buffer, whose evictions
  stream into the current Bundle's Metadata Buffer record;
* a tagged call/return commits -> the current record ends, the new
  Bundle ID (hash of the next instruction address) probes the Metadata
  Address Table, a hit starts replay of the footprint recorded by the
  Bundle's previous execution, and a new (superseding) record begins;
* replay is paced segment-by-segment via each segment's ``num_insts``
  (first two segments immediately), pushes spatial-region base pages
  through the I-TLB, charges metadata reads through the LLC, and feeds
  a small region FIFO that drains into the prefetch queue at a bounded
  rate per commit.

Prefetching is non-speculative (trigger at commit) and never reacts to
intra-Bundle control-flow divergence — blocks missing from the recorded
footprint are simply fetched on demand while the record for next time is
updated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.compression import CompressionBuffer
from repro.core.metadata import (
    MetadataAddressTable,
    MetadataBuffer,
    SEGMENT_BYTES,
)
from repro.core.record import RecordEngine
from repro.core.replay import ReplayEngine
from repro.cpu.component import check_state_fields
from repro.isa.instructions import BranchKind
from repro.isa.loader import bundle_id_of
from repro.prefetchers.base import InstructionPrefetcher

_TRIGGER_KINDS = (
    int(BranchKind.CALL), int(BranchKind.ICALL), int(BranchKind.RET)
)
_LINES_PER_SEGMENT = SEGMENT_BYTES // 64


@dataclass
class HPConfig:
    """Hierarchical Prefetcher configuration (paper defaults)."""

    compression_entries: int = 16
    #: Contiguous cache blocks per spatial region.  The paper uses 32;
    #: synthetic code is denser than real server code, so the default
    #: span of 4 keeps a segment (32 regions) around a quarter of the
    #: L1-I capacity — preserving the paper's sizing intent that each
    #: prefetch unit fits comfortably in the cache.
    region_blocks: int = 4
    mat_entries: int = 512
    mat_assoc: int = 8
    metadata_buffer_bytes: int = 512 * 1024
    max_segments: int = 64
    #: Prefetch destination: "l1" (default) or "l2" (§7.8).
    target_level: str = "l1"
    #: Max prefetch requests drained from the region FIFO per commit.
    issue_per_commit: int = 8
    #: Segments prefetched immediately at Bundle start (paper: the first
    #: and second).
    initial_segments: int = 2
    #: Pace replay by per-segment num_insts (False = issue the whole
    #: footprint at Bundle start; pacing ablation).
    paced: bool = True
    #: Supersede the old record (paper) vs. keep the first recording
    #: forever (record-policy ablation).
    supersede: bool = True
    #: Collect per-Bundle footprint/Jaccard/exec-cycle statistics
    #: (Table 4); costs some simulation speed.
    track_bundles: bool = False


class HierarchicalPrefetcher(InstructionPrefetcher):
    """Commit-driven Bundle record-and-replay prefetcher."""

    name = "hierarchical"

    def __init__(self, config: Optional[HPConfig] = None):
        super().__init__()
        self.config = config or HPConfig()
        if self.config.target_level not in ("l1", "l2"):
            raise ValueError(
                "target_level must be 'l1' or 'l2', got "
                f"{self.config.target_level!r}"
            )
        self.mat: Optional[MetadataAddressTable] = None
        self.buffer: Optional[MetadataBuffer] = None
        self.record: Optional[RecordEngine] = None
        self.replay: Optional[ReplayEngine] = None
        self.compression: Optional[CompressionBuffer] = None
        #: Multi-core shared-metadata mode (§5.3): when set, these
        #: replace the private MAT / Metadata Buffer, and only cores
        #: with ``record_enabled`` generate history.
        self.shared_mat: Optional[MetadataAddressTable] = None
        self.shared_buffer: Optional[MetadataBuffer] = None
        self.record_enabled: bool = True

    # ------------------------------------------------------------------
    def reset(self) -> None:
        cfg = self.config
        if self.shared_mat is not None and self.shared_buffer is not None:
            self.mat = self.shared_mat
            self.buffer = self.shared_buffer
        else:
            self.mat = MetadataAddressTable(cfg.mat_entries, cfg.mat_assoc)
            self.buffer = MetadataBuffer(
                cfg.metadata_buffer_bytes, on_invalidate=self.mat.invalidate
            )
        self.record = RecordEngine(
            self.buffer, cfg.max_segments, on_write=self._write_segment
        )
        self.replay = ReplayEngine(self.buffer, cfg.initial_segments)
        self.compression = CompressionBuffer(
            cfg.compression_entries, sink=self._region_evicted,
            span=cfg.region_blocks,
        )
        self._to_l2 = cfg.target_level == "l2"
        self._paced = cfg.paced
        self._track = cfg.track_bundles
        self._issue_per = cfg.issue_per_commit
        # Commit-hot trace arrays (incl. the precomputed decode tables);
        # wiring, not state — attach() binds the trace before reset().
        tr = self.trace
        if tr is not None:
            self._nin_a = tr.ninstr
            self._kind_a = tr.kind
            self._tgt_a = tr.target
            self._tag_a = tr.tagged
            self._b0_a = tr.block0
            self._b1_a = tr.block1
        else:
            self._nin_a = self._kind_a = self._tgt_a = None
            self._tag_a = self._b0_a = self._b1_a = None
        self._bundle_insts = 0
        self._fifo: list = []          # (block, extra_latency) pending issue
        self._fifo_pos = 0
        self._now = 0.0
        self._commit_i = 0
        self._last_block = -1
        # Statistics
        self._bundles_triggered = 0
        self._replays_started = 0
        self._mat_hits = 0
        self._bundle_start_cycle = -1.0
        self._exec_cycles_sum = 0.0
        self._exec_cycles_n = 0
        self._footprint_sum = 0
        self._footprint_n = 0
        self._jaccard_sum = 0.0
        self._jaccard_n = 0
        self._last_footprints: Dict[int, Set[int]] = {}
        self._current_footprint: Optional[Set[int]] = None
        self._current_bundle_id = -1

    # ------------------------------------------------------------------
    # Simulator hooks
    # ------------------------------------------------------------------
    def on_commit(self, i: int, now: float) -> None:
        # lint: hot-begin
        nin = self._nin_a[i]
        self._now = now
        self._commit_i = i
        # Record path: feed the Compression Buffer with this block's
        # cache lines.
        b0 = self._b0_a[i]
        b1 = self._b1_a[i]
        compression = self.compression
        if b0 != self._last_block:
            compression.observe(b0)
        if b1 != b0:
            compression.observe(b1)
        self._last_block = b1
        self._bundle_insts += nin
        record = self.record
        if record.active:
            record.observe_instructions(nin)
        fp = self._current_footprint
        if self._track and fp is not None:
            fp.add(b0)
            if b1 != b0:
                fp.add(b1)
        # Replay path: release newly eligible segments, drain the FIFO.
        replay = self.replay
        if replay.active:
            pace = self._bundle_insts if self._paced else 1 << 60
            for view in replay.take_eligible(pace):
                self._stage_segment(view, now)
        if self._fifo_pos < len(self._fifo):
            self._drain_fifo(now, i)
        # Trigger path: tagged call/return commits end/start Bundles.
        if self._tag_a[i] and self._kind_a[i] in _TRIGGER_KINDS:
            self._on_tagged(self._tgt_a[i], now)
        # lint: hot-end

    # ------------------------------------------------------------------
    # Bundle lifecycle
    # ------------------------------------------------------------------
    def _on_tagged(self, next_addr: int, now: float) -> None:
        cfg = self.config
        bundle_id = bundle_id_of(next_addr)
        self._bundles_triggered += 1
        # Close the current record.
        if self.record.active:
            self.compression.flush()
            result = self.record.end()
            if cfg.track_bundles:
                self._finish_bundle_stats(result, now)
        # Start the new Bundle.
        self.replay.stop()
        self._fifo = []
        self._fifo_pos = 0
        self._bundle_insts = 0
        self._current_bundle_id = bundle_id
        head = self.mat.lookup(bundle_id)
        if head is not None:
            self._mat_hits += 1
            if self.replay.start(bundle_id, head):
                self._replays_started += 1
            if cfg.supersede and self.record_enabled:
                self.record.begin(bundle_id, old_head=head)
            # else: record-policy ablation / replay-only core — the
            # existing recording is kept; compression evictions are
            # dropped.
        elif self.record_enabled:
            new_head = self.record.begin(bundle_id, old_head=-1)
            # A MAT eviction only loses the pointer; the victim's
            # segments stay in the buffer until circular reclaim.
            self.mat.insert(bundle_id, new_head)
        if cfg.track_bundles:
            if self._bundle_start_cycle >= 0:
                self._exec_cycles_sum += now - self._bundle_start_cycle
                self._exec_cycles_n += 1
            self._bundle_start_cycle = now
            self._current_footprint = set()

    def _finish_bundle_stats(self, result, now: float) -> None:
        footprint = self._current_footprint
        if footprint is None:
            return
        self._footprint_sum += len(footprint)
        self._footprint_n += 1
        previous = self._last_footprints.get(result.bundle_id)
        if previous is not None and (previous or footprint):
            inter = len(previous & footprint)
            union = len(previous | footprint)
            if union:
                self._jaccard_sum += inter / union
                self._jaccard_n += 1
        self._last_footprints[result.bundle_id] = footprint
        self._current_footprint = None

    # ------------------------------------------------------------------
    # Replay plumbing
    # ------------------------------------------------------------------
    def _stage_segment(self, view, now: float) -> None:
        """Read one segment's metadata and queue its blocks for issue.

        Prefetch requests cannot be generated before the segment's
        metadata arrives from the LLC/DRAM, so each block is staged with
        an earliest-issue cycle; the metadata wait does not occupy
        MSHRs.
        """
        read_latency = self.hierarchy.metadata_read(
            view.index * _LINES_PER_SEGMENT, _LINES_PER_SEGMENT, now
        )
        fifo = self._fifo
        # §5.3.5: region base addresses are dispatched to the TLB.  With
        # the I-TLB prefetch path on, the dispatch is a non-stalling
        # prefetch probe (installed translations don't count as demand
        # misses); otherwise the historical demand translate.
        xlate = self._itlb_pf
        if xlate is None:
            xlate = self.sim.itlb.translate
        for region in view.regions:
            walk = xlate((region.base << 6) >> 12)
            ready = now + read_latency + walk
            for block in region.blocks():
                fifo.append((block, ready))

    def _drain_fifo(self, now: float, i: int) -> None:
        fifo = self._fifo
        pos = self._fifo_pos
        end = min(len(fifo), pos + self._issue_per)
        issue = self.issue
        to_l2 = self._to_l2
        while pos < end:
            block, ready = fifo[pos]
            if ready > now:
                break  # metadata for this segment not back yet
            issue(block, now, i, to_l2=to_l2)
            pos += 1
        self._fifo_pos = pos
        if pos >= len(fifo):
            self._fifo = []
            self._fifo_pos = 0

    # ------------------------------------------------------------------
    # Metadata write traffic
    # ------------------------------------------------------------------
    def _write_segment(self, seg) -> None:
        self.hierarchy.metadata_write(
            seg.index * _LINES_PER_SEGMENT, _LINES_PER_SEGMENT, self._now
        )

    def _region_evicted(self, region) -> None:
        if self.record.active:
            self.record.observe_region(region)

    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # SimComponent protocol
    #
    # The default deepcopy snapshot cannot be used here: the record
    # engine's ``on_write`` / compression buffer's ``sink`` callbacks
    # bind this prefetcher (which holds sim/trace/hierarchy wiring), and
    # record-chain members must survive as references into the Metadata
    # Buffer.  A structured snapshot serializes each sub-component and
    # reloads into the already-wired objects; the record engine loads
    # after the buffer so segment indices resolve.
    # ------------------------------------------------------------------
    _STATE_SCALARS = (
        "_bundle_insts", "_fifo_pos", "_now", "_commit_i", "_last_block",
        "_bundles_triggered", "_replays_started", "_mat_hits",
        "_bundle_start_cycle", "_exec_cycles_sum", "_exec_cycles_n",
        "_footprint_sum", "_footprint_n", "_jaccard_sum", "_jaccard_n",
        "_current_bundle_id",
    )

    def state_dict(self) -> Dict[str, object]:
        if self.record is None:
            self.reset()
        if self.shared_mat is not None or self.shared_buffer is not None:
            raise ValueError(
                "HierarchicalPrefetcher snapshots are single-core only: "
                "shared-metadata mode holds cross-core references"
            )
        state: Dict[str, object] = {
            "mat": self.mat.state_dict(),
            "buffer": self.buffer.state_dict(),
            "record": self.record.state_dict(),
            "replay": self.replay.state_dict(),
            "compression": self.compression.state_dict(),
            "fifo": list(self._fifo),
            "last_footprints": {
                bid: sorted(blocks)
                for bid, blocks in self._last_footprints.items()
            },
            "current_footprint": (
                sorted(self._current_footprint)
                if self._current_footprint is not None
                else None
            ),
        }
        for field in self._STATE_SCALARS:
            state[field.lstrip("_")] = getattr(self, field)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        if self.record is None:
            self.reset()
        if self.shared_mat is not None or self.shared_buffer is not None:
            raise ValueError(
                "HierarchicalPrefetcher snapshots are single-core only"
            )
        expected = (
            "mat", "buffer", "record", "replay", "compression", "fifo",
            "last_footprints", "current_footprint",
        ) + tuple(f.lstrip("_") for f in self._STATE_SCALARS)
        check_state_fields(self, state, expected)
        self.mat.load_state_dict(state["mat"])
        self.buffer.load_state_dict(state["buffer"])
        # Record resolves chain indices through the (reloaded) buffer.
        self.record.load_state_dict(state["record"])
        self.replay.load_state_dict(state["replay"])
        self.compression.load_state_dict(state["compression"])
        self._fifo = [tuple(entry) for entry in state["fifo"]]
        self._last_footprints = {
            bid: set(blocks)
            for bid, blocks in state["last_footprints"].items()
        }
        current = state["current_footprint"]
        self._current_footprint = set(current) if current is not None else None
        for field in self._STATE_SCALARS:
            setattr(self, field, state[field.lstrip("_")])

    def stats_snapshot(self) -> Dict[str, float]:
        out = {
            "bundles_triggered": float(self._bundles_triggered),
            "mat_hit_rate": (
                self._mat_hits / self._bundles_triggered
                if self._bundles_triggered else 0.0
            ),
            "fifo_pending": float(len(self._fifo) - self._fifo_pos),
        }
        for name, unit in (("mat", self.mat), ("replay", self.replay),
                           ("compression", self.compression)):
            if unit is not None:
                for key, value in unit.stats_snapshot().items():
                    out[f"{name}.{key}"] = value
        return out

    # ------------------------------------------------------------------
    def on_measurement_start(self) -> None:
        self._bundles_triggered = 0
        self._replays_started = 0
        self._mat_hits = 0
        self._exec_cycles_sum = 0.0
        self._exec_cycles_n = 0
        self._footprint_sum = 0
        self._footprint_n = 0
        self._jaccard_sum = 0.0
        self._jaccard_n = 0

    def on_measurement_end(self) -> None:
        extra = self.stats.extra
        extra["hp_bundles_triggered"] = self._bundles_triggered
        extra["hp_replays_started"] = self._replays_started
        extra["hp_mat_hits"] = self._mat_hits
        extra["hp_mat_hit_rate"] = (
            self._mat_hits / self._bundles_triggered
            if self._bundles_triggered
            else 0.0
        )
        if self._exec_cycles_n:
            extra["hp_avg_exec_cycles"] = (
                self._exec_cycles_sum / self._exec_cycles_n
            )
        if self._footprint_n:
            extra["hp_avg_footprint_kb"] = (
                self._footprint_sum / self._footprint_n * 64 / 1024
            )
        if self._jaccard_n:
            extra["hp_avg_jaccard"] = self._jaccard_sum / self._jaccard_n
