"""Metadata Buffer and Metadata Address Table (paper §5.3.2–§5.3.3).

The Metadata Buffer is a region of *main memory* holding every Bundle's
compressed footprint as an implicit circular list of fixed-size
segments; only the small Metadata Address Table (MAT) — Bundle ID ->
head-segment pointer — lives on chip.  With the paper's default 512
entries × 8 ways the MAT costs 1.94 KB, which
:meth:`MetadataAddressTable.storage_bits` reproduces exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from repro.core.compression import SpatialRegion
from repro.cpu.component import SimComponent, check_state_fields

#: Spatial regions per segment (paper value).
SEGMENT_REGIONS = 32

#: Bytes of one serialized spatial region: 6-byte base + 4-byte vector,
#: padded to 12 for alignment.
REGION_BYTES = 12

#: Serialized segment size: 32 regions plus a small header (next-seg
#: pointer, num-insts, Bundle ID).  32 * 12 = 384 data bytes; the paper
#: quotes 0.36 KB (368 B) per segment — we round to 384 and keep the
#: header out of band.
SEGMENT_BYTES = SEGMENT_REGIONS * REGION_BYTES

#: Default in-memory Metadata Buffer capacity (paper value).
DEFAULT_BUFFER_BYTES = 512 * 1024


class Segment:
    """One Metadata Buffer segment (Figure 7, item ③).

    Attributes mirror the paper's per-segment metadata: ``next_seg`` (the
    implicit linked list), ``num_insts`` (instructions executed from the
    Bundle start when the segment was created — the replay pacing
    counter), and ``bundle_id`` (owner, used for MAT invalidation when
    the circular buffer reclaims the segment).
    """

    __slots__ = ("index", "bundle_id", "regions", "num_insts", "next_seg",
                 "n_valid")

    def __init__(self, index: int, bundle_id: int, num_insts: int):
        self.index = index
        self.bundle_id = bundle_id
        self.regions: List[SpatialRegion] = []
        self.num_insts = num_insts
        self.next_seg = -1
        #: Number of regions valid in this segment; a superseding record
        #: shorter than the old one truncates by lowering this.
        self.n_valid = 0

    def reset(self, bundle_id: int, num_insts: int) -> None:
        """Reuse this slot for a new (or superseding) record."""
        self.bundle_id = bundle_id
        self.num_insts = num_insts
        self.regions.clear()
        self.next_seg = -1
        self.n_valid = 0

    def append(self, region: SpatialRegion) -> None:
        if len(self.regions) >= SEGMENT_REGIONS:
            raise RuntimeError(f"segment {self.index} is full")
        self.regions.append(region)
        self.n_valid = len(self.regions)

    @property
    def full(self) -> bool:
        return len(self.regions) >= SEGMENT_REGIONS

    def valid_regions(self) -> List[SpatialRegion]:
        return self.regions[: self.n_valid]

    def __repr__(self) -> str:
        return (
            f"Segment(index={self.index}, bundle={self.bundle_id:#x}, "
            f"regions={self.n_valid}, num_insts={self.num_insts}, "
            f"next={self.next_seg})"
        )


class MetadataBuffer(SimComponent):
    """Circular in-memory store of Bundle footprint segments.

    Allocation advances a rotating pointer; when the buffer wraps, the
    oldest segments are reclaimed and their owning Bundles invalidated in
    the MAT via ``on_invalidate`` (the paper invalidates through the
    Bundle ID recorded in the first segment; we store the owner on every
    segment so a mid-chain reclaim also invalidates, which avoids
    replaying a corrupted chain).
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_BUFFER_BYTES,
        on_invalidate: Optional[Callable[[int], None]] = None,
    ):
        if capacity_bytes < SEGMENT_BYTES:
            raise ValueError(
                f"capacity {capacity_bytes} smaller than one segment "
                f"({SEGMENT_BYTES})"
            )
        self.capacity_bytes = capacity_bytes
        self.n_segments = capacity_bytes // SEGMENT_BYTES
        self.on_invalidate = on_invalidate
        self._segments: List[Optional[Segment]] = [None] * self.n_segments
        self._next_alloc = 0
        self.allocations = 0
        self.reclaims = 0

    def segment(self, index: int) -> Segment:
        seg = self._segments[index]
        if seg is None:
            raise KeyError(f"segment {index} not allocated")
        return seg

    def allocate(
        self, bundle_id: int, num_insts: int, protect: Callable[[int], bool]
    ) -> Segment:
        """Allocate the next segment in circular order.

        ``protect`` returns True for segment indices that must not be
        reclaimed (the chain currently being written); those slots are
        skipped.  Reclaiming an owned slot fires ``on_invalidate`` with
        the previous owner's Bundle ID.
        """
        for _ in range(self.n_segments):
            index = self._next_alloc
            self._next_alloc = (self._next_alloc + 1) % self.n_segments
            if protect(index):
                continue
            old = self._segments[index]
            if old is not None:
                self.reclaims += 1
                if self.on_invalidate is not None:
                    self.on_invalidate(old.bundle_id)
                old.reset(bundle_id, num_insts)
                seg = old
                seg.index = index
            else:
                seg = Segment(index, bundle_id, num_insts)
                self._segments[index] = seg
            self.allocations += 1
            return seg
        raise RuntimeError("metadata buffer exhausted: every segment protected")

    def invalidate_chain(self, head_index: int) -> None:
        """Drop a chain starting at ``head_index`` (owner bookkeeping only).

        Segments stay physically allocated (circular reclaim will reuse
        them); this only severs the list so stale links are never
        followed.
        """
        index = head_index
        seen = set()
        while 0 <= index < self.n_segments and index not in seen:
            seen.add(index)
            seg = self._segments[index]
            if seg is None:
                break
            nxt = seg.next_seg
            seg.next_seg = -1
            seg.n_valid = 0
            index = nxt

    def chain(self, head_index: int, bundle_id: int) -> List[Segment]:
        """Return the segment chain for ``bundle_id`` starting at
        ``head_index``; stops at ownership mismatches (stale pointers)."""
        out: List[Segment] = []
        index = head_index
        seen = set()
        while 0 <= index < self.n_segments and index not in seen:
            seen.add(index)
            seg = self._segments[index]
            if seg is None or seg.bundle_id != bundle_id:
                break
            out.append(seg)
            index = seg.next_seg
        return out

    # ------------------------------------------------------------------
    # SimComponent protocol (``on_invalidate`` is wiring, preserved)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._segments = [None] * self.n_segments
        self._next_alloc = 0
        self.allocations = 0
        self.reclaims = 0

    def state_dict(self) -> Dict[str, object]:
        # A segment's ``regions`` list may be longer than ``n_valid``
        # (superseding records truncate by lowering n_valid), so both
        # are captured.
        segs = []
        for seg in self._segments:
            if seg is None:
                segs.append(None)
            else:
                segs.append({
                    "bundle_id": seg.bundle_id,
                    "regions": [(r.base, r.vector) for r in seg.regions],
                    "num_insts": seg.num_insts,
                    "next_seg": seg.next_seg,
                    "n_valid": seg.n_valid,
                })
        return {
            "segments": segs,
            "next_alloc": self._next_alloc,
            "allocations": self.allocations,
            "reclaims": self.reclaims,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(
            self, state, ("segments", "next_alloc", "allocations", "reclaims")
        )
        segs = state["segments"]
        if len(segs) != self.n_segments:
            raise ValueError(
                f"snapshot has {len(segs)} segments, buffer has "
                f"{self.n_segments}"
            )
        rebuilt: List[Optional[Segment]] = []
        for index, saved in enumerate(segs):
            if saved is None:
                rebuilt.append(None)
                continue
            seg = Segment(index, saved["bundle_id"], saved["num_insts"])
            seg.regions = [
                SpatialRegion(base, vector)
                for base, vector in saved["regions"]
            ]
            seg.next_seg = saved["next_seg"]
            seg.n_valid = saved["n_valid"]
            rebuilt.append(seg)
        self._segments = rebuilt
        self._next_alloc = state["next_alloc"]
        self.allocations = state["allocations"]
        self.reclaims = state["reclaims"]

    def stats_snapshot(self) -> Dict[str, float]:
        used = sum(1 for s in self._segments if s is not None)
        return {
            "used": float(used),
            "reclaims": float(self.reclaims),
        }

    def __repr__(self) -> str:
        used = sum(1 for s in self._segments if s is not None)
        return (
            f"MetadataBuffer(segments={self.n_segments}, used={used}, "
            f"reclaims={self.reclaims})"
        )


class MetadataAddressTable(SimComponent):
    """On-chip set-associative Bundle ID -> head-segment pointer table.

    Default geometry matches the paper: 512 entries, 8-way, LRU, 24-bit
    Bundle IDs, 11-bit segment pointers — 1.94 KB of on-chip storage.
    """

    def __init__(self, n_entries: int = 512, assoc: int = 8,
                 bundle_id_bits: int = 24, pointer_bits: int = 11):
        if n_entries % assoc != 0:
            raise ValueError(
                f"n_entries {n_entries} not divisible by assoc {assoc}"
            )
        self.n_entries = n_entries
        self.assoc = assoc
        self.n_sets = n_entries // assoc
        self.bundle_id_bits = bundle_id_bits
        self.pointer_bits = pointer_bits
        # One OrderedDict per set: bundle_id -> head segment index,
        # ordered least- to most-recently used.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def _set_of(self, bundle_id: int) -> OrderedDict:
        return self._sets[bundle_id % self.n_sets]

    def lookup(self, bundle_id: int) -> Optional[int]:
        """Return the head-segment pointer, updating LRU; None on miss."""
        entries = self._set_of(bundle_id)
        head = entries.get(bundle_id)
        if head is None:
            self.misses += 1
            return None
        entries.move_to_end(bundle_id)
        self.hits += 1
        return head

    def insert(self, bundle_id: int, head_index: int) -> Optional[int]:
        """Map ``bundle_id`` to ``head_index``; return any evicted ID."""
        entries = self._set_of(bundle_id)
        evicted = None
        if bundle_id not in entries and len(entries) >= self.assoc:
            evicted, _ = entries.popitem(last=False)
            self.evictions += 1
        entries[bundle_id] = head_index
        entries.move_to_end(bundle_id)
        return evicted

    def invalidate(self, bundle_id: int) -> bool:
        """Remove ``bundle_id`` if present (Metadata Buffer reclaim)."""
        entries = self._set_of(bundle_id)
        if bundle_id in entries:
            del entries[bundle_id]
            self.invalidations += 1
            return True
        return False

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def storage_bits(self) -> int:
        """On-chip storage cost in bits.

        Per entry: tag (bundle_id_bits - log2(n_sets)), pointer, valid
        bit; plus one LRU bit per way per set.  With the default
        geometry this is 15872 bits = 1.94 KB, matching §5.3.3.
        """
        set_bits = (self.n_sets - 1).bit_length() if self.n_sets > 1 else 0
        tag_bits = self.bundle_id_bits - set_bits
        per_entry = tag_bits + self.pointer_bits + 1
        lru_bits = self.n_sets * self.assoc
        return self.n_entries * per_entry + lru_bits

    # ------------------------------------------------------------------
    # SimComponent protocol
    # ------------------------------------------------------------------
    _STATE_FIELDS = ("sets", "hits", "misses", "evictions", "invalidations")

    def reset(self) -> None:
        for entries in self._sets:
            entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def state_dict(self) -> Dict[str, object]:
        return {
            "sets": [list(entries.items()) for entries in self._sets],
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, self._STATE_FIELDS)
        sets = state["sets"]
        if len(sets) != self.n_sets:
            raise ValueError(
                f"snapshot has {len(sets)} sets, MAT has {self.n_sets}"
            )
        for entries, saved in zip(self._sets, sets):
            entries.clear()
            entries.update(saved)
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]
        self.invalidations = state["invalidations"]

    def stats_snapshot(self) -> Dict[str, float]:
        lookups = self.hits + self.misses
        return {
            "occupied": float(len(self)),
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"MetadataAddressTable(entries={self.n_entries}, "
            f"assoc={self.assoc}, occupied={len(self)})"
        )
