"""Replay engine (paper §5.3.5).

Replay begins when a tagged instruction commits and its Bundle ID hits
in the Metadata Address Table.  Segments are prefetched one at a time so
each group of prefetches fits in the L1-I: the first and second segments
are issued immediately at Bundle start; segment N+1 is issued once the
number of instructions executed inside the Bundle surpasses the
``num_insts`` recorded for segment N.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.compression import SpatialRegion
from repro.core.metadata import MetadataBuffer
from repro.cpu.component import SimComponent, check_state_fields


class SegmentView:
    """Immutable snapshot of one segment taken at replay start.

    Replay snapshots the chain because the concurrent record engine
    supersedes the same segments in place; in hardware the replay stream
    races ahead of the (compression-buffer-delayed) writes, which the
    snapshot models.  A slotted plain class: replay starts allocate one
    per live segment on the simulator's hot path.
    """

    __slots__ = ("index", "regions", "num_insts")

    def __init__(self, index: int, regions: List[SpatialRegion],
                 num_insts: int):
        self.index = index
        self.regions = regions
        self.num_insts = num_insts

    def __repr__(self) -> str:
        return (f"SegmentView(index={self.index}, "
                f"regions={len(self.regions)}, num_insts={self.num_insts})")


class ReplayEngine(SimComponent):
    """Paced cursor over one Bundle's segment chain."""

    def __init__(self, buffer: MetadataBuffer, initial_segments: int = 2):
        if initial_segments < 1:
            raise ValueError("initial_segments must be >= 1")
        self.buffer = buffer
        self.initial_segments = initial_segments
        self._segments: List[SegmentView] = []
        self._cursor = 0
        self._bundle_id = -1
        self.active = False

    def start(self, bundle_id: int, head_index: int) -> bool:
        """Begin replaying ``bundle_id`` from ``head_index``.

        Returns False (and stays inactive) when the chain is empty or
        stale — e.g. the Metadata Buffer reclaimed it between the MAT
        lookup and here.
        """
        chain = self.buffer.chain(head_index, bundle_id)
        views = [
            SegmentView(seg.index, list(seg.valid_regions()), seg.num_insts)
            for seg in chain
            if seg.n_valid > 0
        ]
        if not views:
            self.active = False
            self._segments = []
            return False
        self._segments = views
        self._cursor = 0
        self._bundle_id = bundle_id
        self.active = True
        return True

    def stop(self) -> None:
        """Cancel replay (a new Bundle started)."""
        self.active = False
        self._segments = []
        self._cursor = 0

    def take_eligible(self, bundle_insts: int) -> List[SegmentView]:
        """Return segments whose prefetch should be issued now.

        ``bundle_insts`` is the instruction count committed since the
        Bundle began.  Segments 0 and 1 are eligible immediately;
        segment N+1 becomes eligible when ``bundle_insts`` surpasses
        segment N's ``num_insts``.  Each segment is returned exactly
        once; replay deactivates after the last one.
        """
        if not self.active:
            return []
        out: List[SegmentView] = []
        while self._cursor < len(self._segments):
            if self._cursor < self.initial_segments:
                eligible = True
            else:
                pace = self._segments[self._cursor - 1].num_insts
                eligible = bundle_insts > pace
            if not eligible:
                break
            out.append(self._segments[self._cursor])
            self._cursor += 1
        if self._cursor >= len(self._segments):
            self.active = False
        return out

    @property
    def remaining_segments(self) -> int:
        return max(0, len(self._segments) - self._cursor)

    # ------------------------------------------------------------------
    # SimComponent protocol (``buffer`` is wiring; SegmentViews are
    # already snapshots, so they serialize by value)
    # ------------------------------------------------------------------
    _STATE_FIELDS = ("segments", "cursor", "bundle_id", "active")

    def reset(self) -> None:
        self.stop()
        self._bundle_id = -1

    def state_dict(self) -> Dict[str, object]:
        return {
            "segments": [
                (v.index, [(r.base, r.vector) for r in v.regions], v.num_insts)
                for v in self._segments
            ],
            "cursor": self._cursor,
            "bundle_id": self._bundle_id,
            "active": self.active,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, self._STATE_FIELDS)
        self._segments = [
            SegmentView(
                index,
                [SpatialRegion(base, vector) for base, vector in regions],
                num_insts,
            )
            for index, regions, num_insts in state["segments"]
        ]
        self._cursor = state["cursor"]
        self._bundle_id = state["bundle_id"]
        self.active = state["active"]

    def stats_snapshot(self) -> Dict[str, float]:
        return {
            "active": 1.0 if self.active else 0.0,
            "remaining": float(self.remaining_segments),
        }
