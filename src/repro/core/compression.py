"""Compression Buffer (paper §5.3.1).

A fully associative FIFO of *spatial regions*.  Each region encodes up
to 32 contiguous cache blocks as a base block plus a bit vector.  When a
committed instruction's block falls inside an existing region, the
corresponding bit is set; otherwise a new region anchored at that block
is pushed and the oldest region is evicted to the Metadata Buffer.
Creation order is preserved, so replay approximately mirrors the retire
order — the spatio-temporal encoding shared with PIF/MANA/Jukebox.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.cpu.component import SimComponent, check_state_fields

#: Cache blocks covered by one spatial region (paper value).
REGION_BLOCKS = 32


class SpatialRegion:
    """Base block + bit vector over ``REGION_BLOCKS`` contiguous blocks."""

    __slots__ = ("base", "vector")

    def __init__(self, base: int, vector: int = 0):
        self.base = base
        self.vector = vector

    def covers(self, block: int) -> bool:
        """Is ``block`` within this region's address range?"""
        return 0 <= block - self.base < REGION_BLOCKS

    def record(self, block: int) -> None:
        """Set the bit for ``block``; the block must be covered."""
        offset = block - self.base
        if not 0 <= offset < REGION_BLOCKS:
            raise ValueError(
                f"block {block} outside region [{self.base}, "
                f"{self.base + REGION_BLOCKS})"
            )
        self.vector |= 1 << offset

    def blocks(self) -> Iterator[int]:
        """Yield recorded block indices from lower to higher addresses.

        This is the order the replay engine generates prefetch requests
        in (§5.3.5: "from lower to higher addresses, guided by the bit
        vector").
        """
        vector = self.vector
        base = self.base
        while vector:
            low = vector & -vector
            yield base + low.bit_length() - 1
            vector ^= low

    def popcount(self) -> int:
        """Number of recorded blocks."""
        return bin(self.vector).count("1")

    def copy(self) -> "SpatialRegion":
        return SpatialRegion(self.base, self.vector)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SpatialRegion)
            and self.base == other.base
            and self.vector == other.vector
        )

    def __hash__(self) -> int:
        return hash((self.base, self.vector))

    def __repr__(self) -> str:
        return f"SpatialRegion(base={self.base:#x}, vector={self.vector:#010x})"


class CompressionBuffer(SimComponent):
    """16-entry fully associative FIFO of in-flight spatial regions.

    ``sink`` receives each evicted (completed) region; the Hierarchical
    Prefetcher wires it to the record engine, which appends the region to
    the current Bundle's Metadata Buffer segments.
    """

    def __init__(
        self,
        capacity: int = 16,
        sink: Optional[Callable[[SpatialRegion], None]] = None,
        span: int = REGION_BLOCKS,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 1 <= span <= REGION_BLOCKS:
            raise ValueError(
                f"span must be in [1, {REGION_BLOCKS}], got {span}"
            )
        self.capacity = capacity
        self.sink = sink
        self.span = span
        self._entries: List[SpatialRegion] = []  # oldest first
        self._last_hit: Optional[SpatialRegion] = None

    def __len__(self) -> int:
        return len(self._entries)

    def observe(self, block: int) -> None:
        """Record one committed instruction's cache block."""
        # Fast path: consecutive instructions usually land in the region
        # touched last.
        span = self.span
        last = self._last_hit
        if last is not None and 0 <= block - last.base < span:
            last.vector |= 1 << (block - last.base)
            return
        for region in reversed(self._entries):
            if 0 <= block - region.base < span:
                region.vector |= 1 << (block - region.base)
                self._last_hit = region
                return
        region = SpatialRegion(block, 1)
        self._entries.append(region)
        self._last_hit = region
        if len(self._entries) > self.capacity:
            evicted = self._entries.pop(0)
            if self.sink is not None:
                self.sink(evicted)

    def flush(self) -> None:
        """Drain every entry to the sink (end of a Bundle's record)."""
        entries, self._entries = self._entries, []
        self._last_hit = None
        if self.sink is not None:
            for region in entries:
                self.sink(region)

    def clear(self) -> None:
        """Discard all entries without draining (record aborted)."""
        self._entries.clear()
        self._last_hit = None

    def snapshot(self) -> List[SpatialRegion]:
        """Copy of the current entries, oldest first (for tests)."""
        return [r.copy() for r in self._entries]

    # ------------------------------------------------------------------
    # SimComponent protocol (``sink`` is wiring and is preserved)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.clear()

    def state_dict(self) -> Dict[str, object]:
        last = self._last_hit
        return {
            "entries": [(r.base, r.vector) for r in self._entries],
            # _last_hit always aliases a live entry (or is None), so an
            # index keeps the snapshot self-contained.
            "last_hit": self._entries.index(last) if last is not None else -1,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        check_state_fields(self, state, ("entries", "last_hit"))
        self._entries = [
            SpatialRegion(base, vector) for base, vector in state["entries"]
        ]
        idx = state["last_hit"]
        self._last_hit = self._entries[idx] if idx >= 0 else None

    def stats_snapshot(self) -> Dict[str, float]:
        return {"occupancy": len(self._entries) / self.capacity}
