"""Unit tests for the Trace container API (no simulation involved)."""

from repro.isa.instructions import BranchKind
from tests.helpers import TraceAssembler, linear_trace


class TestTraceAccessors:
    def test_blocks_of_single(self):
        trace = linear_trace(1, start=0x400000, ninstr=4)
        b0, b1 = trace.blocks_of(0)
        assert b0 == b1 == 0x400000 >> 6

    def test_blocks_of_spanning(self):
        asm = TraceAssembler()
        asm.add(0x400030, ninstr=8)  # 32 bytes ending in the next block
        trace = asm.build()
        b0, b1 = trace.blocks_of(0)
        assert b1 == b0 + 1

    def test_terminator_addr(self):
        trace = linear_trace(1, start=0x400000, ninstr=4)
        assert trace.terminator_addr(0) == 0x400000 + 3 * 4

    def test_len_and_instruction_count(self):
        trace = linear_trace(10, ninstr=6)
        assert len(trace) == 10
        assert trace.n_instructions == 60

    def test_footprint_subrange(self):
        trace = linear_trace(32, start=0, ninstr=16)  # one block each
        assert len(trace.footprint(0, 32)) == 32
        assert len(trace.footprint(0, 5)) == 5
        assert trace.footprint(3, 3) == set()

    def test_request_of_defaults(self):
        trace = linear_trace(4)
        assert trace.request_of(0) == 0  # builder seeds one request

    def test_repr(self):
        trace = linear_trace(4)
        text = repr(trace)
        assert "blocks=4" in text


class TestAssemblerConsistency:
    def test_fallthrough_targets(self):
        trace = linear_trace(8, ninstr=4)
        for i in range(7):
            assert trace.target[i] == trace.pc[i + 1]

    def test_loop_shape(self):
        from tests.helpers import looping_trace

        trace = looping_trace(n_blocks=4, repeats=3)
        assert len(trace) == 12
        jumps = [i for i in range(len(trace))
                 if trace.kind[i] == int(BranchKind.JUMP)]
        assert len(jumps) == 3
        for i in jumps:
            assert trace.target[i] == trace.pc[0]

    def test_string_kind_coercion(self):
        asm = TraceAssembler()
        asm.add(0x1000, 4, "RET", taken=True, target=0x2000)
        trace = asm.build()
        assert trace.kind[0] == int(BranchKind.RET)
