"""Microservice request-graph workloads and per-request SLO accounting.

Covers the family end to end: seeded DAG construction (property-based),
byte-identical determinism, trace/arrival invariants, the request-
latency tracker's published metrics, snapshot/warmup-resume round
trips, and v2 trace serialization.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu.requests import percentile
from repro.cpu.simulator import FrontEndSimulator, simulate
from repro.cpu.stats import SimStats
from repro.prefetchers import make_prefetcher
from repro.workloads.generator import build_app
from repro.workloads.microservices import (
    ENTRY_SERVICE,
    MICROSERVICE_NAMES,
    MicroserviceParams,
    ServiceSpec,
    build_microservice_app,
    microservice_params,
    request_graphs,
)
from repro.workloads.serialization import load_trace, save_trace
from repro.workloads.suite import ALL_WORKLOAD_NAMES, is_microservice
from tests.conftest import micro_machine, micro_params
from tests.test_determinism import _binary_digest, _trace_digest

SLOW = settings(
    max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


def msvc_params(seed: int = 11, **overrides) -> MicroserviceParams:
    """A tiny but structurally complete three-service system."""
    params = MicroserviceParams(
        name="msvc_test",
        seed=seed,
        stages=[],
        services=[
            ServiceSpec("front", 2, 4.0),
            ServiceSpec("mid", 2, 5.0),
            ServiceSpec("back", 2, 4.0),
        ],
        fanout_max=2,
        max_depth=3,
        edge_prob=0.6,
        n_request_types=3,
        zipf_alpha=0.9,
        shared_pool_kb=14.0,
        hot_pool_kb=4.0,
        cold_func_frac=0.4,
        bundle_threshold=6 * 1024,
        base_requests=8,
    )
    for key, value in overrides.items():
        setattr(params, key, value)
    return params


@pytest.fixture(scope="module")
def msvc_app():
    return build_microservice_app(msvc_params())


@pytest.fixture(scope="module")
def msvc_trace(msvc_app):
    return msvc_app.trace(10, seed=3)


# ======================================================================
# Request-graph construction (property-based)
# ======================================================================
@st.composite
def graph_params(draw):
    n_services = draw(st.integers(2, 6))
    services = [
        ServiceSpec(f"s{i}", draw(st.integers(1, 3)), 4.0)
        for i in range(n_services)
    ]
    return msvc_params(
        seed=draw(st.integers(0, 2**16)),
        services=services,
        fanout_max=draw(st.integers(1, 4)),
        max_depth=draw(st.integers(1, 5)),
        edge_prob=draw(st.floats(0.0, 1.0)),
        n_request_types=draw(st.integers(1, 5)),
    )


class TestRequestGraphs:
    @SLOW
    @given(params=graph_params())
    def test_dag_invariants(self, params):
        """Acyclicity (edges go to strictly higher service indices),
        fan-out and depth bounds, valid endpoint indices."""
        graphs = request_graphs(params)
        assert len(graphs) == params.n_request_types
        for g in graphs:
            assert g.nodes[0][0] == ENTRY_SERVICE
            for k, (svc, ep) in enumerate(g.nodes):
                assert 0 <= ep < params.services[svc].n_endpoints
                for child in g.children[k]:
                    assert g.nodes[child][0] > svc
            assert g.max_fanout() <= params.fanout_max
            assert g.depth() <= params.max_depth
            assert len(g) >= 1

    @SLOW
    @given(params=graph_params())
    def test_seeded_determinism(self, params):
        assert request_graphs(params) == request_graphs(params)

    def test_rejects_single_service(self):
        with pytest.raises(ValueError, match=">= 2 services"):
            request_graphs(
                msvc_params(services=[ServiceSpec("only", 2, 4.0)])
            )


# ======================================================================
# Seeded determinism of the full generation pipeline
# ======================================================================
class TestDeterminism:
    def test_binary_and_trace_bit_identical(self):
        a = build_microservice_app(msvc_params())
        b = build_microservice_app(msvc_params())
        assert _binary_digest(a.binary) == _binary_digest(b.binary)
        ta, tb = a.trace(8, seed=5), b.trace(8, seed=5)
        assert _trace_digest(ta) == _trace_digest(tb)
        assert ta.requests == tb.requests
        assert ta.request_gaps == tb.request_gaps
        assert ta.slo_instr == tb.slo_instr

    def test_trace_seed_matters(self, msvc_app):
        assert (_trace_digest(msvc_app.trace(8, seed=1))
                != _trace_digest(msvc_app.trace(8, seed=2)))


# ======================================================================
# Trace invariants: decode tables, markers, arrival process
# ======================================================================
class TestTraceInvariants:
    def test_decode_tables_consistent(self, msvc_trace):
        t = msvc_trace
        n = len(t.pc)
        for arr in (t.ninstr, t.kind, t.taken, t.target, t.tagged):
            assert len(arr) == n
        assert sum(t.ninstr) == t.n_instructions
        assert all(x >= 1 for x in t.ninstr)
        assert all(flag in (0, 1) for flag in t.taken)
        assert all(flag in (0, 1) for flag in t.tagged)

    def test_request_markers(self, msvc_trace):
        t = msvc_trace
        assert len(t.requests) == 10
        starts = [s for s, _ in t.requests]
        assert starts[0] == 0
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)
        assert all(0 <= rt < 3 for _, rt in t.requests)
        assert {span[2] for span in t.stage_spans} == {"rpc"}

    def test_arrival_gaps_normalized(self, msvc_trace):
        """gaps[0] == 0; the mean gap is exactly
        mean_service/utilization (same offered load per prefetcher)."""
        t = msvc_trace
        gaps = t.request_gaps
        n = len(t.requests)
        assert len(gaps) == n
        assert gaps[0] == 0.0
        assert all(g >= 0.0 for g in gaps)
        arrival = msvc_params().arrival
        mean_service = t.n_instructions / n
        assert (sum(gaps) / (n - 1)
                == pytest.approx(mean_service / arrival.utilization))
        assert t.slo_instr == pytest.approx(
            arrival.slo_factor * mean_service
        )

    def test_monolithic_traces_carry_no_arrivals(self):
        trace = build_app(micro_params()).trace(5, seed=2)
        assert trace.request_gaps is None
        assert trace.slo_instr is None


# ======================================================================
# Request-latency tracker
# ======================================================================
class TestPercentile:
    def test_empty(self):
        assert percentile([], 50.0) == 0.0

    def test_nearest_rank(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 50.0) == 2.0
        assert percentile(vals, 75.0) == 3.0
        assert percentile(vals, 99.0) == 4.0
        assert percentile(vals, 0.0) == 1.0  # rank clamps to 1
        assert percentile([7.0], 99.0) == 7.0


class TestTracker:
    def test_published_metrics(self, msvc_trace):
        sim = FrontEndSimulator(
            config=micro_machine(),
            prefetcher=make_prefetcher("hierarchical"),
        )
        stats = sim.run(msvc_trace, warmup_fraction=0.4)
        assert stats.has_request_latency
        extra = stats.extra
        n = int(extra["request.count"])
        lat = extra["probe.request_latency"]
        svc = extra["probe.request_service"]
        queue = extra["probe.request_queue"]
        assert len(lat) == len(svc) == len(queue) == n
        # Queueing recurrence: latency = wait + service, waits >= 0.
        for l, s, w in zip(lat, svc, queue):
            assert w >= 0.0
            assert l == pytest.approx(s + w)
        assert 0.0 <= stats.slo_attainment <= 1.0
        assert extra["request.slo_threshold"] == pytest.approx(
            msvc_trace.slo_instr / sim.config.core.commit_width
        )
        assert extra["request.p50"] <= extra["request.p95"]
        assert extra["request.p95"] <= extra["request.p99"]
        assert extra["request.p99"] <= extra["request.max"]
        assert stats.request_latency(50.0) == extra["request.p50"]
        window = int(extra["request.window"])
        n_windows = math.ceil(n / window)
        for key in ("p50", "p95", "p99", "slo"):
            assert len(extra[f"probe.request_{key}"]) == n_windows
        # Everything the tracker publishes must survive pickling and
        # the shallow copies state_dict makes: floats and flat tuples.
        for key, value in extra.items():
            if key.startswith(("request.", "probe.request")):
                assert isinstance(value, (float, tuple)), key

    def test_probes_compose_without_perturbing(self, msvc_trace):
        """Splitting the window at probe intervals on top of request
        boundaries must not change any request metric."""
        plain = simulate(msvc_trace, config=micro_machine())
        probed = simulate(msvc_trace, config=micro_machine(),
                          probe_interval=2_000)
        assert "probe.cycles" in probed.extra  # the bus did fire
        assert (probed.extra["probe.request_latency"]
                == plain.extra["probe.request_latency"])
        assert probed.extra["request.p99"] == plain.extra["request.p99"]
        assert (probed.extra["request.slo_attainment"]
                == plain.extra["request.slo_attainment"])

    def test_track_requests_false_disables(self, msvc_trace):
        stats = simulate(msvc_trace, config=micro_machine(),
                         track_requests=False)
        assert not stats.has_request_latency
        assert not any(key.startswith("request.") for key in stats.extra)

    def test_track_requests_requires_gaps(self):
        trace = build_app(micro_params()).trace(5, seed=2)
        sim = FrontEndSimulator(config=micro_machine(),
                                track_requests=True)
        with pytest.raises(ValueError, match="request_gaps"):
            sim.run(trace)

    def test_auto_off_for_monolithic_traces(self):
        trace = build_app(micro_params()).trace(5, seed=2)
        stats = simulate(trace, config=micro_machine())
        assert not stats.has_request_latency
        assert not any(key.startswith("probe.request")
                       for key in stats.extra)


# ======================================================================
# Snapshot round trips
# ======================================================================
class TestSnapshotRoundTrip:
    def test_stats_state_dict_roundtrip(self, msvc_trace):
        stats = simulate(msvc_trace, config=micro_machine())
        assert stats.has_request_latency
        clone = SimStats.from_state(stats.state_dict())
        assert clone == stats
        assert (clone.extra["probe.request_latency"]
                == stats.extra["probe.request_latency"])
        restored = SimStats()
        restored.load_state_dict(stats.state_dict())
        assert restored == stats

    @pytest.mark.parametrize(
        "prefetcher", [None, "hierarchical", "hp_compressed"]
    )
    def test_warmup_checkpoint_resume_is_exact(self, prefetcher,
                                               msvc_trace):
        """Resume from a warmup snapshot: every counter *and* every
        probe.request_* timeline must equal the uninterrupted run."""
        def machine():
            pf = make_prefetcher(prefetcher) if prefetcher else None
            return FrontEndSimulator(config=micro_machine(),
                                     prefetcher=pf)

        expected = machine().run(msvc_trace)
        donor = machine()
        donor.warmup(msvc_trace)
        snapshot = donor.state_dict()
        resumed = machine().resume(msvc_trace, snapshot)
        got = resumed.measure()
        assert got == expected
        assert got.state_dict() == expected.state_dict()
        assert (got.extra["probe.request_latency"]
                == expected.extra["probe.request_latency"])
        assert (got.extra["probe.request_p99"]
                == expected.extra["probe.request_p99"])


# ======================================================================
# Serialization (format v2)
# ======================================================================
class TestSerialization:
    def test_v2_roundtrip_preserves_arrivals(self, msvc_trace, tmp_path):
        path = tmp_path / "msvc.npz"
        save_trace(msvc_trace, path)
        loaded = load_trace(path)
        # Value equality per decode column (the original holds enums
        # and bools; the loaded trace plain ints — IntEnum/bool compare
        # equal to int, and the simulator treats them identically).
        assert loaded.pc == msvc_trace.pc
        assert loaded.ninstr == msvc_trace.ninstr
        assert loaded.kind == msvc_trace.kind
        assert loaded.taken == msvc_trace.taken
        assert loaded.target == msvc_trace.target
        assert loaded.tagged == msvc_trace.tagged
        assert loaded.requests == msvc_trace.requests
        assert loaded.request_gaps == msvc_trace.request_gaps
        assert loaded.slo_instr == msvc_trace.slo_instr
        a = simulate(msvc_trace, config=micro_machine())
        b = simulate(loaded, config=micro_machine())
        assert a == b  # cycle-exact incl. request metrics

    def test_gapless_trace_loads_with_none(self, tmp_path):
        trace = build_app(micro_params()).trace(5, seed=2)
        path = tmp_path / "mono.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.request_gaps is None
        assert loaded.slo_instr is None


# ======================================================================
# Suite / registry integration
# ======================================================================
class TestSuiteIntegration:
    def test_family_registered(self):
        assert len(MICROSERVICE_NAMES) >= 4
        for name in MICROSERVICE_NAMES:
            assert name in ALL_WORKLOAD_NAMES
            assert is_microservice(name)
        assert not is_microservice("beego")

    def test_params_lookup(self):
        params = microservice_params("msvc_social")
        assert len(params.services) >= 2
        assert params.arrival.utilization > 0.0
        with pytest.raises(KeyError):
            microservice_params("not_a_workload")

    def test_hp_compressed_config(self):
        from repro.prefetchers.registry import HP_COMPRESSED_OVERRIDES

        pf = make_prefetcher("hp_compressed")
        for key, value in HP_COMPRESSED_OVERRIDES.items():
            assert getattr(pf.config, key) == value
        baseline = make_prefetcher("hierarchical")
        assert (pf.config.metadata_buffer_bytes
                < baseline.config.metadata_buffer_bytes)
