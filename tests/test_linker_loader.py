"""Unit tests for the linker (tagging) and loader (tag application)."""

import pytest

from repro.isa.binary import Binary, BlockSpec, Function
from repro.isa.instructions import BranchKind
from repro.isa.linker import BUNDLE_SECTION, Linker
from repro.isa.loader import BUNDLE_ID_BITS, LoadedProgram, bundle_id_of

KB = 1024


def _leaf(name, size_bytes):
    n = max(2, size_bytes // 4)
    return Function(name, [
        BlockSpec(ninstr=n - 2, kind=BranchKind.COND, taken_prob=0.1,
                  taken_next=1),
        BlockSpec(ninstr=2, kind=BranchKind.RET),
    ])


def make_binary():
    """main calls two big divergent branches plus a small helper.

    With threshold 8 KB both ``big`` and ``big2`` qualify as Bundle
    entries (each >= 8 KB reachable, and main's reachable exceeds each
    by more than 8 KB thanks to the other branch).
    """
    binary = Binary(entry="main")
    binary.add_function(_leaf("big", 30 * KB))
    binary.add_function(_leaf("big2", 20 * KB))
    binary.add_function(Function("small", [
        BlockSpec(ninstr=4, kind=BranchKind.RET),
    ]))
    binary.add_function(Function("main", [
        BlockSpec(ninstr=3, kind=BranchKind.CALL, callee="big"),
        BlockSpec(ninstr=3, kind=BranchKind.CALL, callee="big2"),
        BlockSpec(ninstr=3, kind=BranchKind.CALL, callee="small"),
        BlockSpec(ninstr=2, kind=BranchKind.JUMP, taken_next=0),
    ]))
    return binary


class TestLinker:
    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            Linker(0)

    def test_link_writes_section(self):
        binary = make_binary()
        result = Linker(8 * KB).link(binary)
        assert binary.sections[BUNDLE_SECTION] is result
        assert binary.is_laid_out

    def test_tags_calls_to_entry_functions(self):
        binary = make_binary()
        result = Linker(8 * KB).link(binary)
        assert "big" in result.entry_addrs
        assert "small" not in result.entry_addrs
        main = binary.get("main")
        big_call = main.terminator_addr(0)
        small_call = main.terminator_addr(2)
        assert big_call in result.tagged_addrs
        assert small_call not in result.tagged_addrs

    def test_tags_returns_of_entry_functions(self):
        binary = make_binary()
        result = Linker(8 * KB).link(binary)
        big = binary.get("big")
        assert big.terminator_addr(1) in result.tagged_addrs
        small = binary.get("small")
        assert small.terminator_addr(0) not in result.tagged_addrs

    def test_tags_icall_when_any_target_is_entry(self):
        binary = make_binary()
        binary.add_function(Function("disp", [
            BlockSpec(ninstr=2, kind=BranchKind.ICALL,
                      targets=("big", "small")),
            BlockSpec(ninstr=1, kind=BranchKind.RET),
        ]))
        result = Linker(8 * KB).link(binary)
        disp = binary.get("disp")
        assert disp.terminator_addr(0) in result.tagged_addrs

    def test_higher_threshold_fewer_tags(self):
        b1, b2 = make_binary(), make_binary()
        low = Linker(8 * KB).link(b1)
        high = Linker(512 * KB).link(b2)
        assert len(high.tagged_addrs) <= len(low.tagged_addrs)


class TestLoader:
    def test_requires_link(self):
        binary = make_binary()
        binary.layout()
        with pytest.raises(ValueError, match="bundle_entries"):
            LoadedProgram(binary)

    def test_load_links_when_needed(self):
        binary = make_binary()
        program = LoadedProgram.load(binary, threshold=8 * KB)
        assert program.n_bundles >= 1
        main = binary.get("main")
        assert program.is_tagged(main.terminator_addr(0))
        assert not program.is_tagged(main.terminator_addr(2))

    def test_load_relinks_on_threshold_change(self):
        binary = make_binary()
        p1 = LoadedProgram.load(binary, threshold=8 * KB)
        p2 = LoadedProgram.load(binary, threshold=512 * KB)
        assert len(p2.tagged) <= len(p1.tagged)


class TestBundleId:
    def test_width(self):
        for addr in (0x400000, 0x400004, 0x7FF000, 0):
            assert 0 <= bundle_id_of(addr) < (1 << BUNDLE_ID_BITS)

    def test_deterministic(self):
        assert bundle_id_of(0x401234) == bundle_id_of(0x401234)

    def test_nearby_addresses_spread(self):
        ids = {bundle_id_of(0x400000 + 4 * i) for i in range(256)}
        assert len(ids) > 250  # multiplicative hash disperses
