"""Unit tests for the Metadata Buffer and Metadata Address Table."""

import pytest

from repro.core.compression import SpatialRegion
from repro.core.metadata import (
    MetadataAddressTable,
    MetadataBuffer,
    SEGMENT_BYTES,
    SEGMENT_REGIONS,
    Segment,
)


class TestSegment:
    def test_append_until_full(self):
        seg = Segment(0, bundle_id=1, num_insts=0)
        for i in range(SEGMENT_REGIONS):
            seg.append(SpatialRegion(i * 64))
        assert seg.full
        with pytest.raises(RuntimeError):
            seg.append(SpatialRegion(9999))

    def test_reset_clears(self):
        seg = Segment(3, bundle_id=1, num_insts=10)
        seg.append(SpatialRegion(0))
        seg.next_seg = 7
        seg.reset(bundle_id=2, num_insts=55)
        assert seg.bundle_id == 2
        assert seg.num_insts == 55
        assert seg.next_seg == -1
        assert seg.n_valid == 0
        assert seg.valid_regions() == []

    def test_valid_regions_respects_truncation(self):
        seg = Segment(0, 1, 0)
        seg.append(SpatialRegion(0))
        seg.append(SpatialRegion(64))
        seg.n_valid = 1
        assert len(seg.valid_regions()) == 1


class TestMetadataBuffer:
    def test_capacity_to_segments(self):
        buf = MetadataBuffer(capacity_bytes=512 * 1024)
        assert buf.n_segments == 512 * 1024 // SEGMENT_BYTES

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            MetadataBuffer(capacity_bytes=SEGMENT_BYTES - 1)

    def test_allocate_circular(self):
        buf = MetadataBuffer(capacity_bytes=4 * SEGMENT_BYTES)
        indices = [
            buf.allocate(i, 0, protect=lambda _i: False).index
            for i in range(4)
        ]
        assert indices == [0, 1, 2, 3]

    def test_reclaim_invalidates_owner(self):
        invalidated = []
        buf = MetadataBuffer(
            capacity_bytes=2 * SEGMENT_BYTES,
            on_invalidate=invalidated.append,
        )
        buf.allocate(111, 0, protect=lambda _i: False)
        buf.allocate(222, 0, protect=lambda _i: False)
        buf.allocate(333, 0, protect=lambda _i: False)  # reclaims seg 0
        assert invalidated == [111]
        assert buf.reclaims == 1

    def test_protected_segments_skipped(self):
        buf = MetadataBuffer(capacity_bytes=3 * SEGMENT_BYTES)
        s0 = buf.allocate(1, 0, protect=lambda _i: False)
        buf.allocate(2, 0, protect=lambda _i: False)
        buf.allocate(3, 0, protect=lambda _i: False)
        # Wrap-around: protect segment 0, so the next allocation reuses 1.
        nxt = buf.allocate(4, 0, protect=lambda i: i == s0.index)
        assert nxt.index == 1

    def test_all_protected_raises(self):
        buf = MetadataBuffer(capacity_bytes=2 * SEGMENT_BYTES)
        with pytest.raises(RuntimeError):
            buf.allocate(1, 0, protect=lambda _i: True)

    def test_chain_follows_next_seg(self):
        buf = MetadataBuffer(capacity_bytes=8 * SEGMENT_BYTES)
        a = buf.allocate(9, 0, protect=lambda _i: False)
        b = buf.allocate(9, 100, protect=lambda _i: False)
        a.next_seg = b.index
        a.n_valid = b.n_valid = 1
        a.regions.append(SpatialRegion(0))
        b.regions.append(SpatialRegion(64))
        chain = buf.chain(a.index, 9)
        assert [s.index for s in chain] == [a.index, b.index]

    def test_chain_stops_at_ownership_mismatch(self):
        buf = MetadataBuffer(capacity_bytes=8 * SEGMENT_BYTES)
        a = buf.allocate(9, 0, protect=lambda _i: False)
        other = buf.allocate(77, 0, protect=lambda _i: False)
        a.next_seg = other.index
        chain = buf.chain(a.index, 9)
        assert [s.index for s in chain] == [a.index]

    def test_chain_handles_stale_self_loop(self):
        buf = MetadataBuffer(capacity_bytes=8 * SEGMENT_BYTES)
        a = buf.allocate(9, 0, protect=lambda _i: False)
        a.next_seg = a.index
        assert len(buf.chain(a.index, 9)) == 1


class TestMetadataAddressTable:
    def test_paper_storage_budget(self):
        # §5.3.3: 512 entries, 8-way, 24-bit IDs, 11-bit pointers ->
        # 15872 bits = 1.94 KB.
        mat = MetadataAddressTable()
        assert mat.storage_bits() == 15872
        assert abs(mat.storage_bits() / 8192 - 1.94) < 0.01

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            MetadataAddressTable(n_entries=100, assoc=8)

    def test_insert_lookup(self):
        mat = MetadataAddressTable(n_entries=16, assoc=4)
        mat.insert(0x123, 7)
        assert mat.lookup(0x123) == 7
        assert mat.lookup(0x456) is None
        assert mat.hits == 1 and mat.misses == 1

    def test_lru_eviction_within_set(self):
        mat = MetadataAddressTable(n_entries=8, assoc=2)
        n_sets = mat.n_sets
        ids = [1 * n_sets, 2 * n_sets, 3 * n_sets]  # same set
        mat.insert(ids[0], 0)
        mat.insert(ids[1], 1)
        mat.lookup(ids[0])        # refresh LRU
        evicted = mat.insert(ids[2], 2)
        assert evicted == ids[1]
        assert mat.lookup(ids[0]) == 0
        assert mat.lookup(ids[1]) is None

    def test_invalidate(self):
        mat = MetadataAddressTable(n_entries=16, assoc=4)
        mat.insert(5, 1)
        assert mat.invalidate(5)
        assert not mat.invalidate(5)
        assert mat.lookup(5) is None

    def test_update_existing_moves_to_mru(self):
        mat = MetadataAddressTable(n_entries=8, assoc=2)
        n_sets = mat.n_sets
        a, b, c = 1 * n_sets, 2 * n_sets, 3 * n_sets
        mat.insert(a, 0)
        mat.insert(b, 1)
        mat.insert(a, 9)  # refresh + repoint
        evicted = mat.insert(c, 2)
        assert evicted == b
        assert mat.lookup(a) == 9

    def test_len(self):
        mat = MetadataAddressTable(n_entries=16, assoc=4)
        for i in range(5):
            mat.insert(i, i)
        assert len(mat) == 5
