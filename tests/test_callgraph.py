"""Unit tests for call-graph construction and reachable sizes."""

import pytest

from repro.callgraph import (
    CallGraph,
    build_call_graph,
    reachable_sets,
    reachable_sizes,
)
from repro.callgraph.reachable import strongly_connected_components


class FakeFunc:
    """Duck-typed function-like object for graph building."""

    def __init__(self, name, size, callees=()):
        self.name = name
        self.size = size
        self._callees = list(callees)

    def static_callees(self):
        return list(self._callees)


def graph_of(spec):
    """spec: {name: (size, [callees])}."""
    return build_call_graph(
        FakeFunc(n, s, cs) for n, (s, cs) in spec.items()
    )


class TestCallGraph:
    def test_build_nodes_edges(self):
        g = graph_of({"a": (10, ["b"]), "b": (20, [])})
        assert g.sizes == {"a": 10, "b": 20}
        assert g.callees("a") == {"b"}
        assert g.callers("b") == {"a"}

    def test_duplicate_edges_collapse(self):
        g = graph_of({"a": (10, ["b", "b", "b"]), "b": (20, [])})
        assert g.edge_count() == 1

    def test_roots(self):
        g = graph_of({"a": (1, ["b"]), "b": (1, []), "c": (1, [])})
        assert sorted(g.roots()) == ["a", "c"]

    def test_edge_to_unknown_callee_raises(self):
        g = CallGraph()
        g.add_node("a", 1)
        with pytest.raises(KeyError):
            g.add_edge("a", "ghost")

    def test_negative_size_rejected(self):
        g = CallGraph()
        with pytest.raises(ValueError):
            g.add_node("a", -5)


class TestSCC:
    def test_acyclic_all_singletons(self):
        g = graph_of({"a": (1, ["b", "c"]), "b": (1, []), "c": (1, [])})
        sccs = strongly_connected_components(g)
        assert sorted(len(s) for s in sccs) == [1, 1, 1]

    def test_cycle_groups(self):
        g = graph_of({
            "a": (1, ["b"]), "b": (1, ["c"]), "c": (1, ["a"]),
            "d": (1, ["a"]),
        })
        sccs = strongly_connected_components(g)
        sizes = sorted(len(s) for s in sccs)
        assert sizes == [1, 3]


class TestReachableSizes:
    def test_linear_chain(self):
        g = graph_of({"a": (10, ["b"]), "b": (20, ["c"]), "c": (30, [])})
        r = reachable_sizes(g)
        assert r == {"a": 60, "b": 50, "c": 30}

    def test_diamond_counts_shared_once(self):
        # a -> b, a -> c, b -> d, c -> d: d counted once from a.
        g = graph_of({
            "a": (1, ["b", "c"]), "b": (2, ["d"]),
            "c": (4, ["d"]), "d": (8, []),
        })
        r = reachable_sizes(g)
        assert r["a"] == 15
        assert r["b"] == 10
        assert r["c"] == 12

    def test_recursion_cycle(self):
        g = graph_of({"a": (5, ["b"]), "b": (7, ["a"])})
        r = reachable_sizes(g)
        assert r["a"] == 12
        assert r["b"] == 12

    def test_self_recursion(self):
        g = graph_of({"a": (5, ["a"])})
        assert reachable_sizes(g) == {"a": 5}

    def test_empty_graph(self):
        assert reachable_sizes(CallGraph()) == {}

    def test_matches_reachable_sets(self):
        g = graph_of({
            "a": (1, ["b", "c"]), "b": (2, ["d", "e"]),
            "c": (4, ["e"]), "d": (8, []), "e": (16, ["d"]),
        })
        sizes = reachable_sizes(g)
        sets = reachable_sets(g)
        for name, reached in sets.items():
            assert sizes[name] == sum(g.sizes[m] for m in reached)

    def test_reachable_sets_include_self(self):
        g = graph_of({"a": (1, []), "b": (1, ["a"])})
        sets = reachable_sets(g)
        assert "a" in sets["a"]
        assert sets["b"] == frozenset({"a", "b"})

    def test_matches_on_micro_app(self, micro_app):
        # Cross-check the bitset DP against the exact set expansion on a
        # real generated binary (a few hundred functions).
        g = build_call_graph(micro_app.binary)
        sizes = reachable_sizes(g)
        sets = reachable_sets(g)
        for name in list(g.nodes)[::17]:  # sample
            assert sizes[name] == sum(g.sizes[m] for m in sets[name])
