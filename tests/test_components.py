"""The SimComponent protocol: exact state round-trips for every model.

The protocol's contract is *bit-identical future behavior*: loading a
``state_dict()`` snapshot into a freshly constructed component (same
configuration) and replaying the remaining operations must reproduce
the original's final state exactly.  Unit sections drive each component
with randomized operation sequences (hypothesis); machine sections
assert that a simulator resumed from a snapshot — at the warmup
boundary or mid-measurement — finishes with ``SimStats`` exactly equal
to an uninterrupted run's.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compression import CompressionBuffer
from repro.core.metadata import MetadataAddressTable, MetadataBuffer
from repro.cpu.component import (
    ComponentRegistry,
    SimComponent,
    check_state_fields,
)
from repro.cpu.simulator import FrontEndSimulator
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.ittage import ITTagePredictor
from repro.frontend.ras import ReturnAddressStack
from repro.frontend.tage import TagePredictor
from repro.memory.cache import ORIGIN_DEMAND, ORIGIN_PF, SetAssocCache
from repro.memory.policies import POLICY_NAMES, BIPPolicy, LRUPolicy
from repro.memory.tlb import InstructionTLB
from repro.prefetchers import PREFETCHER_NAMES, make_prefetcher

from tests.conftest import micro_machine
from tests.helpers import looping_trace

# All prefetchers that run on a single core (everything registered).
ALL_PREFETCHERS = [None] + [n for n in PREFETCHER_NAMES if n != "fdip"]


# ======================================================================
# Protocol basics
# ======================================================================
class TestProtocol:
    def test_base_methods_abstract(self):
        comp = SimComponent()
        with pytest.raises(NotImplementedError):
            comp.reset()
        with pytest.raises(NotImplementedError):
            comp.state_dict()
        with pytest.raises(NotImplementedError):
            comp.load_state_dict({})
        assert comp.stats_snapshot() == {}

    def test_check_state_fields_strict(self):
        comp = InstructionTLB(4)
        with pytest.raises(ValueError, match="missing.*pages"):
            check_state_fields(comp, {"accesses": 0, "misses": 0},
                               ("pages", "accesses", "misses"))
        with pytest.raises(ValueError, match="unknown.*bogus"):
            check_state_fields(
                comp, {"pages": [], "accesses": 0, "misses": 0, "bogus": 1},
                ("pages", "accesses", "misses"),
            )

    def test_every_component_rejects_stale_snapshot(self):
        components = [
            SetAssocCache(1024, 2, name="c"),
            InstructionTLB(8),
            BranchTargetBuffer(64, 4),
            TagePredictor(bimodal_entries=64, tables=((64, 4, 5),)),
            ITTagePredictor(base_entries=64, tables=((64, 4, 5),)),
            ReturnAddressStack(4),
            MetadataAddressTable(16, 4),
            MetadataBuffer(capacity_bytes=2 * 384),
            CompressionBuffer(capacity=2),
            LRUPolicy(),
            BIPPolicy(),
        ]
        for comp in components:
            with pytest.raises(ValueError):
                comp.load_state_dict({"definitely": "not", "a": "snapshot"})


class TestRegistry:
    def test_register_returns_component(self):
        reg = ComponentRegistry()
        tlb = reg.register("itlb", InstructionTLB(4))
        assert isinstance(tlb, InstructionTLB)
        assert reg["itlb"] is tlb
        assert "itlb" in reg and len(reg) == 1
        assert reg.names() == ("itlb",)

    def test_register_rejects_non_component(self):
        reg = ComponentRegistry()
        with pytest.raises(TypeError, match="SimComponent"):
            reg.register("x", object())

    def test_register_rejects_duplicate(self):
        reg = ComponentRegistry()
        reg.register("tlb", InstructionTLB(4))
        with pytest.raises(ValueError, match="already registered"):
            reg.register("tlb", InstructionTLB(4))

    def test_load_rejects_component_set_mismatch(self):
        reg = ComponentRegistry()
        reg.register("tlb", InstructionTLB(4))
        state = reg.state_dict()
        other = ComponentRegistry()
        other.register("tlb", InstructionTLB(4))
        other.register("ras", ReturnAddressStack(4))
        with pytest.raises(ValueError, match="mismatch"):
            other.load_state_dict(state)

    def test_stats_snapshot_prefixes_names(self):
        reg = ComponentRegistry()
        reg.register("itlb", InstructionTLB(4))
        snap = reg.stats_snapshot()
        assert "itlb.miss_rate" in snap and "itlb.resident" in snap


# ======================================================================
# Unit round-trips: snapshot mid-sequence, replay the tail on a clone
# ======================================================================
def _roundtrip(make, ops, drive, split=None):
    """Drive ``ops`` on an original; at ``split``, clone via the state
    protocol; drive the tail on both; their snapshots must agree."""
    if split is None:
        split = len(ops) // 2
    original = make()
    for op in ops[:split]:
        drive(original, op)
    clone = make()
    clone.load_state_dict(original.state_dict())
    assert clone.state_dict() == original.state_dict()
    for op in ops[split:]:
        drive(original, op)
        drive(clone, op)
    assert clone.state_dict() == original.state_dict()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("ilp"),
                           st.integers(0, 200)), max_size=60))
def test_cache_roundtrip(ops):
    def drive(cache, op):
        kind, block = op
        if kind == "i":
            cache.insert(block, ORIGIN_PF if block % 3 else ORIGIN_DEMAND,
                         issue_index=block)
        elif kind == "l":
            cache.lookup(block)
        else:
            cache.invalidate(block)

    _roundtrip(lambda: SetAssocCache(4096, 4, name="t"), ops, drive)


@pytest.mark.parametrize("policy", POLICY_NAMES)
@settings(max_examples=15, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from("ilp"),
                               st.integers(0, 200)), max_size=60))
def test_cache_roundtrip_every_policy(policy, ops):
    def drive(cache, op):
        kind, block = op
        if kind == "i":
            cache.insert(block, ORIGIN_PF if block % 3 else ORIGIN_DEMAND,
                         issue_index=block)
        elif kind == "l":
            cache.lookup(block)
        else:
            cache.invalidate(block)

    _roundtrip(lambda: SetAssocCache(4096, 4, name="t", policy=policy),
               ops, drive)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 40), max_size=60))
def test_tlb_roundtrip(pages):
    _roundtrip(lambda: InstructionTLB(8),
               pages, lambda tlb, page: tlb.translate(page))


@pytest.mark.parametrize("policy", POLICY_NAMES)
@settings(max_examples=15, deadline=None)
@given(pages=st.lists(st.integers(0, 40), max_size=60))
def test_tlb_roundtrip_every_policy(policy, pages):
    def drive(tlb, page):
        if page % 5 == 0:
            tlb.prefetch(page)
        else:
            tlb.translate(page)

    _roundtrip(lambda: InstructionTLB(8, policy=policy), pages, drive)


@pytest.mark.parametrize("entries", [64, None])
@settings(max_examples=20, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from("lu"),
                               st.integers(0, 500)), max_size=60))
def test_btb_roundtrip(entries, ops):
    def drive(btb, op):
        kind, pc = op
        if kind == "l":
            btb.lookup(pc * 4)
        else:
            btb.update(pc * 4, pc * 8 + 16)

    _roundtrip(lambda: BranchTargetBuffer(entries, 4), ops, drive)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 300), st.booleans()), max_size=80))
def test_tage_roundtrip(branches):
    _roundtrip(
        lambda: TagePredictor(bimodal_entries=256,
                              tables=((64, 4, 5), (64, 8, 6))),
        branches,
        lambda t, b: t.predict_and_update(b[0] * 4, b[1]),
    )


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 30)),
                max_size=80))
def test_ittage_roundtrip(calls):
    _roundtrip(
        lambda: ITTagePredictor(base_entries=64, tables=((64, 4, 5),)),
        calls,
        lambda t, c: t.predict_and_update(c[0] * 4, 0x1000 + c[1] * 64),
    )


@settings(max_examples=30, deadline=None)
@given(st.lists(st.one_of(st.none(), st.integers(0, 1 << 20)), max_size=60))
def test_ras_roundtrip(ops):
    def drive(ras, op):
        if op is None:
            ras.pop()
        else:
            ras.push(op)

    _roundtrip(lambda: ReturnAddressStack(4), ops, drive)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 200), max_size=80))
def test_compression_roundtrip(blocks):
    sinks = {}

    def make():
        buf = CompressionBuffer(capacity=4, span=4)
        sinks[id(buf)] = []
        buf.sink = sinks[id(buf)].append
        return buf

    split = len(blocks) // 2
    original = make()
    for b in blocks[:split]:
        original.observe(b)
    clone = make()
    clone.load_state_dict(original.state_dict())
    for b in blocks[split:]:
        original.observe(b)
        clone.observe(b)
    assert clone.state_dict() == original.state_dict()
    # Post-snapshot evictions must be identical streams.
    n = len(sinks[id(clone)])
    assert sinks[id(original)][-n:] == sinks[id(clone)] if n else True


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("liv"),
                           st.integers(0, 60)), max_size=60))
def test_mat_roundtrip(ops):
    def drive(mat, op):
        kind, bid = op
        if kind == "l":
            mat.lookup(bid)
        elif kind == "i":
            mat.insert(bid, bid % 32)
        else:
            mat.invalidate(bid)

    _roundtrip(lambda: MetadataAddressTable(16, 4), ops, drive)


def test_metadata_buffer_roundtrip():
    buf = MetadataBuffer(capacity_bytes=4 * 384)
    for bid in range(6):  # wraps the 4-segment buffer
        seg = buf.allocate(bid, bid * 10, protect=lambda i: False)
        seg.next_seg = (seg.index + 1) % buf.n_segments
        seg.n_valid = 1
    clone = MetadataBuffer(capacity_bytes=4 * 384)
    clone.load_state_dict(buf.state_dict())
    assert clone.state_dict() == buf.state_dict()
    a = buf.allocate(99, 0, protect=lambda i: False)
    b = clone.allocate(99, 0, protect=lambda i: False)
    assert a.index == b.index
    assert clone.state_dict() == buf.state_dict()

    wrong = MetadataBuffer(capacity_bytes=8 * 384)
    with pytest.raises(ValueError, match="segments"):
        wrong.load_state_dict(buf.state_dict())


# ======================================================================
# Whole-machine round-trips
# ======================================================================
def _machine(prefetcher, **kwargs):
    pf = make_prefetcher(prefetcher) if prefetcher else None
    return FrontEndSimulator(config=micro_machine(), prefetcher=pf, **kwargs)


@pytest.mark.parametrize("prefetcher", ALL_PREFETCHERS)
def test_warmup_checkpoint_resume_is_exact(prefetcher, micro_trace_long):
    """Snapshot at the warmup boundary; resume must equal an
    uninterrupted run's final SimStats exactly."""
    reference = _machine(prefetcher)
    expected = reference.run(micro_trace_long)

    donor = _machine(prefetcher)
    donor.warmup(micro_trace_long)
    snapshot = donor.state_dict()

    resumed = _machine(prefetcher)
    resumed.resume(micro_trace_long, snapshot)
    got = resumed.measure()
    assert got == expected


@pytest.mark.parametrize("prefetcher", [None, "efetch", "hierarchical"])
def test_mid_measurement_resume_is_exact(prefetcher, micro_trace_long):
    """Snapshot *inside* the measured window (via a probe hook); the
    resumed machine must still finish with identical SimStats."""
    reference = _machine(prefetcher)
    expected = reference.run(micro_trace_long)

    donor = _machine(prefetcher, probe_interval=3_000)
    captured = {}

    def grab(sim, sample):
        if "state" not in captured:
            captured["state"] = sim.state_dict()

    donor.probes.subscribe(grab)
    donor.run(micro_trace_long)
    assert "state" in captured

    resumed = _machine(prefetcher)
    resumed.resume(micro_trace_long, captured["state"])
    got = resumed.measure()
    assert got == expected


def test_registry_composes_whole_machine(micro_trace):
    sim = _machine("hierarchical")
    assert sim.components.names() == (
        "stats", "hierarchy", "frontend", "itlb", "prefetcher"
    )
    # Direct attribute references stay identical to registry entries.
    assert sim.components["hierarchy"] is sim.hierarchy
    assert sim.components["stats"] is sim.stats
    sim.run(micro_trace)
    snap = sim.stats_snapshot()
    assert snap["hierarchy.l1i.occupancy"] > 0
    assert snap["frontend.tage.predictions"] > 0


def _same_state(a, b):
    """Structural state equality.

    Plain ``==`` covers pure-data snapshots; deepcopy-style snapshots
    (InstructionPrefetcher) hold objects without ``__eq__``, so fall
    back to pickle bytes — deterministic for graphs deep-copied from a
    common source, and sensitive to any content difference."""
    import pickle
    return a == b or pickle.dumps(a) == pickle.dumps(b)


@pytest.mark.parametrize("prefetcher", ALL_PREFETCHERS)
def test_every_registry_component_roundtrips(prefetcher, micro_trace):
    """mutate -> state_dict -> load_state_dict -> state_dict is exact
    for every component a machine registers, individually.

    This is the executable form of the snapshot-coverage lint: any
    mutable attribute a component forgets to snapshot shows up here as
    a post-load divergence on the fresh twin."""
    sim = _machine(prefetcher)
    sim.run(micro_trace)  # mutate everything through a real run
    twin = _machine(prefetcher)
    twin.warmup(micro_trace)  # bind + dirty the twin; loads must restore
    assert sim.components.names() == twin.components.names()
    for name in sim.components.names():
        snap = sim.components[name].state_dict()
        target = twin.components[name]
        target.load_state_dict(snap)
        assert _same_state(target.state_dict(), snap), name
        # Loading a snapshot into its own source is idempotent too.
        sim.components[name].load_state_dict(snap)
        assert _same_state(sim.components[name].state_dict(), snap), name


def test_resume_requires_matching_config(micro_trace_long):
    donor = _machine(None)
    donor.warmup(micro_trace_long)
    state = donor.state_dict()
    mismatched = FrontEndSimulator(
        config=micro_machine().replace(**{"hierarchy.l1i_bytes": 16 * 1024}),
    )
    with pytest.raises(ValueError):
        mismatched.resume(micro_trace_long, state)


def test_stats_load_is_in_place(micro_trace):
    sim = _machine(None)
    sim.run(micro_trace)
    state = sim.state_dict()
    sim2 = _machine(None)
    shared_ref = sim2.stats
    sim2.load_state_dict(state)
    assert sim2.stats is shared_ref, "SimStats must be loaded in place"
    assert sim2.hierarchy.stats is sim2.stats
    assert sim2.frontend.stats is sim2.stats


# ======================================================================
# Probe bus
# ======================================================================
class TestProbes:
    def test_disabled_by_default(self, micro_trace):
        sim = _machine("hierarchical")
        assert not sim.probes.enabled
        stats = sim.run(micro_trace)
        assert not any(k.startswith("probe.") for k in stats.extra)

    def test_enabled_run_identical_modulo_probe_keys(self, micro_trace_long):
        plain = _machine("hierarchical").run(micro_trace_long)
        probed = _machine("hierarchical", probe_interval=2_000).run(
            micro_trace_long)
        probe_keys = {k for k in probed.extra if k.startswith("probe.")}
        assert probe_keys  # something was actually sampled
        # Strip the timelines: every simulation counter must be exact.
        stripped = probed.state_dict()
        stripped["extra"] = {k: v for k, v in stripped["extra"].items()
                             if not k.startswith("probe.")}
        assert stripped == plain.state_dict()

    def test_sample_cadence(self, micro_trace_long):
        interval = 2_000
        sim = _machine(None, probe_interval=interval)
        stats = sim.run(micro_trace_long)
        instructions = stats.extra["probe.instructions"]
        assert len(instructions) == stats.instructions // interval
        # Sample i fires at the first request boundary at or after the
        # (i+1)-th interval multiple — never a full interval later.
        for i, count in enumerate(instructions):
            assert interval * (i + 1) <= count < interval * (i + 2)
        assert stats.extra["probe.interval"] == float(interval)

    def test_timeline_columns_consistent(self, micro_trace_long):
        stats = _machine("efetch", probe_interval=2_000).run(micro_trace_long)
        cols = [stats.extra[f"probe.{c}"] for c in
                ("instructions", "cycles", "ipc", "l1i_mpki", "pf_accuracy")]
        assert len({len(c) for c in cols}) == 1
        assert all(isinstance(c, tuple) for c in cols)
        # Cumulative columns are monotonic.
        assert list(cols[0]) == sorted(cols[0])
        assert list(cols[1]) == sorted(cols[1])

    def test_subscribers_called_per_sample(self, micro_trace_long):
        sim = _machine(None, probe_interval=2_000)
        seen = []
        sim.probes.subscribe(lambda s, sample: seen.append(sample))
        stats = sim.run(micro_trace_long)
        assert tuple(seen) == tuple(sim.probes.samples)
        assert len(seen) == len(stats.extra["probe.instructions"])

    def test_probes_never_fire_during_warmup(self, micro_trace_long):
        sim = _machine(None, probe_interval=500)
        sim.warmup(micro_trace_long)
        assert sim.probes.samples == []

    def test_oversized_interval_yields_no_samples(self, micro_trace):
        sim = _machine(None, probe_interval=10_000_000)
        stats = sim.run(micro_trace)
        assert not any(k.startswith("probe.") for k in stats.extra)


# ======================================================================
# Run-twice guard
# ======================================================================
class TestRunTwice:
    def test_second_run_raises(self):
        trace = looping_trace()
        sim = _machine(None)
        sim.run(trace)
        with pytest.raises(RuntimeError, match="already ran"):
            sim.run(trace)

    def test_resume_on_used_machine_raises(self, micro_trace):
        donor = _machine(None)
        donor.warmup(micro_trace)
        state = donor.state_dict()
        with pytest.raises(RuntimeError, match="already ran"):
            donor.resume(micro_trace, state)

    def test_reset_enables_identical_rerun(self):
        trace = looping_trace()
        sim = _machine("hierarchical")
        first = sim.run(trace).state_dict()
        sim.reset()
        second = sim.run(trace).state_dict()
        assert first == second
