"""Behavioural tests for the baseline prefetchers (EFetch, MANA, EIP)."""

import pytest

from repro.cpu import simulate
from repro.memory.cache import ORIGIN_PF
from repro.prefetchers import (
    EFetchPrefetcher,
    EIPPrefetcher,
    ManaPrefetcher,
    NullPrefetcher,
    make_prefetcher,
    PREFETCHER_NAMES,
)
from tests.helpers import TraceAssembler, looping_trace


def repeated_call_trace(repeats=30):
    """A caller invoking two callees in a fixed order, repeatedly."""
    asm = TraceAssembler()
    caller = 0x400000
    f1, f2 = 0x410000, 0x420000
    for _ in range(repeats):
        asm.add(caller, 4, "CALL", taken=True, target=f1)
        asm.linear(f1, 6, ninstr=16)
        asm.add(f1 + 6 * 64, 4, "RET", taken=True, target=caller + 16)
        asm.add(caller + 16, 4, "CALL", taken=True, target=f2)
        asm.linear(f2, 6, ninstr=16)
        asm.add(f2 + 6 * 64, 4, "RET", taken=True, target=caller + 32)
        asm.add(caller + 32, 2, "JUMP", taken=True, target=caller)
    return asm.build()


class TestRegistry:
    def test_names(self):
        assert set(PREFETCHER_NAMES) == {
            "fdip", "efetch", "mana", "eip", "hierarchical", "rdip",
            "pif", "hp_compressed",
        }

    def test_fdip_returns_none(self):
        assert make_prefetcher("fdip") is None
        assert make_prefetcher("none") is None

    def test_fdip_rejects_kwargs(self):
        with pytest.raises(ValueError):
            make_prefetcher("fdip", lookahead=3)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown prefetcher"):
            make_prefetcher("ghost")

    def test_builds_each(self):
        assert isinstance(make_prefetcher("efetch"), EFetchPrefetcher)
        assert isinstance(make_prefetcher("mana"), ManaPrefetcher)
        assert isinstance(make_prefetcher("eip"), EIPPrefetcher)
        hp = make_prefetcher("hierarchical")
        assert hp.name == "hierarchical"

    def test_hp_config_dict(self):
        hp = make_prefetcher("hp", config={"mat_entries": 64})
        assert hp.config.mat_entries == 64

    def test_kwargs_forwarded(self):
        assert make_prefetcher("mana", lookahead=7).lookahead == 7

    def test_null_prefetcher_is_noop(self, micro_trace):
        base = simulate(micro_trace)
        null = simulate(micro_trace, prefetcher=NullPrefetcher())
        assert null.cycles == base.cycles


class TestEFetch:
    def test_rejects_bad_lookahead(self):
        with pytest.raises(ValueError):
            EFetchPrefetcher(lookahead=0)

    def test_learns_repeated_callee_sequence(self):
        trace = repeated_call_trace()
        stats = simulate(trace, prefetcher=EFetchPrefetcher(),
                         warmup_fraction=0.3)
        # The callee blocks stay resident in this tiny trace, so the
        # predictions are filtered as redundant — but they were made.
        attempts = (stats.pf_issued[ORIGIN_PF]
                    + stats.pf_redundant[ORIGIN_PF])
        assert attempts > 0

    def test_lookahead_issues_more(self, micro_trace):
        s1 = simulate(micro_trace, prefetcher=EFetchPrefetcher(lookahead=1))
        s3 = simulate(micro_trace, prefetcher=EFetchPrefetcher(lookahead=3))
        assert s3.pf_issued[ORIGIN_PF] >= s1.pf_issued[ORIGIN_PF]

    def test_extras_published(self, micro_trace):
        stats = simulate(micro_trace, prefetcher=EFetchPrefetcher())
        assert "efetch_table_entries" in stats.extra


class TestMana:
    def test_rejects_bad_lookahead(self):
        with pytest.raises(ValueError):
            ManaPrefetcher(lookahead=0)

    def test_streams_on_repetition(self):
        trace = looping_trace(n_blocks=64, repeats=20)
        stats = simulate(trace, prefetcher=ManaPrefetcher(),
                         warmup_fraction=0.3)
        attempts = (stats.pf_issued[ORIGIN_PF]
                    + stats.pf_redundant[ORIGIN_PF])
        assert attempts > 0

    def test_useful_on_micro(self, micro_trace):
        stats = simulate(micro_trace, prefetcher=ManaPrefetcher())
        assert stats.pf_useful[ORIGIN_PF] > 0

    def test_lookahead_increases_issue_volume(self, micro_trace):
        s1 = simulate(micro_trace, prefetcher=ManaPrefetcher(lookahead=1))
        s6 = simulate(micro_trace, prefetcher=ManaPrefetcher(lookahead=6))
        assert s6.pf_issued[ORIGIN_PF] > s1.pf_issued[ORIGIN_PF]

    def test_no_reset_variant_runs(self, micro_trace):
        stats = simulate(
            micro_trace,
            prefetcher=ManaPrefetcher(reset_on_mispredict=False),
        )
        assert stats.pf_issued[ORIGIN_PF] >= 0


class TestEIP:
    def test_entangles_and_triggers(self, micro_trace):
        stats = simulate(micro_trace, prefetcher=EIPPrefetcher())
        assert stats.pf_issued[ORIGIN_PF] > 0
        assert "eip_avg_targets" in stats.extra

    def test_avg_targets_bounded(self, micro_trace):
        pf = EIPPrefetcher(max_targets=4)
        stats = simulate(micro_trace, prefetcher=pf)
        assert stats.extra["eip_avg_targets"] <= 4

    def test_table_capacity_respected(self, micro_trace):
        pf = EIPPrefetcher(table_entries=32)
        stats = simulate(micro_trace, prefetcher=pf)
        assert stats.extra["eip_table_entries"] <= 32

    def test_larger_slack_larger_distance(self, micro_trace_long):
        near = simulate(micro_trace_long,
                        prefetcher=EIPPrefetcher(latency_slack=5))
        far = simulate(micro_trace_long,
                       prefetcher=EIPPrefetcher(latency_slack=200))
        if near.distance_n[ORIGIN_PF] and far.distance_n[ORIGIN_PF]:
            assert (far.avg_distance(ORIGIN_PF)
                    >= near.avg_distance(ORIGIN_PF) * 0.8)
