"""Sharded disk-cache layout: legacy migration + compaction.

PR-3 introduced the flat ``<root>/<digest>.pkl`` store; the sharded
layout (``<root>/<digest[:2]>/<digest>.pkl``) must keep serving those
legacy entries — transparently migrating them on read — and
``DiskCache.compact()`` must migrate the stragglers in bulk, drop
stale-schema payloads, purge quarantine sidecars, and sweep empty
shard directories, all without ever touching the nested ``warmup``
checkpoint store.
"""

import os
import pickle

import pytest

from repro.experiments import diskcache, runner
from repro.experiments.diskcache import (
    SCHEMA_VERSION,
    DiskCache,
    key_digest,
)
from repro.experiments.faults import TRUNCATE, corrupt_file


def _payload(key, marker=1):
    return {"schema": SCHEMA_VERSION, "key": key,
            "stats": {"instructions": marker}, "miss_map": None}


def _make_legacy(cache, key, payload=None):
    """Plant ``key`` at the pre-sharding flat location."""
    cache.put(key, payload or _payload(key))
    sharded = cache.path_for(key)
    legacy = cache.legacy_path_for(key)
    os.replace(sharded, legacy)
    sharded.parent.rmdir()
    return legacy


class TestLegacyMigration:
    def test_flat_entry_served_and_migrated_on_read(self, tmp_path):
        cache = DiskCache(tmp_path)
        legacy = _make_legacy(cache, "k1")
        assert cache.get("k1") == _payload("k1")
        # the read moved the file into its shard directory
        assert not legacy.exists()
        assert cache.path_for("k1").exists()
        # and the next read is direct
        assert cache.get("k1") == _payload("k1")

    def test_corrupt_flat_entry_quarantined_into_shard_dir(self, tmp_path):
        cache = DiskCache(tmp_path)
        legacy = _make_legacy(cache, "k1")
        corrupt_file(legacy, TRUNCATE)
        assert cache.get("k1") is None
        assert not legacy.exists()
        (sidecar,) = cache.quarantined()
        # sidecar surfaces beside the *sharded* path, not at the root
        assert sidecar.parent == cache.path_for("k1").parent
        assert cache.corrupt_count == 1

    def test_sharded_entry_wins_over_stale_flat(self, tmp_path):
        cache = DiskCache(tmp_path)
        _make_legacy(cache, "k1", _payload("k1", marker=1))
        cache.put("k1", _payload("k1", marker=2))
        assert cache.get("k1")["stats"]["instructions"] == 2

    def test_legacy_entries_listing(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("sharded", _payload("sharded"))
        _make_legacy(cache, "flat")
        legacy = list(cache.legacy_entries())
        assert legacy == [cache.legacy_path_for("flat")]
        # entries() sees both
        assert len(list(cache.entries())) == 2

    def test_runner_resolves_legacy_entry_from_disk(self, tmp_path):
        previous = diskcache.set_cache_dir(tmp_path)
        try:
            runner.clear_run_cache()
            from repro.cpu.stats import SimStats

            stats = SimStats()
            stats.instructions = 41
            runner._disk_store("point-key", stats, None)
            cache = diskcache.get_cache()
            _make_legacy(cache, "point-key",
                         cache.get("point-key"))
            runner.clear_run_cache()  # force the disk path
            hit = runner.peek_cached("point-key")
            assert hit is not None
            stats_out, _miss, source = hit
            assert source == "disk"
            assert stats_out.instructions == 41
        finally:
            runner.clear_run_cache()
            diskcache.set_cache_dir(previous)


class TestCompact:
    def test_full_pass(self, tmp_path):
        cache = DiskCache(tmp_path)
        # one healthy sharded entry
        cache.put("keep", _payload("keep"))
        # two legacy flats: one valid (migrates), one corrupt
        _make_legacy(cache, "flat-ok")
        bad = _make_legacy(cache, "flat-bad")
        corrupt_file(bad, TRUNCATE)
        # one stale-schema sharded entry
        cache.put("stale", {"schema": SCHEMA_VERSION - 1, "key": "stale",
                            "stats": {}, "miss_map": None})
        # one pre-existing sidecar to purge
        cache.put("torn", _payload("torn"))
        corrupt_file(cache.path_for("torn"), TRUNCATE)
        assert cache.get("torn") is None  # quarantines it

        report = cache.compact()
        assert report.migrated == 1
        assert report.quarantined == 1  # the corrupt flat
        assert report.stale_dropped == 1
        # flat-bad's sidecar + torn's sidecar
        assert report.purged_sidecars == 2
        # stale/torn shard dirs emptied and removed
        assert report.empty_dirs_removed >= 1
        assert report.entries == 2  # keep + flat-ok
        assert sorted(p.name for p in cache.entries()) == sorted(
            f"{key_digest(k)}.pkl" for k in ("keep", "flat-ok"))
        assert list(cache.legacy_entries()) == []
        assert list(cache.quarantined()) == []
        assert "migrated 1 legacy" in report.describe()

    def test_keep_quarantined(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("torn", _payload("torn"))
        corrupt_file(cache.path_for("torn"), TRUNCATE)
        assert cache.get("torn") is None
        report = cache.compact(purge_quarantined=False)
        assert report.purged_sidecars == 0
        assert len(list(cache.quarantined())) == 1

    def test_warmup_store_never_touched(self, tmp_path):
        previous = diskcache.set_cache_dir(tmp_path)
        try:
            cache = diskcache.get_cache()
            warmup = diskcache.get_warmup_cache()
            warmup.put("checkpoint", _payload("checkpoint"))
            cache.put("result", _payload("result"))
            report = cache.compact()
            assert report.entries == 1
            assert warmup.get("checkpoint") == _payload("checkpoint")
            # warmup/ survives even though compact prunes empty dirs
            assert (tmp_path / "warmup").is_dir()
        finally:
            diskcache.set_cache_dir(previous)

    def test_compact_on_missing_root_is_a_noop(self, tmp_path):
        cache = DiskCache(tmp_path / "never-created")
        report = cache.compact()
        assert (report.migrated, report.quarantined, report.entries) == \
            (0, 0, 0)


class TestStats:
    def test_counters(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("a", _payload("a"))
        cache.put("b", _payload("b"))
        _make_legacy(cache, "c")
        cache.put("torn", _payload("torn"))
        corrupt_file(cache.path_for("torn"), TRUNCATE)
        assert cache.get("torn") is None
        stats = cache.stats()
        assert stats["entries"] == 3  # a, b, legacy c
        assert stats["legacy"] == 1
        assert stats["quarantined"] == 1
        assert stats["shard_dirs"] >= 1
        assert stats["bytes"] > 0
        assert stats["root"] == str(tmp_path)

    def test_cli_cache_cycle(self, tmp_path, capsys):
        from repro.cli import main

        previous = diskcache.set_cache_dir(tmp_path)
        try:
            cache = diskcache.get_cache()
            _make_legacy(cache, "flat")
            cache.put("torn", _payload("torn"))
            corrupt_file(cache.path_for("torn"), TRUNCATE)
            assert cache.get("torn") is None

            assert main(["cache", "info"]) == 0
            out = capsys.readouterr().out
            assert "legacy" in out and "quarantined" in out

            assert main(["cache", "compact"]) == 0
            out = capsys.readouterr().out
            assert "migrated 1 legacy" in out
            assert list(cache.legacy_entries()) == []
            assert list(cache.quarantined()) == []

            assert main(["cache", "clear"]) == 0
            capsys.readouterr()
            assert len(cache) == 0
        finally:
            runner.clear_run_cache()
            diskcache.set_cache_dir(previous)


@pytest.fixture(autouse=True)
def _reset_corruption_counters():
    yield
    runner.reset_run_cache_stats()
