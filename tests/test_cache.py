"""Unit tests for the set-associative LRU cache."""

import pytest

from repro.memory.cache import (
    E_DIRTY,
    E_ISSUE,
    E_ORIGIN,
    E_USED,
    ORIGIN_DEMAND,
    ORIGIN_FDIP,
    ORIGIN_PF,
    SetAssocCache,
)


def small_cache(assoc=2, sets=4):
    return SetAssocCache(assoc * sets * 64, assoc, 64, "test")


class TestGeometry:
    def test_sets_computed(self):
        c = SetAssocCache(32 * 1024, 8, 64)
        assert c.n_sets == 64
        assert c.capacity_blocks == 512

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            SetAssocCache(1000, 8, 64)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            SetAssocCache(3 * 8 * 64, 8, 64)


class TestLookupInsert:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.lookup(5) is None
        c.insert(5)
        assert c.lookup(5) is not None
        assert 5 in c

    def test_entry_fields(self):
        c = small_cache()
        c.insert(5, origin=ORIGIN_PF, issue_index=77)
        e = c.peek(5)
        assert e[E_ORIGIN] == ORIGIN_PF
        assert e[E_USED] is False
        assert e[E_ISSUE] == 77
        assert e[E_DIRTY] is False

    def test_lru_eviction(self):
        c = small_cache(assoc=2, sets=4)
        # Blocks 0, 4, 8 map to set 0.
        c.insert(0)
        c.insert(4)
        c.lookup(0)           # 4 becomes LRU
        evicted = c.insert(8)
        assert evicted[0] == 4
        assert 0 in c and 8 in c and 4 not in c

    def test_peek_does_not_touch_lru(self):
        c = small_cache(assoc=2, sets=4)
        c.insert(0)
        c.insert(4)
        c.peek(0)             # 0 stays LRU
        evicted = c.insert(8)
        assert evicted[0] == 0

    def test_reinsert_keeps_entry(self):
        c = small_cache()
        c.insert(5, origin=ORIGIN_PF)
        c.peek(5)[E_USED] = True
        assert c.insert(5, origin=ORIGIN_FDIP) is None
        e = c.peek(5)
        assert e[E_ORIGIN] == ORIGIN_PF  # original entry preserved
        assert e[E_USED] is True

    def test_invalidate(self):
        c = small_cache()
        c.insert(5)
        e = c.invalidate(5)
        assert e is not None
        assert 5 not in c
        assert c.invalidate(5) is None

    def test_len_and_clear(self):
        c = small_cache()
        for b in range(6):
            c.insert(b)
        assert len(c) == 6
        c.clear()
        assert len(c) == 0

    def test_resident_blocks(self):
        c = small_cache()
        for b in (3, 9, 17):
            c.insert(b)
        assert sorted(c.resident_blocks()) == [3, 9, 17]

    def test_no_cross_set_interference(self):
        c = small_cache(assoc=1, sets=4)
        for b in range(4):
            c.insert(b)
        assert all(b in c for b in range(4))

    def test_origin_constants_distinct(self):
        assert len({ORIGIN_DEMAND, ORIGIN_FDIP, ORIGIN_PF}) == 3
