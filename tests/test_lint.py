"""The ``repro lint`` static-analysis suite (docs/LINTING.md).

Each rule gets a positive (violating), negative (clean), and waived
fixture tree; the engine sections cover the JSON schema, exit codes,
rule selection, and the per-file result cache.  The final section runs
the real linter over the real ``src/repro`` tree — the same blocking
check CI runs — so a regression anywhere in the repo fails here first.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.cli import main as lint_main
from repro.lint.config import LintConfig, load_config
from repro.lint.findings import ERROR, WARNING
from repro.lint.registry import rule_names

REPO_ROOT = Path(__file__).resolve().parents[1]


def project(tmp_path, files, pyproject="[project]\nname = 'fixture'\n"):
    """Materialize a fixture project tree under ``tmp_path``."""
    (tmp_path / "pyproject.toml").write_text(pyproject)
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def lint(tmp_path, **kwargs):
    kwargs.setdefault("use_cache", False)
    return run_lint(root=tmp_path, **kwargs)


def rules_hit(report):
    return sorted({f.rule for f in report.findings})


# ======================================================================
# snapshot-coverage
# ======================================================================
class TestSnapshotCoverage:
    def test_uncovered_mutable_attr_is_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            from repro.cpu.component import SimComponent

            class Counter(SimComponent):
                def __init__(self):
                    self.count = 0
                def bump(self):
                    self.count += 1
                def reset(self):
                    self.count = 0
                def state_dict(self):
                    return {}
                def load_state_dict(self, state):
                    pass
            """})
        report = lint(tmp_path, rules=["snapshot-coverage"])
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.severity == ERROR
        assert "Counter.count" in f.message
        assert "state_dict, load_state_dict" in f.message
        assert "reset" not in f.message.split("covered by")[1]

    def test_missing_reset_coverage_is_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            class Gauge(SimComponent):
                def __init__(self):
                    self.value = 0
                def poke(self):
                    self.value += 1
                def reset(self):
                    pass
                def state_dict(self):
                    return {"value": self.value}
                def load_state_dict(self, state):
                    self.value = state["value"]
            """})
        report = lint(tmp_path, rules=["snapshot-coverage"])
        assert len(report.findings) == 1
        assert "covered by reset" in report.findings[0].message

    def test_covered_component_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            class Gauge(SimComponent):
                _STATE_FIELDS = ("value", "_ticks")

                def __init__(self):
                    self.value = 0
                    self._ticks = 0
                def poke(self):
                    self.value += 1
                    self._ticks += 1
                def reset(self):
                    self.value = 0
                    self._ticks = 0
                def state_dict(self):
                    return {f: getattr(self, f) for f in self._STATE_FIELDS}
                def load_state_dict(self, state):
                    for f in self._STATE_FIELDS:
                        setattr(self, f, state[f])
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []

    def test_string_field_names_count_as_coverage(self, tmp_path):
        # The _STATE_FIELDS idiom: "ptr" covers self._ptr.
        project(tmp_path, {"src/repro/comp.py": """\
            class Walker(SimComponent):
                def __init__(self):
                    self._ptr = 0
                def advance(self):
                    self._ptr += 1
                def reset(self):
                    self._ptr = 0
                def state_dict(self):
                    return {"ptr": self._ptr}
                def load_state_dict(self, state):
                    self._ptr = state["ptr"]
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []

    def test_init_only_attrs_are_configuration(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            class Sized(SimComponent):
                def __init__(self, n):
                    self.capacity = n  # never reassigned: config
                def state_dict(self):
                    return {}
                def load_state_dict(self, state):
                    pass
                def reset(self):
                    pass
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []

    def test_ephemeral_waiver_suppresses(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            class Cached(SimComponent):
                def __init__(self):
                    self._derived = None  # lint: ephemeral
                def warm(self):
                    self._derived = 1
                def state_dict(self):
                    return {}
                def load_state_dict(self, state):
                    pass
                def reset(self):
                    pass
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []

    def test_mutating_method_calls_count_as_mutation(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            class Bag(SimComponent):
                def __init__(self):
                    self.items = []
                def put(self, x):
                    self.items.append(x)
                def state_dict(self):
                    return {}
                def load_state_dict(self, state):
                    pass
                def reset(self):
                    self.items.clear()
            """})
        report = lint(tmp_path, rules=["snapshot-coverage"])
        assert len(report.findings) == 1
        assert "Bag.items" in report.findings[0].message

    def test_transitive_helper_coverage(self, tmp_path):
        # reset() delegating to clear() still covers the attribute.
        project(tmp_path, {"src/repro/comp.py": """\
            class Buffer(SimComponent):
                def __init__(self):
                    self.entries = []
                def put(self, x):
                    self.entries.append(x)
                def clear(self):
                    self.entries = []
                def reset(self):
                    self.clear()
                def state_dict(self):
                    return {"entries": list(self.entries)}
                def load_state_dict(self, state):
                    self.entries = list(state["entries"])
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []

    def test_cross_file_inherited_protocol(self, tmp_path):
        # Child inherits Base's vars(self)-based snapshot: covered.
        # Orphan inherits a snapshot that names only Base's fields: not.
        files = {
            "src/repro/base.py": """\
                class DynamicBase(SimComponent):
                    def state_dict(self):
                        return dict(vars(self))
                    def load_state_dict(self, state):
                        self.__dict__.update(state)
                    def reset(self):
                        for key in vars(self):
                            setattr(self, key, 0)

                class NarrowBase(SimComponent):
                    def __init__(self):
                        self.x = 0
                    def tick(self):
                        self.x += 1
                    def state_dict(self):
                        return {"x": self.x}
                    def load_state_dict(self, state):
                        self.x = state["x"]
                    def reset(self):
                        self.x = 0
                """,
            "src/repro/child.py": """\
                from repro.base import DynamicBase, NarrowBase

                class Child(DynamicBase):
                    def __init__(self):
                        self.score = 0
                    def bump(self):
                        self.score += 1

                class Orphan(NarrowBase):
                    def __init__(self):
                        super().__init__()
                        self.extra = 0
                    def bump(self):
                        self.extra += 1
                """,
        }
        project(tmp_path, files)
        report = lint(tmp_path, rules=["snapshot-coverage"])
        assert len(report.findings) == 1
        f = report.findings[0]
        assert "Orphan.extra" in f.message
        assert f.path == "src/repro/child.py"

    def test_non_components_are_ignored(self, tmp_path):
        project(tmp_path, {"src/repro/plain.py": """\
            class Helper:
                def __init__(self):
                    self.n = 0
                def bump(self):
                    self.n += 1
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []


# ======================================================================
# determinism
# ======================================================================
class TestDeterminism:
    def test_forbidden_idioms_on_simulation_path(self, tmp_path):
        project(tmp_path, {"src/repro/cpu/mod.py": """\
            import os
            import random
            import time

            def f(pages):
                t = time.time()
                knob = os.getenv("KNOB")
                other = os.environ.get("OTHER")
                r = random.random()
                h = hash("label")
                for p in {1, 2, 3}:
                    pages.append(p)
                return t, knob, other, r, h
            """})
        report = lint(tmp_path, rules=["determinism"])
        messages = " | ".join(f.message for f in report.findings)
        assert len(report.findings) == 6
        assert "time.time" in messages
        assert "os.getenv" in messages
        assert "os.environ" in messages
        assert "random.random" in messages
        assert "hash()" in messages
        assert "set literal" in messages

    def test_seeded_rng_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/cpu/mod.py": """\
            import random

            def f():
                rng = random.Random(42)
                return rng.random()
            """})
        assert lint(tmp_path, rules=["determinism"]).findings == []

    def test_unseeded_random_constructor_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/cpu/mod.py": """\
            import random

            def f():
                return random.Random()
            """})
        report = lint(tmp_path, rules=["determinism"])
        assert len(report.findings) == 1
        assert "without a seed" in report.findings[0].message

    def test_outside_determinism_paths_is_exempt(self, tmp_path):
        project(tmp_path, {"src/repro/tools/mod.py": """\
            import time

            def f():
                return time.time()
            """})
        assert lint(tmp_path, rules=["determinism"]).findings == []

    def test_env_read_in_env_ok_path_is_policy(self, tmp_path):
        # src/repro/cpu/config.py is determinism-scoped but env-exempt.
        project(tmp_path, {"src/repro/cpu/config.py": """\
            import os

            def knob():
                return os.environ.get("REPRO_KNOB", "0")
            """})
        assert lint(tmp_path, rules=["determinism"]).findings == []

    def test_allow_waiver_suppresses(self, tmp_path):
        project(tmp_path, {"src/repro/cpu/mod.py": """\
            import os

            def capacity():
                # lint: allow[determinism]
                return int(os.environ.get("CAP", "6"))
            """})
        assert lint(tmp_path, rules=["determinism"]).findings == []


# ======================================================================
# hot-loop
# ======================================================================
class TestHotLoop:
    def test_allocation_inside_fence_is_error(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def run(items, out):
                # lint: hot-begin
                for x in items:
                    out.append([x, x + 1])
                # lint: hot-end
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.severity == ERROR
        assert "list display" in f.message

    def test_repeated_attr_chain_is_warning(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            class Sim:
                def run(self, items):
                    total = 0
                    # lint: hot-begin
                    for x in items:
                        total += self.stats.hits
                        total -= self.stats.hits
                    # lint: hot-end
                    return total
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.severity == WARNING
        assert "self.stats.hits" in f.message

    def test_module_global_read_in_fenced_loop(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            PENALTY = 15.0

            def run(items):
                total = 0.0
                # lint: hot-begin
                for x in items:
                    total += PENALTY
                # lint: hot-end
                return total
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert len(report.findings) == 1
        assert "'PENALTY'" in report.findings[0].message

    def test_hoisted_version_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            PENALTY = 15.0

            def run(items):
                penalty = PENALTY
                total = 0.0
                # lint: hot-begin
                for x in items:
                    total += penalty
                # lint: hot-end
                return total
            """})
        assert lint(tmp_path, rules=["hot-loop"]).findings == []

    def test_outside_fence_is_not_checked(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            PENALTY = 15.0

            def run(items):
                out = []
                for x in items:
                    out.append([x, PENALTY])
                return out
            """})
        assert lint(tmp_path, rules=["hot-loop"]).findings == []

    def test_fenced_path_without_fence_is_error(self, tmp_path):
        project(tmp_path, {"src/repro/cpu/simulator.py": """\
            def run(items):
                return sum(items)
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert len(report.findings) == 1
        assert "fenced-paths" in report.findings[0].message

    def test_unbalanced_fence_is_reported(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def run(items):
                # lint: hot-begin
                return sum(items)
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert any("never closed" in f.message for f in report.findings)

    def test_unknown_directive_is_reported(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            X = 1  # lint: hotbegin
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert len(report.findings) == 1
        assert "unknown lint directive" in report.findings[0].message


# ======================================================================
# pickle-safety
# ======================================================================
class TestPickleSafety:
    def test_unpicklable_boundary_args_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            from multiprocessing import Process

            def launch(path):
                def helper(x):
                    return x

                p = Process(target=lambda: 1,
                            args=(open(path), helper))
                return p
            """})
        report = lint(tmp_path, rules=["pickle-safety"])
        messages = " | ".join(f.message for f in report.findings)
        assert len(report.findings) == 3
        assert "lambda" in messages
        assert "open() handle" in messages
        assert "'helper'" in messages

    def test_module_level_target_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            from multiprocessing import Process

            def work(n):
                return n * 2

            def launch():
                return Process(target=work, args=(3,))
            """})
        assert lint(tmp_path, rules=["pickle-safety"]).findings == []

    def test_non_boundary_calls_are_ignored(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def apply(fn):
                return fn()

            def run():
                return apply(lambda: 1)
            """})
        assert lint(tmp_path, rules=["pickle-safety"]).findings == []


# ======================================================================
# Engine: config, cache, output formats, exit codes
# ======================================================================
CLEAN = {"src/repro/mod.py": "X = 1\n"}
DIRTY = {"src/repro/mod.py": """\
    def run(items, out):
        # lint: hot-begin
        for x in items:
            out.append([x])
        # lint: hot-end
    """}


class TestEngine:
    def test_clean_tree_empty_report(self, tmp_path):
        project(tmp_path, CLEAN)
        report = lint(tmp_path)
        assert report.findings == []
        assert report.files_scanned == 1
        assert not report.failed(WARNING)

    def test_rule_selection(self, tmp_path):
        project(tmp_path, DIRTY)
        assert rules_hit(lint(tmp_path)) == ["hot-loop"]
        assert lint(tmp_path, rules=["determinism"]).findings == []
        with pytest.raises(ValueError, match="unknown rule"):
            lint(tmp_path, rules=["nope"])

    def test_unknown_config_key_rejected(self, tmp_path):
        project(tmp_path, CLEAN,
                pyproject="[tool.repro.lint]\nbogus = ['x']\n")
        with pytest.raises(ValueError, match="bogus"):
            load_config(tmp_path)

    def test_config_table_overrides(self, tmp_path):
        project(tmp_path, {"src/repro/other.py": "import time\n"
                                                 "t = time.time()\n"},
                pyproject="[tool.repro.lint]\n"
                          "determinism-paths = ['src/repro']\n"
                          "fenced-paths = []\n")
        report = lint(tmp_path)
        assert rules_hit(report) == ["determinism"]

    def test_explicit_paths_override_config(self, tmp_path):
        project(tmp_path, dict(DIRTY, **{
            "scripts/helper.py": "Y = 2\n"}))
        report = run_lint(paths=[tmp_path / "scripts"], root=tmp_path,
                          use_cache=False)
        assert report.files_scanned == 1
        assert report.findings == []

    def test_missing_path_raises(self, tmp_path):
        project(tmp_path, CLEAN)
        with pytest.raises(FileNotFoundError):
            run_lint(paths=[tmp_path / "no/such/dir"], root=tmp_path,
                     use_cache=False)

    def test_syntax_error_becomes_finding(self, tmp_path):
        project(tmp_path, {"src/repro/bad.py": "def broken(:\n"})
        report = lint(tmp_path)
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.rule == "parse" and f.severity == ERROR

    def test_cache_roundtrip_and_invalidation(self, tmp_path):
        project(tmp_path, dict(DIRTY, **CLEAN,
                               **{"src/repro/extra.py": "Z = 3\n"}))
        first = run_lint(root=tmp_path)
        assert first.cache_hits == 0
        assert (tmp_path / ".repro-lint-cache.json").is_file()

        second = run_lint(root=tmp_path)
        assert second.cache_hits == second.files_scanned == 2
        assert [f.message for f in second.findings] == \
            [f.message for f in first.findings]

        (tmp_path / "src/repro/extra.py").write_text("Z = 4\n")
        third = run_lint(root=tmp_path)
        assert third.cache_hits == 1

    def test_findings_are_sorted_and_stable(self, tmp_path):
        project(tmp_path, {
            "src/repro/cpu/b.py": "import time\nt = time.time()\n",
            "src/repro/cpu/a.py": "import time\nu = time.time()\n",
        })
        report = lint(tmp_path)
        paths = [f.path for f in report.findings]
        assert paths == sorted(paths)


class TestCli:
    def test_json_schema_and_exit_zero(self, tmp_path, capsys):
        project(tmp_path, CLEAN)
        rc = lint_main(["--root", str(tmp_path), "--format", "json",
                        "--no-cache"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["version"] == 1
        assert payload["findings"] == []
        assert payload["counts"] == {"error": 0, "warning": 0}
        assert payload["files_scanned"] == 1
        assert payload["cache_hits"] == 0

    def test_findings_exit_nonzero_with_locations(self, tmp_path, capsys):
        project(tmp_path, DIRTY)
        rc = lint_main(["--root", str(tmp_path), "--format", "json",
                        "--no-cache"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        (f,) = payload["findings"]
        assert set(f) == {"rule", "path", "line", "col", "message",
                          "severity"}
        assert f["path"] == "src/repro/mod.py"
        assert f["line"] == 4

    def test_fail_on_error_passes_warnings(self, tmp_path, capsys):
        project(tmp_path, {"src/repro/mod.py": """\
            class Sim:
                def run(self, items):
                    total = 0
                    # lint: hot-begin
                    for x in items:
                        total += self.stats.hits + self.stats.hits
                    # lint: hot-end
                    return total
            """})
        root = str(tmp_path)
        assert lint_main(["--root", root, "--no-cache"]) == 1
        capsys.readouterr()
        assert lint_main(["--root", root, "--no-cache",
                          "--fail-on", "error"]) == 0

    def test_usage_error_exit_two(self, tmp_path, capsys):
        project(tmp_path, CLEAN)
        rc = lint_main(["--root", str(tmp_path), "--no-cache",
                        "no/such/path"])
        assert rc == 2
        assert "repro lint:" in capsys.readouterr().err

    def test_text_format_summary_line(self, tmp_path, capsys):
        project(tmp_path, DIRTY)
        lint_main(["--root", str(tmp_path), "--no-cache"])
        out = capsys.readouterr().out.strip().splitlines()
        assert out[0].startswith("src/repro/mod.py:4:")
        assert out[-1].endswith("in 1 file(s) (0 cached)")


# ======================================================================
# async-safety
# ======================================================================
ASYNC_PYPROJECT = """\
[project]
name = 'fixture'
[tool.repro.lint]
async-paths = ['src/repro/svc.py']
"""


class TestAsyncSafety:
    def test_direct_blocking_call_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/svc.py": """\
            import time

            async def pump():
                time.sleep(0.1)
            """}, pyproject=ASYNC_PYPROJECT)
        report = lint(tmp_path, rules=["async-safety"])
        assert len(report.findings) == 1
        f = report.findings[0]
        assert "time.sleep" in f.message and "pump" in f.message
        assert f.path == "src/repro/svc.py" and f.line == 4

    def test_awaiting_twin_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/svc.py": """\
            import asyncio

            async def pump():
                await asyncio.sleep(0.1)
            """}, pyproject=ASYNC_PYPROJECT)
        assert lint(tmp_path, rules=["async-safety"]).findings == []

    def test_outside_async_paths_not_reported(self, tmp_path):
        project(tmp_path, {"src/repro/other.py": """\
            import time

            async def pump():
                time.sleep(0.1)
            """}, pyproject=ASYNC_PYPROJECT)
        assert lint(tmp_path, rules=["async-safety"]).findings == []

    def test_transitive_blocking_anchored_at_first_hop(self, tmp_path):
        project(tmp_path, {
            "src/repro/helper.py": """\
                import time

                def flush():
                    time.sleep(1.0)
                """,
            "src/repro/svc.py": """\
                from repro import helper

                async def pump():
                    helper.flush()
                """,
        }, pyproject=ASYNC_PYPROJECT)
        report = lint(tmp_path, rules=["async-safety"])
        assert len(report.findings) == 1
        f = report.findings[0]
        # Anchored at the call edge inside the coroutine, not at the
        # blocking site in the other file.
        assert f.path == "src/repro/svc.py" and f.line == 4
        assert "time.sleep" in f.message and "flush" in f.message

    def test_allow_waiver_suppresses(self, tmp_path):
        project(tmp_path, {
            "src/repro/helper.py": """\
                import time

                def flush():
                    time.sleep(1.0)
                """,
            "src/repro/svc.py": """\
                from repro import helper

                async def pump():
                    helper.flush()  # lint: allow[async-safety]
                """,
        }, pyproject=ASYNC_PYPROJECT)
        assert lint(tmp_path, rules=["async-safety"]).findings == []

    def test_lambda_signal_handler_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/svc.py": """\
            import signal

            def install(loop, stop):
                loop.add_signal_handler(
                    signal.SIGINT, lambda: stop.set())
            """}, pyproject=ASYNC_PYPROJECT)
        report = lint(tmp_path, rules=["async-safety"])
        assert any("lambda" in f.message for f in report.findings)

    def test_blocking_signal_handler_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/svc.py": """\
            import signal
            import time

            class Stop:
                def slow(self, signum=None):
                    time.sleep(1.0)

            def install(loop, stop):
                loop.add_signal_handler(
                    signal.SIGINT, stop.slow, signal.SIGINT)
            """}, pyproject=ASYNC_PYPROJECT)
        report = lint(tmp_path, rules=["async-safety"])
        assert any("signal handler" in f.message
                   and "time.sleep" in f.message
                   for f in report.findings)

    def test_flag_set_signal_handler_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/svc.py": """\
            import signal
            import threading

            class Stop:
                def __init__(self):
                    self._event = threading.Event()

                def request(self, signum=None):
                    self._event.set()

            def install(loop, stop):
                loop.add_signal_handler(
                    signal.SIGINT, stop.request, signal.SIGINT)
            """}, pyproject=ASYNC_PYPROJECT)
        assert lint(tmp_path, rules=["async-safety"]).findings == []

    def test_await_under_sync_lock_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/svc.py": """\
            import asyncio
            import threading

            class Pump:
                def __init__(self):
                    self._lock = threading.Lock()

                async def run(self):
                    with self._lock:
                        await asyncio.sleep(0)
            """}, pyproject=ASYNC_PYPROJECT)
        report = lint(tmp_path, rules=["async-safety"])
        assert any("synchronous lock" in f.message
                   for f in report.findings)


# ======================================================================
# event-schema
# ======================================================================
EVENT_PYPROJECT = """\
[project]
name = 'fixture'
[tool.repro.lint]
event-schema-table = 'src/repro/svc.py::EVENT_SCHEMA'
event-consumer-paths = ['src/repro/svc.py', 'src/repro/consume.py']
event-exhaustive-consumers = ['summarize']
"""

EVENT_TABLE = """\
EVENT_SCHEMA = {
    "begin": {"required": ("total",), "optional": ("run_id",)},
    "end": {"required": ("status",)},
}
"""


class TestEventSchema:
    def lint_events(self, tmp_path, svc_extra="", consume=None):
        files = {"src/repro/svc.py":
                 EVENT_TABLE + textwrap.dedent(svc_extra)}
        if consume is not None:
            files["src/repro/consume.py"] = consume
        project(tmp_path, files, pyproject=EVENT_PYPROJECT)
        return lint(tmp_path, rules=["event-schema"])

    def test_conforming_emits_are_clean(self, tmp_path):
        report = self.lint_events(tmp_path, """\

            def run(emit):
                emit("begin", total=3, run_id="r1")
                emit("end", status="ok")
            """)
        assert report.findings == []

    def test_unknown_kind_flagged(self, tmp_path):
        report = self.lint_events(tmp_path, """\

            def run(emit):
                emit("bogus", total=3)
            """)
        assert len(report.findings) == 1
        assert "unknown event kind 'bogus'" in report.findings[0].message

    def test_missing_required_key_flagged(self, tmp_path):
        report = self.lint_events(tmp_path, """\

            def run(emit):
                emit("begin", run_id="r1")
            """)
        assert len(report.findings) == 1
        assert "missing required key(s): total" in \
            report.findings[0].message

    def test_undeclared_key_flagged(self, tmp_path):
        report = self.lint_events(tmp_path, """\

            def run(emit):
                emit("begin", total=1, color="red")
            """)
        assert len(report.findings) == 1
        assert "undeclared key(s): color" in report.findings[0].message

    def test_splat_skips_required_check(self, tmp_path):
        report = self.lint_events(tmp_path, """\

            def run(emit, info):
                emit("begin", **info)
            """)
        assert report.findings == []

    def test_consumer_unknown_kind_flagged(self, tmp_path):
        report = self.lint_events(tmp_path, consume="""\
            def dispatch(event):
                kind = event.get("event")
                if kind == "begun":
                    return 1
                return 0
            """)
        assert len(report.findings) == 1
        assert "dispatches on event kind 'begun'" in \
            report.findings[0].message

    def test_exhaustive_consumer_missing_kind_flagged(self, tmp_path):
        report = self.lint_events(tmp_path, consume="""\
            def summarize(events):
                for e in events:
                    k = e["event"]
                    if k == "begin":
                        pass
            """)
        assert len(report.findings) == 1
        assert "missing: end" in report.findings[0].message

    def test_non_literal_table_is_schema_error(self, tmp_path):
        project(tmp_path, {
            "src/repro/svc.py": "EVENT_SCHEMA = make_schema()\n"},
            pyproject=EVENT_PYPROJECT)
        report = lint(tmp_path, rules=["event-schema"])
        assert len(report.findings) == 1
        assert "not a literal dict" in report.findings[0].message

    def test_rule_inert_without_table_in_scan_set(self, tmp_path):
        project(tmp_path, {"src/repro/consume.py": """\
            def run(emit):
                emit("whatever", x=1)
            """},
            pyproject="[project]\nname = 'fixture'\n"
                      "[tool.repro.lint]\n"
                      "event-schema-table = "
                      "'src/repro/absent.py::EVENT_SCHEMA'\n"
                      "event-consumer-paths = ['src/repro/consume.py']\n")
        assert lint(tmp_path, rules=["event-schema"]).findings == []


# ======================================================================
# boundary-transport
# ======================================================================
class TestBoundaryTransport:
    def test_set_literal_field_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def send(q):
                q.put(WorkUnit(index=0, attempt=1, point={1, 2}))
            """})
        report = lint(tmp_path, rules=["boundary-transport"])
        assert len(report.findings) == 1
        f = report.findings[0]
        assert "field 'point'" in f.message and "a set" in f.message

    def test_local_dataflow_traces_assignment(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def send(q):
                blob = b"raw"
                q.put(WorkOutcome(0, 1, "ok", stats_state=blob))
            """})
        report = lint(tmp_path, rules=["boundary-transport"])
        assert len(report.findings) == 1
        assert "bytes literal" in report.findings[0].message
        assert "assigned to 'blob' at line 2" in \
            report.findings[0].message

    def test_path_positional_arg_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            from pathlib import Path

            def send(q):
                q.put(WorkUnit(Path("x"), 1, {}))
            """})
        report = lint(tmp_path, rules=["boundary-transport"])
        assert len(report.findings) == 1
        assert "positional arg 0" in report.findings[0].message

    def test_json_safe_twin_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def send(q):
                q.put(WorkUnit(index=1, attempt=2,
                               point={"label": "a", "n": 3}))
            """})
        assert lint(tmp_path,
                    rules=["boundary-transport"]).findings == []

    def test_non_transport_calls_ignored(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def build():
                return Other(frozenset({1}), lambda: 2)
            """})
        assert lint(tmp_path,
                    rules=["boundary-transport"]).findings == []


# ======================================================================
# error-taxonomy
# ======================================================================
TAXONOMY_PYPROJECT = """\
[project]
name = 'fixture'
[tool.repro.lint]
taxonomy-paths = ['src/repro']
"""

TAXONOMY_ERRORS = """\
class ExperimentError(Exception):
    pass


class GoodError(ExperimentError, ValueError):
    pass
"""


class TestErrorTaxonomy:
    def lint_tax(self, tmp_path, mod):
        project(tmp_path, {
            "src/repro/errors.py": TAXONOMY_ERRORS,
            "src/repro/mod.py": mod,
        }, pyproject=TAXONOMY_PYPROJECT)
        return lint(tmp_path, rules=["error-taxonomy"])

    def test_builtin_raise_flagged(self, tmp_path):
        report = self.lint_tax(tmp_path, """\
            def bad():
                raise ValueError("nope")
            """)
        assert len(report.findings) == 1
        assert "builtin ValueError" in report.findings[0].message

    def test_taxonomy_mixin_is_clean(self, tmp_path):
        report = self.lint_tax(tmp_path, """\
            from repro.errors import GoodError

            def ok():
                raise GoodError("fine")
            """)
        assert report.findings == []

    def test_foreign_class_flagged(self, tmp_path):
        report = self.lint_tax(tmp_path, """\
            class LocalError(Exception):
                pass

            def bad():
                raise LocalError("nope")
            """)
        assert len(report.findings) == 1
        assert "not a ExperimentError subclass" in \
            report.findings[0].message

    def test_factory_followed_one_hop(self, tmp_path):
        clean = self.lint_tax(tmp_path, """\
            from repro.errors import GoodError

            def make(msg):
                return GoodError(msg)

            def use():
                raise make("x")
            """)
        assert clean.findings == []

    def test_factory_returning_builtin_flagged(self, tmp_path):
        report = self.lint_tax(tmp_path, """\
            def make(msg):
                return ValueError(msg)

            def use():
                raise make("x")
            """)
        assert len(report.findings) == 1
        f = report.findings[0]
        assert "factory make" in f.message and f.line == 2

    def test_exempt_builtins_pass(self, tmp_path):
        report = self.lint_tax(tmp_path, """\
            def todo():
                raise NotImplementedError("later")
            """)
        assert report.findings == []

    def test_swallowed_interrupt_flagged(self, tmp_path):
        report = self.lint_tax(tmp_path, """\
            def guard(task):
                try:
                    task()
                except KeyboardInterrupt:
                    pass
            """)
        assert len(report.findings) == 1
        assert "swallows KeyboardInterrupt" in \
            report.findings[0].message

    def test_reraising_handler_is_clean(self, tmp_path):
        report = self.lint_tax(tmp_path, """\
            def guard(task):
                try:
                    task()
                except KeyboardInterrupt:
                    task = None
                    raise
            """)
        assert report.findings == []

    def test_rule_inert_without_taxonomy_root(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def bad():
                raise ValueError("nope")
            """}, pyproject=TAXONOMY_PYPROJECT)
        assert lint(tmp_path, rules=["error-taxonomy"]).findings == []

    def test_outside_taxonomy_paths_exempt(self, tmp_path):
        # Default taxonomy-paths is src/repro/experiments; a raise
        # elsewhere is out of scope.
        project(tmp_path, {
            "src/repro/errors.py": TAXONOMY_ERRORS,
            "src/repro/mod.py": "def bad():\n"
                                "    raise ValueError('nope')\n",
        })
        assert lint(tmp_path, rules=["error-taxonomy"]).findings == []


# ======================================================================
# crash-ordering
# ======================================================================
class TestCrashOrdering:
    def test_correct_atomic_replace_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            import json
            import os
            import tempfile

            def write(path, data):
                # lint: ordered[atomic-replace]
                fd, tmp = tempfile.mkstemp()
                with os.fdopen(fd, "w") as fh:
                    json.dump(data, fh)
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
                # lint: ordered-end
            """})
        assert lint(tmp_path, rules=["crash-ordering"]).findings == []

    def test_fsync_after_replace_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            import json
            import os
            import tempfile

            def write(path, data):
                # lint: ordered[atomic-replace]
                fd, tmp = tempfile.mkstemp()
                with os.fdopen(fd, "w") as fh:
                    json.dump(data, fh)
                os.replace(tmp, path)
                os.fsync(fd)
                # lint: ordered-end
            """})
        report = lint(tmp_path, rules=["crash-ordering"])
        assert len(report.findings) == 1
        assert "fsyncs after replace" in report.findings[0].message

    def test_missing_fsync_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            import json
            import os
            import tempfile

            def write(path, data):
                # lint: ordered[atomic-replace]
                fd, tmp = tempfile.mkstemp()
                with os.fdopen(fd, "w") as fh:
                    json.dump(data, fh)
                os.replace(tmp, path)
                # lint: ordered-end
            """})
        report = lint(tmp_path, rules=["crash-ordering"])
        assert len(report.findings) == 1
        assert "no fsync call" in report.findings[0].message

    def test_persist_before_append_order(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def resolve(cache, journal, key, record):
                # lint: ordered[persist-before-append]
                cache.put(key, record)
                journal.emit(record)
                # lint: ordered-end
            """})
        assert lint(tmp_path, rules=["crash-ordering"]).findings == []

    def test_append_before_persist_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def resolve(cache, journal, key, record):
                # lint: ordered[persist-before-append]
                journal.emit(record)
                cache.put(key, record)
                # lint: ordered-end
            """})
        report = lint(tmp_path, rules=["crash-ordering"])
        assert len(report.findings) == 1
        assert "before persisting" in report.findings[0].message

    def test_ordered_path_without_region_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": "X = 1\n"},
                pyproject="[project]\nname = 'fixture'\n"
                          "[tool.repro.lint]\n"
                          "ordered-paths = ['src/repro/mod.py']\n")
        report = lint(tmp_path, rules=["crash-ordering"])
        assert len(report.findings) == 1
        assert "contains no '# lint: ordered[...]'" in \
            report.findings[0].message

    def test_unknown_template_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def f():
                # lint: ordered[fancy]
                pass
                # lint: ordered-end
            """})
        report = lint(tmp_path, rules=["crash-ordering"])
        assert len(report.findings) == 1
        assert "unknown ordered template 'fancy'" in \
            report.findings[0].message


# ======================================================================
# dependency-aware cache (the v1 staleness regression)
# ======================================================================
class TestDepAwareCache:
    def test_cross_file_dependency_edit_reanalyzes(self, tmp_path):
        """Editing only base.py must re-analyze child.py: the v1 cache
        keyed on child.py's own bytes and served stale cross-file
        findings."""
        narrow_base = textwrap.dedent("""\
            class NarrowBase(SimComponent):
                def __init__(self):
                    self.x = 0
                def tick(self):
                    self.x += 1
                def state_dict(self):
                    return {"x": self.x}
                def load_state_dict(self, state):
                    self.x = state["x"]
                def reset(self):
                    self.x = 0
            """)
        wide_base = textwrap.dedent("""\
            class NarrowBase(SimComponent):
                def __init__(self):
                    self.x = 0
                def tick(self):
                    self.x += 1
                def state_dict(self):
                    return dict(vars(self))
                def load_state_dict(self, state):
                    self.__dict__.update(state)
                def reset(self):
                    for key in vars(self):
                        setattr(self, key, 0)
            """)
        child = """\
            from repro.base import NarrowBase

            class Orphan(NarrowBase):
                def __init__(self):
                    super().__init__()
                    self.extra = 0
                def bump(self):
                    self.extra += 1
            """
        project(tmp_path, {"src/repro/base.py": narrow_base,
                           "src/repro/child.py": child})
        first = run_lint(root=tmp_path)
        assert any("Orphan.extra" in f.message for f in first.findings)

        warm = run_lint(root=tmp_path)
        assert warm.cache_hits == warm.files_scanned == 2

        # Widen only the base snapshot; child.py's bytes are untouched.
        (tmp_path / "src/repro/base.py").write_text(wide_base)
        third = run_lint(root=tmp_path)
        assert third.cache_hits == 0  # dependency fingerprint moved
        assert third.findings == []

    def test_rule_source_fingerprint_in_cache_key(self, tmp_path,
                                                  monkeypatch):
        import repro.lint.engine as engine_mod

        project(tmp_path, CLEAN)
        run_lint(root=tmp_path)
        assert run_lint(root=tmp_path).cache_hits == 1
        # Simulate an edit to a rule module: the memoized fingerprint
        # changes, so every cached payload must be discarded.
        monkeypatch.setattr(engine_mod, "_RULE_SOURCES_FP", "edited")
        assert run_lint(root=tmp_path).cache_hits == 0


# ======================================================================
# baseline + SARIF + --changed
# ======================================================================
class TestBaseline:
    def test_update_then_suppress(self, tmp_path, capsys):
        project(tmp_path, DIRTY)
        root = str(tmp_path)
        assert lint_main(["--root", root, "--no-cache",
                          "--update-baseline"]) == 0
        baseline = json.loads(
            (tmp_path / ".repro-lint-baseline.json").read_text())
        assert baseline["version"] == 1
        assert len(baseline["entries"]) == 1
        entry = baseline["entries"][0]
        assert set(entry) >= {"fingerprint", "rule", "path", "message",
                              "justification"}
        capsys.readouterr()

        assert lint_main(["--root", root, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "1 baselined finding(s) suppressed" in out

    def test_no_baseline_flag_reports_again(self, tmp_path, capsys):
        project(tmp_path, DIRTY)
        root = str(tmp_path)
        lint_main(["--root", root, "--no-cache", "--update-baseline"])
        assert lint_main(["--root", root, "--no-cache",
                          "--no-baseline"]) == 1

    def test_stale_baseline_detected(self, tmp_path, capsys):
        project(tmp_path, DIRTY)
        root = str(tmp_path)
        lint_main(["--root", root, "--no-cache", "--update-baseline"])
        capsys.readouterr()
        # Fix the violation: the baseline entry now waives nothing.
        (tmp_path / "src/repro/mod.py").write_text("X = 1\n")
        assert lint_main(["--root", root, "--no-cache"]) == 0
        capsys.readouterr()
        assert lint_main(["--root", root, "--no-cache",
                          "--check-baseline"]) == 1
        assert "stale baseline entry" in capsys.readouterr().err

    def test_baseline_is_line_independent(self, tmp_path, capsys):
        project(tmp_path, DIRTY)
        root = str(tmp_path)
        lint_main(["--root", root, "--no-cache", "--update-baseline"])
        # Shift the violation down two lines: same rule+path+message,
        # so the waiver must still apply.
        mod = tmp_path / "src/repro/mod.py"
        mod.write_text("# pad\n# pad\n" + mod.read_text())
        capsys.readouterr()
        assert lint_main(["--root", root, "--no-cache",
                          "--check-baseline"]) == 0


class TestSarif:
    def test_sarif_validates_against_2_1_0_shape(self, tmp_path,
                                                 capsys):
        """Hand-rolled structural validation of the SARIF 2.1.0 log
        (the schema validator dependency is deliberately absent)."""
        project(tmp_path, DIRTY)
        lint_main(["--root", str(tmp_path), "--no-cache",
                   "--format", "sarif"])
        log = json.loads(capsys.readouterr().out)

        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        assert isinstance(log["runs"], list) and len(log["runs"]) == 1
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rules = driver["rules"]
        assert all(set(r) >= {"id", "shortDescription"} for r in rules)
        assert all(isinstance(r["shortDescription"]["text"], str)
                   for r in rules)
        ids = [r["id"] for r in rules]
        assert len(ids) == len(set(ids))  # deduplicated

        assert run["results"], "fixture must produce findings"
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            assert result["level"] in ("error", "warning", "note")
            assert result["message"]["text"]
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"] == "src/repro/mod.py"
            assert loc["region"]["startLine"] >= 1
            assert loc["region"]["startColumn"] >= 1

    def test_output_file_keeps_text_summary_on_stdout(self, tmp_path,
                                                      capsys):
        project(tmp_path, DIRTY)
        out_file = tmp_path / "lint.sarif"
        lint_main(["--root", str(tmp_path), "--no-cache",
                   "--format", "sarif", "--output", str(out_file)])
        assert json.loads(out_file.read_text())["version"] == "2.1.0"
        assert "file(s)" in capsys.readouterr().out


class TestChangedOnly:
    def git(self, tmp_path, *args):
        import subprocess
        subprocess.run(["git", *args], cwd=tmp_path, check=True,
                       capture_output=True)

    def test_changed_narrows_to_edited_files(self, tmp_path, capsys):
        project(tmp_path, {
            "src/repro/cpu/a.py": "import time\nt = time.time()\n",
            "src/repro/cpu/b.py": "Y = 1\n",
        })
        self.git(tmp_path, "init", "-q")
        self.git(tmp_path, "config", "user.email", "t@example.com")
        self.git(tmp_path, "config", "user.name", "t")
        self.git(tmp_path, "add", ".")
        self.git(tmp_path, "commit", "-qm", "seed")
        root = str(tmp_path)

        # Warm the cache so unchanged files are not re-analyzed.
        lint_main(["--root", root])
        capsys.readouterr()

        # Edit only b.py; a.py's pre-existing finding must drop out of
        # a --changed report while b.py's new one stays.
        (tmp_path / "src/repro/cpu/b.py").write_text(
            "import time\nu = time.time()\n")
        rc = lint_main(["--root", root, "--changed",
                        "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert [f["path"] for f in payload["findings"]] == \
            ["src/repro/cpu/b.py"]

    def test_outside_git_falls_back_to_full_report(self, tmp_path,
                                                   capsys):
        project(tmp_path, DIRTY)
        rc = lint_main(["--root", str(tmp_path), "--no-cache",
                        "--changed", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["findings"]  # full report, not an empty one


# ======================================================================
# The real tree
# ======================================================================
class TestRealTree:
    def test_repository_is_lint_clean(self):
        """The blocking CI invariant: HEAD has zero findings."""
        report = run_lint(root=REPO_ROOT, use_cache=False)
        assert report.findings == [], "\n".join(
            f"{f.path}:{f.line}: [{f.rule}] {f.message}"
            for f in report.findings)
        assert report.files_scanned > 50

    def test_every_rule_registered(self):
        assert rule_names() == [
            "async-safety", "boundary-transport", "crash-ordering",
            "determinism", "error-taxonomy", "event-schema",
            "hot-loop", "pickle-safety", "snapshot-coverage",
        ]

    def test_repo_config_matches_defaults(self):
        """[tool.repro.lint] restates the defaults explicitly — drift
        between the table and config.py would silently change scope."""
        assert load_config(REPO_ROOT) == LintConfig()
