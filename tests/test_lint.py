"""The ``repro lint`` static-analysis suite (docs/LINTING.md).

Each rule gets a positive (violating), negative (clean), and waived
fixture tree; the engine sections cover the JSON schema, exit codes,
rule selection, and the per-file result cache.  The final section runs
the real linter over the real ``src/repro`` tree — the same blocking
check CI runs — so a regression anywhere in the repo fails here first.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.cli import main as lint_main
from repro.lint.config import LintConfig, load_config
from repro.lint.findings import ERROR, WARNING
from repro.lint.registry import rule_names

REPO_ROOT = Path(__file__).resolve().parents[1]


def project(tmp_path, files, pyproject="[project]\nname = 'fixture'\n"):
    """Materialize a fixture project tree under ``tmp_path``."""
    (tmp_path / "pyproject.toml").write_text(pyproject)
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def lint(tmp_path, **kwargs):
    kwargs.setdefault("use_cache", False)
    return run_lint(root=tmp_path, **kwargs)


def rules_hit(report):
    return sorted({f.rule for f in report.findings})


# ======================================================================
# snapshot-coverage
# ======================================================================
class TestSnapshotCoverage:
    def test_uncovered_mutable_attr_is_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            from repro.cpu.component import SimComponent

            class Counter(SimComponent):
                def __init__(self):
                    self.count = 0
                def bump(self):
                    self.count += 1
                def reset(self):
                    self.count = 0
                def state_dict(self):
                    return {}
                def load_state_dict(self, state):
                    pass
            """})
        report = lint(tmp_path, rules=["snapshot-coverage"])
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.severity == ERROR
        assert "Counter.count" in f.message
        assert "state_dict, load_state_dict" in f.message
        assert "reset" not in f.message.split("covered by")[1]

    def test_missing_reset_coverage_is_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            class Gauge(SimComponent):
                def __init__(self):
                    self.value = 0
                def poke(self):
                    self.value += 1
                def reset(self):
                    pass
                def state_dict(self):
                    return {"value": self.value}
                def load_state_dict(self, state):
                    self.value = state["value"]
            """})
        report = lint(tmp_path, rules=["snapshot-coverage"])
        assert len(report.findings) == 1
        assert "covered by reset" in report.findings[0].message

    def test_covered_component_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            class Gauge(SimComponent):
                _STATE_FIELDS = ("value", "_ticks")

                def __init__(self):
                    self.value = 0
                    self._ticks = 0
                def poke(self):
                    self.value += 1
                    self._ticks += 1
                def reset(self):
                    self.value = 0
                    self._ticks = 0
                def state_dict(self):
                    return {f: getattr(self, f) for f in self._STATE_FIELDS}
                def load_state_dict(self, state):
                    for f in self._STATE_FIELDS:
                        setattr(self, f, state[f])
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []

    def test_string_field_names_count_as_coverage(self, tmp_path):
        # The _STATE_FIELDS idiom: "ptr" covers self._ptr.
        project(tmp_path, {"src/repro/comp.py": """\
            class Walker(SimComponent):
                def __init__(self):
                    self._ptr = 0
                def advance(self):
                    self._ptr += 1
                def reset(self):
                    self._ptr = 0
                def state_dict(self):
                    return {"ptr": self._ptr}
                def load_state_dict(self, state):
                    self._ptr = state["ptr"]
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []

    def test_init_only_attrs_are_configuration(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            class Sized(SimComponent):
                def __init__(self, n):
                    self.capacity = n  # never reassigned: config
                def state_dict(self):
                    return {}
                def load_state_dict(self, state):
                    pass
                def reset(self):
                    pass
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []

    def test_ephemeral_waiver_suppresses(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            class Cached(SimComponent):
                def __init__(self):
                    self._derived = None  # lint: ephemeral
                def warm(self):
                    self._derived = 1
                def state_dict(self):
                    return {}
                def load_state_dict(self, state):
                    pass
                def reset(self):
                    pass
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []

    def test_mutating_method_calls_count_as_mutation(self, tmp_path):
        project(tmp_path, {"src/repro/comp.py": """\
            class Bag(SimComponent):
                def __init__(self):
                    self.items = []
                def put(self, x):
                    self.items.append(x)
                def state_dict(self):
                    return {}
                def load_state_dict(self, state):
                    pass
                def reset(self):
                    self.items.clear()
            """})
        report = lint(tmp_path, rules=["snapshot-coverage"])
        assert len(report.findings) == 1
        assert "Bag.items" in report.findings[0].message

    def test_transitive_helper_coverage(self, tmp_path):
        # reset() delegating to clear() still covers the attribute.
        project(tmp_path, {"src/repro/comp.py": """\
            class Buffer(SimComponent):
                def __init__(self):
                    self.entries = []
                def put(self, x):
                    self.entries.append(x)
                def clear(self):
                    self.entries = []
                def reset(self):
                    self.clear()
                def state_dict(self):
                    return {"entries": list(self.entries)}
                def load_state_dict(self, state):
                    self.entries = list(state["entries"])
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []

    def test_cross_file_inherited_protocol(self, tmp_path):
        # Child inherits Base's vars(self)-based snapshot: covered.
        # Orphan inherits a snapshot that names only Base's fields: not.
        files = {
            "src/repro/base.py": """\
                class DynamicBase(SimComponent):
                    def state_dict(self):
                        return dict(vars(self))
                    def load_state_dict(self, state):
                        self.__dict__.update(state)
                    def reset(self):
                        for key in vars(self):
                            setattr(self, key, 0)

                class NarrowBase(SimComponent):
                    def __init__(self):
                        self.x = 0
                    def tick(self):
                        self.x += 1
                    def state_dict(self):
                        return {"x": self.x}
                    def load_state_dict(self, state):
                        self.x = state["x"]
                    def reset(self):
                        self.x = 0
                """,
            "src/repro/child.py": """\
                from repro.base import DynamicBase, NarrowBase

                class Child(DynamicBase):
                    def __init__(self):
                        self.score = 0
                    def bump(self):
                        self.score += 1

                class Orphan(NarrowBase):
                    def __init__(self):
                        super().__init__()
                        self.extra = 0
                    def bump(self):
                        self.extra += 1
                """,
        }
        project(tmp_path, files)
        report = lint(tmp_path, rules=["snapshot-coverage"])
        assert len(report.findings) == 1
        f = report.findings[0]
        assert "Orphan.extra" in f.message
        assert f.path == "src/repro/child.py"

    def test_non_components_are_ignored(self, tmp_path):
        project(tmp_path, {"src/repro/plain.py": """\
            class Helper:
                def __init__(self):
                    self.n = 0
                def bump(self):
                    self.n += 1
            """})
        assert lint(tmp_path, rules=["snapshot-coverage"]).findings == []


# ======================================================================
# determinism
# ======================================================================
class TestDeterminism:
    def test_forbidden_idioms_on_simulation_path(self, tmp_path):
        project(tmp_path, {"src/repro/cpu/mod.py": """\
            import os
            import random
            import time

            def f(pages):
                t = time.time()
                knob = os.getenv("KNOB")
                other = os.environ.get("OTHER")
                r = random.random()
                h = hash("label")
                for p in {1, 2, 3}:
                    pages.append(p)
                return t, knob, other, r, h
            """})
        report = lint(tmp_path, rules=["determinism"])
        messages = " | ".join(f.message for f in report.findings)
        assert len(report.findings) == 6
        assert "time.time" in messages
        assert "os.getenv" in messages
        assert "os.environ" in messages
        assert "random.random" in messages
        assert "hash()" in messages
        assert "set literal" in messages

    def test_seeded_rng_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/cpu/mod.py": """\
            import random

            def f():
                rng = random.Random(42)
                return rng.random()
            """})
        assert lint(tmp_path, rules=["determinism"]).findings == []

    def test_unseeded_random_constructor_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/cpu/mod.py": """\
            import random

            def f():
                return random.Random()
            """})
        report = lint(tmp_path, rules=["determinism"])
        assert len(report.findings) == 1
        assert "without a seed" in report.findings[0].message

    def test_outside_determinism_paths_is_exempt(self, tmp_path):
        project(tmp_path, {"src/repro/tools/mod.py": """\
            import time

            def f():
                return time.time()
            """})
        assert lint(tmp_path, rules=["determinism"]).findings == []

    def test_env_read_in_env_ok_path_is_policy(self, tmp_path):
        # src/repro/cpu/config.py is determinism-scoped but env-exempt.
        project(tmp_path, {"src/repro/cpu/config.py": """\
            import os

            def knob():
                return os.environ.get("REPRO_KNOB", "0")
            """})
        assert lint(tmp_path, rules=["determinism"]).findings == []

    def test_allow_waiver_suppresses(self, tmp_path):
        project(tmp_path, {"src/repro/cpu/mod.py": """\
            import os

            def capacity():
                # lint: allow[determinism]
                return int(os.environ.get("CAP", "6"))
            """})
        assert lint(tmp_path, rules=["determinism"]).findings == []


# ======================================================================
# hot-loop
# ======================================================================
class TestHotLoop:
    def test_allocation_inside_fence_is_error(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def run(items, out):
                # lint: hot-begin
                for x in items:
                    out.append([x, x + 1])
                # lint: hot-end
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.severity == ERROR
        assert "list display" in f.message

    def test_repeated_attr_chain_is_warning(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            class Sim:
                def run(self, items):
                    total = 0
                    # lint: hot-begin
                    for x in items:
                        total += self.stats.hits
                        total -= self.stats.hits
                    # lint: hot-end
                    return total
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.severity == WARNING
        assert "self.stats.hits" in f.message

    def test_module_global_read_in_fenced_loop(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            PENALTY = 15.0

            def run(items):
                total = 0.0
                # lint: hot-begin
                for x in items:
                    total += PENALTY
                # lint: hot-end
                return total
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert len(report.findings) == 1
        assert "'PENALTY'" in report.findings[0].message

    def test_hoisted_version_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            PENALTY = 15.0

            def run(items):
                penalty = PENALTY
                total = 0.0
                # lint: hot-begin
                for x in items:
                    total += penalty
                # lint: hot-end
                return total
            """})
        assert lint(tmp_path, rules=["hot-loop"]).findings == []

    def test_outside_fence_is_not_checked(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            PENALTY = 15.0

            def run(items):
                out = []
                for x in items:
                    out.append([x, PENALTY])
                return out
            """})
        assert lint(tmp_path, rules=["hot-loop"]).findings == []

    def test_fenced_path_without_fence_is_error(self, tmp_path):
        project(tmp_path, {"src/repro/cpu/simulator.py": """\
            def run(items):
                return sum(items)
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert len(report.findings) == 1
        assert "fenced-paths" in report.findings[0].message

    def test_unbalanced_fence_is_reported(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def run(items):
                # lint: hot-begin
                return sum(items)
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert any("never closed" in f.message for f in report.findings)

    def test_unknown_directive_is_reported(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            X = 1  # lint: hotbegin
            """})
        report = lint(tmp_path, rules=["hot-loop"])
        assert len(report.findings) == 1
        assert "unknown lint directive" in report.findings[0].message


# ======================================================================
# pickle-safety
# ======================================================================
class TestPickleSafety:
    def test_unpicklable_boundary_args_flagged(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            from multiprocessing import Process

            def launch(path):
                def helper(x):
                    return x

                p = Process(target=lambda: 1,
                            args=(open(path), helper))
                return p
            """})
        report = lint(tmp_path, rules=["pickle-safety"])
        messages = " | ".join(f.message for f in report.findings)
        assert len(report.findings) == 3
        assert "lambda" in messages
        assert "open() handle" in messages
        assert "'helper'" in messages

    def test_module_level_target_is_clean(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            from multiprocessing import Process

            def work(n):
                return n * 2

            def launch():
                return Process(target=work, args=(3,))
            """})
        assert lint(tmp_path, rules=["pickle-safety"]).findings == []

    def test_non_boundary_calls_are_ignored(self, tmp_path):
        project(tmp_path, {"src/repro/mod.py": """\
            def apply(fn):
                return fn()

            def run():
                return apply(lambda: 1)
            """})
        assert lint(tmp_path, rules=["pickle-safety"]).findings == []


# ======================================================================
# Engine: config, cache, output formats, exit codes
# ======================================================================
CLEAN = {"src/repro/mod.py": "X = 1\n"}
DIRTY = {"src/repro/mod.py": """\
    def run(items, out):
        # lint: hot-begin
        for x in items:
            out.append([x])
        # lint: hot-end
    """}


class TestEngine:
    def test_clean_tree_empty_report(self, tmp_path):
        project(tmp_path, CLEAN)
        report = lint(tmp_path)
        assert report.findings == []
        assert report.files_scanned == 1
        assert not report.failed(WARNING)

    def test_rule_selection(self, tmp_path):
        project(tmp_path, DIRTY)
        assert rules_hit(lint(tmp_path)) == ["hot-loop"]
        assert lint(tmp_path, rules=["determinism"]).findings == []
        with pytest.raises(ValueError, match="unknown rule"):
            lint(tmp_path, rules=["nope"])

    def test_unknown_config_key_rejected(self, tmp_path):
        project(tmp_path, CLEAN,
                pyproject="[tool.repro.lint]\nbogus = ['x']\n")
        with pytest.raises(ValueError, match="bogus"):
            load_config(tmp_path)

    def test_config_table_overrides(self, tmp_path):
        project(tmp_path, {"src/repro/other.py": "import time\n"
                                                 "t = time.time()\n"},
                pyproject="[tool.repro.lint]\n"
                          "determinism-paths = ['src/repro']\n"
                          "fenced-paths = []\n")
        report = lint(tmp_path)
        assert rules_hit(report) == ["determinism"]

    def test_explicit_paths_override_config(self, tmp_path):
        project(tmp_path, dict(DIRTY, **{
            "scripts/helper.py": "Y = 2\n"}))
        report = run_lint(paths=[tmp_path / "scripts"], root=tmp_path,
                          use_cache=False)
        assert report.files_scanned == 1
        assert report.findings == []

    def test_missing_path_raises(self, tmp_path):
        project(tmp_path, CLEAN)
        with pytest.raises(FileNotFoundError):
            run_lint(paths=[tmp_path / "no/such/dir"], root=tmp_path,
                     use_cache=False)

    def test_syntax_error_becomes_finding(self, tmp_path):
        project(tmp_path, {"src/repro/bad.py": "def broken(:\n"})
        report = lint(tmp_path)
        assert len(report.findings) == 1
        f = report.findings[0]
        assert f.rule == "parse" and f.severity == ERROR

    def test_cache_roundtrip_and_invalidation(self, tmp_path):
        project(tmp_path, dict(DIRTY, **CLEAN,
                               **{"src/repro/extra.py": "Z = 3\n"}))
        first = run_lint(root=tmp_path)
        assert first.cache_hits == 0
        assert (tmp_path / ".repro-lint-cache.json").is_file()

        second = run_lint(root=tmp_path)
        assert second.cache_hits == second.files_scanned == 2
        assert [f.message for f in second.findings] == \
            [f.message for f in first.findings]

        (tmp_path / "src/repro/extra.py").write_text("Z = 4\n")
        third = run_lint(root=tmp_path)
        assert third.cache_hits == 1

    def test_findings_are_sorted_and_stable(self, tmp_path):
        project(tmp_path, {
            "src/repro/cpu/b.py": "import time\nt = time.time()\n",
            "src/repro/cpu/a.py": "import time\nu = time.time()\n",
        })
        report = lint(tmp_path)
        paths = [f.path for f in report.findings]
        assert paths == sorted(paths)


class TestCli:
    def test_json_schema_and_exit_zero(self, tmp_path, capsys):
        project(tmp_path, CLEAN)
        rc = lint_main(["--root", str(tmp_path), "--format", "json",
                        "--no-cache"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["version"] == 1
        assert payload["findings"] == []
        assert payload["counts"] == {"error": 0, "warning": 0}
        assert payload["files_scanned"] == 1
        assert payload["cache_hits"] == 0

    def test_findings_exit_nonzero_with_locations(self, tmp_path, capsys):
        project(tmp_path, DIRTY)
        rc = lint_main(["--root", str(tmp_path), "--format", "json",
                        "--no-cache"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        (f,) = payload["findings"]
        assert set(f) == {"rule", "path", "line", "col", "message",
                          "severity"}
        assert f["path"] == "src/repro/mod.py"
        assert f["line"] == 4

    def test_fail_on_error_passes_warnings(self, tmp_path, capsys):
        project(tmp_path, {"src/repro/mod.py": """\
            class Sim:
                def run(self, items):
                    total = 0
                    # lint: hot-begin
                    for x in items:
                        total += self.stats.hits + self.stats.hits
                    # lint: hot-end
                    return total
            """})
        root = str(tmp_path)
        assert lint_main(["--root", root, "--no-cache"]) == 1
        capsys.readouterr()
        assert lint_main(["--root", root, "--no-cache",
                          "--fail-on", "error"]) == 0

    def test_usage_error_exit_two(self, tmp_path, capsys):
        project(tmp_path, CLEAN)
        rc = lint_main(["--root", str(tmp_path), "--no-cache",
                        "no/such/path"])
        assert rc == 2
        assert "repro lint:" in capsys.readouterr().err

    def test_text_format_summary_line(self, tmp_path, capsys):
        project(tmp_path, DIRTY)
        lint_main(["--root", str(tmp_path), "--no-cache"])
        out = capsys.readouterr().out.strip().splitlines()
        assert out[0].startswith("src/repro/mod.py:4:")
        assert out[-1].endswith("in 1 file(s) (0 cached)")


# ======================================================================
# The real tree
# ======================================================================
class TestRealTree:
    def test_repository_is_lint_clean(self):
        """The blocking CI invariant: HEAD has zero findings."""
        report = run_lint(root=REPO_ROOT, use_cache=False)
        assert report.findings == [], "\n".join(
            f"{f.path}:{f.line}: [{f.rule}] {f.message}"
            for f in report.findings)
        assert report.files_scanned > 50

    def test_every_rule_registered(self):
        assert rule_names() == ["determinism", "hot-loop",
                                "pickle-safety", "snapshot-coverage"]

    def test_repo_config_matches_defaults(self):
        """[tool.repro.lint] restates the defaults explicitly — drift
        between the table and config.py would silently change scope."""
        assert load_config(REPO_ROOT) == LintConfig()
