"""Unit tests for Algorithm 1 (Bundle entry-point identification)."""

import pytest

from repro.callgraph import CallGraph
from repro.core.bundles import get_bundle_entries, identify_bundles


def build_graph(spec):
    """spec: {name: (size, [callees])}."""
    g = CallGraph()
    for name, (size, _) in spec.items():
        g.add_node(name, size)
    for name, (_, callees) in spec.items():
        for callee in callees:
            g.add_edge(name, callee)
    return g


KB = 1024


class TestAlgorithm1:
    def test_paper_figure5_example(self):
        # Figure 5a shape (values in KB, threshold 200): A's two paths B
        # and C are both large divergent branches; D is large but barely
        # smaller than its father C.
        # Reachable: E1=250, B=400, E2=220, D=370, C=420, A=830.
        # B: A-B = 430 > 200 and B >= 200 -> entry.
        # C: A-C = 410 > 200 and C >= 200 -> entry.
        # D: C-D = 50 < 200 -> not an entry despite its size.
        # A: root above threshold -> entry.
        g = build_graph({
            "A": (10 * KB, ["B", "C"]),
            "B": (150 * KB, ["E1"]),
            "C": (50 * KB, ["D"]),
            "D": (150 * KB, ["E2"]),
            "E1": (250 * KB, []),
            "E2": (220 * KB, []),
        })
        entries = get_bundle_entries(g, 200 * KB)
        assert "A" in entries
        assert "B" in entries
        assert "C" in entries
        assert "D" not in entries

    def test_small_functions_never_entries(self):
        g = build_graph({
            "root": (500 * KB, ["leaf"]),
            "leaf": (1 * KB, []),
        })
        entries = get_bundle_entries(g, 200 * KB)
        assert "leaf" not in entries
        assert "root" in entries  # root meeting the size requirement

    def test_root_below_threshold_not_entry(self):
        g = build_graph({"root": (10 * KB, [])})
        assert get_bundle_entries(g, 200 * KB) == set()

    def test_father_difference_must_exceed_threshold(self):
        # child large, but father barely larger: no divergence.
        g = build_graph({
            "father": (5 * KB, ["child"]),
            "child": (300 * KB, []),
        })
        entries = get_bundle_entries(g, 200 * KB)
        assert "child" not in entries

    def test_any_father_with_large_difference_suffices(self):
        g = build_graph({
            "big": (900 * KB, ["child"]),
            "small": (1 * KB, ["child"]),
            "child": (250 * KB, []),
        })
        entries = get_bundle_entries(g, 200 * KB)
        assert "child" in entries

    def test_threshold_must_be_positive(self):
        g = build_graph({"a": (1, [])})
        with pytest.raises(ValueError):
            get_bundle_entries(g, 0)

    def test_lower_threshold_never_removes_roots(self):
        g = build_graph({
            "root": (300 * KB, ["a"]),
            "a": (100 * KB, []),
        })
        hi = get_bundle_entries(g, 250 * KB)
        lo = get_bundle_entries(g, 50 * KB)
        assert "root" in hi and "root" in lo


class TestIdentifyBundles:
    def test_report_fields(self, micro_app):
        info = identify_bundles(
            micro_app.binary, micro_app.params.bundle_threshold
        )
        assert info.n_functions == len(micro_app.binary)
        assert 0 < info.n_bundles < info.n_functions
        assert 0.0 < info.bundle_fraction < 1.0
        assert set(info.entries) <= set(info.reachable)

    def test_routine_roots_are_entries(self, micro_app):
        info = identify_bundles(
            micro_app.binary, micro_app.params.bundle_threshold
        )
        # The per-stage routine roots are the intended divergence points.
        routine_roots = [
            f"{stage.name}_r{r}_f0"
            for stage in micro_app.params.stages
            for r in range(stage.n_routines)
        ]
        tagged = [r for r in routine_roots if r in info.entries]
        assert len(tagged) >= len(routine_roots) // 2

    def test_fraction_small(self, micro_app):
        info = identify_bundles(
            micro_app.binary, micro_app.params.bundle_threshold
        )
        # Table 4: only a few percent of functions are Bundle entries.
        assert info.bundle_fraction < 0.15
